//! The multi-threaded workload runner, the stalled-writer liveness experiment,
//! and the audited run modes: **batch** (record every commit, then prove which
//! consistency levels the run satisfied) and **streaming** (audit rolling
//! windows concurrently with the workload, with bounded memory and mid-run
//! convictions).

use crate::bank::{Bank, BankConfig};
use crate::scenario::{Scenario, ScenarioCheck, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stm_runtime::{recorder, BackendId, Stm, StreamingRecorder};
use tm_audit::HistoryRecorder;
use tm_audit::{
    audit_with_options, AuditHistory, AuditOptions, AuditReport, AuditRunConfig, HistoryCollector,
    ShardConfig, ShardEvent, ShardedAuditor, ShardedStreamReport, StreamMerger, StreamReport,
    TeeSink, WindowConfig, WindowedAuditor,
};

/// Configuration of one runner invocation.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Which backend to benchmark.
    pub backend: BackendId,
    /// Number of worker threads.
    pub threads: usize,
    /// Transactions executed by each thread.
    pub tx_per_thread: usize,
    /// The bank workload parameters.
    pub bank: BankConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            backend: stm_runtime::registry::OBSTRUCTION_FREE,
            threads: 4,
            tx_per_thread: 1_000,
            bank: BankConfig::default(),
        }
    }
}

/// What one runner invocation measured.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The configuration that produced the report.
    pub config: RunConfig,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Committed transactions per second (workers only, excluding the final audit).
    pub throughput: f64,
    /// Total aborted attempts.
    pub aborts: u64,
    /// Median attempts one transaction needed to commit.
    pub attempts_p50: u32,
    /// 99th-percentile attempts per transaction.
    pub attempts_p99: u32,
    /// Whether the bank total matched the expected value at the end (consistency
    /// smoke test: `false` is expected — and informative — on the PRAM backend).
    pub balance_preserved: bool,
}

/// Run the bank workload with the given configuration and report throughput, aborts
/// and the final invariant check.
pub fn run_threads(config: RunConfig) -> RunReport {
    let stm = Arc::new(Stm::new(config.backend));
    let bank = Arc::new(Bank::new(&stm, config.bank));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..config.threads {
            let stm = Arc::clone(&stm);
            let bank = Arc::clone(&bank);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(42 + thread as u64);
                for _ in 0..config.tx_per_thread {
                    let (from, to) = bank.pick_accounts(thread, config.threads, &mut rng);
                    bank.transfer(&stm, from, to, 5);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let committed = (config.threads * config.tx_per_thread) as f64;
    let throughput = committed / elapsed.as_secs_f64().max(1e-9);
    let aborts = stm.stats().aborts();
    let attempts_p50 = stm.stats().attempts_p50();
    let attempts_p99 = stm.stats().attempts_p99();
    let balance_preserved = bank.total(&stm) == bank.expected_total();
    RunReport { config, elapsed, throughput, aborts, attempts_p50, attempts_p99, balance_preserved }
}

/// What an audited run measured and proved.
#[derive(Debug, Clone)]
pub struct AuditedRunReport {
    /// The recording configuration that produced the report.
    pub config: AuditRunConfig,
    /// Wall-clock duration of the recorded run (excluding checking).
    pub run_elapsed: Duration,
    /// Committed (= recorded) transactions per second during the run.
    pub throughput: f64,
    /// Wall-clock duration of the consistency checks.
    pub audit_elapsed: Duration,
    /// The per-level verdicts.
    pub audit: AuditReport,
}

/// The runner's audit mode: run `tm-audit`'s recordable register workload on
/// the chosen backend (the bank workload keeps its role as the throughput
/// benchmark — write-read inference needs the register workload's unique
/// write values), record every commit, then check the recorded history
/// against the full RC / RA / Causal / SI / SER hierarchy.
pub fn run_audited(config: AuditRunConfig, budget: u64) -> AuditedRunReport {
    run_audited_with(config, &AuditOptions { budget, ..AuditOptions::default() })
}

/// [`run_audited`] with full [`AuditOptions`] — the entry point for the CLI's
/// `--sat` escalation flag.
pub fn run_audited_with(config: AuditRunConfig, options: &AuditOptions) -> AuditedRunReport {
    let start = Instant::now();
    let history = tm_audit::record_run(config);
    let run_elapsed = start.elapsed();
    let throughput = history.txn_count() as f64 / run_elapsed.as_secs_f64().max(1e-9);
    let start = Instant::now();
    let audit = audit_with_options(&history, options);
    AuditedRunReport { config, run_elapsed, throughput, audit_elapsed: start.elapsed(), audit }
}

/// What a streaming audited run measured and proved.
#[derive(Debug, Clone)]
pub struct StreamingAuditedReport {
    /// The recording configuration that produced the report.
    pub config: AuditRunConfig,
    /// The window shape the auditor used.
    pub window: WindowConfig,
    /// Wall-clock duration of the workload (recording included).
    pub run_elapsed: Duration,
    /// Committed (= recorded) transactions per second during the run.
    pub throughput: f64,
    /// Time from workload end to the final merged verdict — the audit tail
    /// the streaming pipeline leaves behind.  The batch mode pays its
    /// *entire* checking time here; streaming amortizes it into the run.
    pub drain_elapsed: Duration,
    /// The merged verdicts, per-window detail and pipeline statistics.
    pub stream: StreamReport,
}

/// The runner's streaming audit mode: the same recordable register workload
/// as [`run_audited`], but commits drain through a
/// [`stm_runtime::StreamingRecorder`] to a [`WindowedAuditor`] on a consumer
/// thread *while the workload runs*.  Verdict latency per window is in
/// [`StreamReport::verdict_latency_mean`]; a backend that trades consistency
/// away is convicted mid-run (see [`StreamReport::first_conviction`]).
pub fn run_audited_streaming(
    config: AuditRunConfig,
    window: WindowConfig,
) -> StreamingAuditedReport {
    let recorder = Arc::new(StreamingRecorder::new(config.sessions, 256));
    let consumer = recorder.consumer();
    let vars = config.vars;
    let start = Instant::now();
    let (commits, run_elapsed, stream) = std::thread::scope(|scope| {
        let sessions = config.sessions;
        let auditor = scope.spawn(move || {
            let mut auditor = WindowedAuditor::new(vars, 0, window);
            // Shard batches arrive per-session-bursty; the merger restores
            // global recording order so windows cut across sessions.
            let mut merger = StreamMerger::new(sessions);
            while let Some(batch) = consumer.recv() {
                merger.push_batch(&batch, &mut auditor);
            }
            merger.finish(&mut auditor);
            auditor.finish()
        });
        let commits = tm_audit::run_with_recorder(config, Arc::clone(&recorder) as _);
        let run_elapsed = start.elapsed();
        recorder.finish();
        (commits, run_elapsed, auditor.join().expect("auditor thread panicked"))
    });
    let total = start.elapsed();
    StreamingAuditedReport {
        config,
        window,
        run_elapsed,
        throughput: commits as f64 / run_elapsed.as_secs_f64().max(1e-9),
        drain_elapsed: total.saturating_sub(run_elapsed),
        stream,
    }
}

/// What one scenario run measured, plus the scenario's own self-check.
#[derive(Debug, Clone)]
pub struct ScenarioRunReport {
    /// Which scenario ran.
    pub scenario: &'static str,
    /// The configuration that produced the report.
    pub config: ScenarioConfig,
    /// Wall-clock duration of the workload (excluding verification/audit).
    pub elapsed: Duration,
    /// Committed transactions per second during the run.
    pub throughput: f64,
    /// Committed transactions (workers only).
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Median attempts one transaction needed to commit.
    pub attempts_p50: u32,
    /// 99th-percentile attempts per transaction.
    pub attempts_p99: u32,
    /// Worst-case attempts one transaction needed (histogram bucket lower
    /// bound).  The livelock statistic: a burst of doomed re-attempts
    /// against a preempted lock holder lands on too few transactions to
    /// move p99, but it moves this.
    pub attempts_max: u32,
    /// Mean attempts per transaction.
    pub attempts_mean: f64,
    /// Transactions abandoned because the retry policy gave up
    /// (always 0 under `immediate`/`backoff`; bounded policies drop work
    /// here instead of retrying forever).
    pub gave_up: u64,
    /// Aborts broken down by [`stm_runtime::AbortReason`], in reporting
    /// order; the counts sum to [`ScenarioRunReport::aborts`].
    pub abort_reasons: [(stm_runtime::AbortReason, u64); stm_runtime::AbortReason::ALL.len()],
    /// The scenario's post-run self-check.
    pub check: ScenarioCheck,
}

/// A scenario run with a whole-history batch audit attached.
#[derive(Debug, Clone)]
pub struct AuditedScenarioReport {
    /// The workload-side measurements.
    pub run: ScenarioRunReport,
    /// Wall-clock duration of the consistency checks.
    pub audit_elapsed: Duration,
    /// The per-level verdicts.
    pub audit: AuditReport,
}

/// A scenario run audited concurrently in rolling windows.
#[derive(Debug, Clone)]
pub struct StreamingScenarioReport {
    /// The workload-side measurements.
    pub run: ScenarioRunReport,
    /// The window shape the auditor used.
    pub window: WindowConfig,
    /// Time from workload end to the final merged verdict.
    pub drain_elapsed: Duration,
    /// The merged verdicts, per-window detail and pipeline statistics.
    pub stream: StreamReport,
}

/// Spawn the worker threads and drive `state` through the configured
/// transaction count; returns the workload's wall-clock duration.
fn execute_scenario(
    stm: &Stm,
    state: &dyn crate::scenario::ScenarioState,
    config: &ScenarioConfig,
    register_sessions: bool,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..config.threads {
            scope.spawn(move || {
                if register_sessions {
                    recorder::set_session(thread);
                }
                let mut rng = StdRng::seed_from_u64(config.seed ^ ((thread as u64) << 32));
                for seq in 0..config.txns_per_thread as u64 {
                    state.run_txn(stm, thread, seq, &mut rng);
                }
                if register_sessions {
                    recorder::clear_session();
                }
            });
        }
    });
    start.elapsed()
}

/// Snapshot the statistics *before* running the scenario's self-check (the
/// check itself runs transactions) and assemble the report.
fn finish_scenario_report(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    stm: &Stm,
    state: &dyn crate::scenario::ScenarioState,
    elapsed: Duration,
) -> ScenarioRunReport {
    let stats = stm.stats();
    let commits = stats.commits();
    ScenarioRunReport {
        scenario: scenario.name(),
        config: config.clone(),
        elapsed,
        throughput: commits as f64 / elapsed.as_secs_f64().max(1e-9),
        commits,
        aborts: stats.aborts(),
        attempts_p50: stats.attempts_p50(),
        attempts_p99: stats.attempts_p99(),
        attempts_max: stats.attempts_quantile(1.0),
        attempts_mean: stats.attempts_mean(),
        // Every scenario transaction ends in a commit or a policy give-up,
        // and both record an attempt count — the difference is the give-ups.
        gave_up: stats.attempts_recorded().saturating_sub(commits),
        abort_reasons: stats.abort_reason_counts(),
        check: state.verify(stm),
    }
}

/// Run a scenario unaudited: throughput, attempt percentiles and the
/// scenario's own invariant check.
pub fn run_scenario(scenario: &dyn Scenario, config: &ScenarioConfig) -> ScenarioRunReport {
    let stm = Stm::new(config.backend).with_policy(Arc::clone(&config.policy));
    let state = scenario.build(&stm, config);
    let elapsed = execute_scenario(&stm, state.as_ref(), config, false);
    finish_scenario_report(scenario, config, &stm, state.as_ref(), elapsed)
}

fn require_recordable(scenario: &dyn Scenario) -> Result<(), String> {
    if scenario.recordable() {
        Ok(())
    } else {
        Err(format!(
            "scenario {:?} does not keep the unique-write contract audited runs require; \
             run it without --audit",
            scenario.name()
        ))
    }
}

/// Run a recordable scenario with every commit recorded and hand back the
/// captured [`AuditHistory`] *without* auditing it — the capture path behind
/// the audit CLI's `--export` in `--audit off` mode, and the base of the
/// batch-audited runs.
pub fn run_scenario_captured(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
) -> Result<(ScenarioRunReport, AuditHistory), String> {
    require_recordable(scenario)?;
    let recorder_arc = Arc::new(HistoryRecorder::new(config.threads, 0));
    let mut stm = Stm::with_recorder(config.backend, Arc::clone(&recorder_arc) as _)
        .with_policy(Arc::clone(&config.policy));
    let state = scenario.build(&stm, config);
    let elapsed = execute_scenario(&stm, state.as_ref(), config, true);
    // Detach the recorder before the self-check: verification transactions
    // must not pollute the captured history.
    stm.take_recorder();
    let history = Arc::try_unwrap(recorder_arc)
        .unwrap_or_else(|_| panic!("recorder still shared after the run"))
        .into_history(state.words());
    let run = finish_scenario_report(scenario, config, &stm, state.as_ref(), elapsed);
    Ok((run, history))
}

/// Run a recordable scenario with every commit recorded, then audit the
/// whole history against the RC / RA / Causal / SI / SER hierarchy.
///
/// The auditor assumes the recording contract [`Scenario::recordable`]
/// declares: unique write values and all-zero initial state.
pub fn run_scenario_audited(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    budget: u64,
) -> Result<AuditedScenarioReport, String> {
    run_scenario_audited_captured(scenario, config, budget).map(|(report, _)| report)
}

/// [`run_scenario_audited`] with full [`AuditOptions`], so callers can enable
/// the SAT escalation stage.
pub fn run_scenario_audited_with(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    options: &AuditOptions,
) -> Result<AuditedScenarioReport, String> {
    run_scenario_audited_with_captured(scenario, config, options).map(|(report, _)| report)
}

/// [`run_scenario_audited`], also returning the audited history — exactly
/// what the auditor saw, so serializing it (`tm-history`) and re-auditing
/// reproduces the verdicts.
pub fn run_scenario_audited_captured(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    budget: u64,
) -> Result<(AuditedScenarioReport, AuditHistory), String> {
    run_scenario_audited_with_captured(
        scenario,
        config,
        &AuditOptions { budget, ..AuditOptions::default() },
    )
}

/// [`run_scenario_audited_captured`] with full [`AuditOptions`].
pub fn run_scenario_audited_with_captured(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    options: &AuditOptions,
) -> Result<(AuditedScenarioReport, AuditHistory), String> {
    let (run, history) = run_scenario_captured(scenario, config)?;
    let start = Instant::now();
    let audit = audit_with_options(&history, options);
    Ok((AuditedScenarioReport { run, audit_elapsed: start.elapsed(), audit }, history))
}

/// Run a recordable scenario while a windowed auditor checks rolling
/// windows concurrently with the workload (bounded memory, mid-run
/// convictions).
pub fn run_scenario_audited_streaming(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    window: WindowConfig,
) -> Result<StreamingScenarioReport, String> {
    run_scenario_streaming_inner(scenario, config, window, false).map(|(report, _)| report)
}

/// [`run_scenario_audited_streaming`], also returning the merged stream the
/// auditor saw as an [`AuditHistory`].  The capture tees off *after* the
/// [`StreamMerger`] (a [`TeeSink`] wrapping the auditor), so hints, order
/// and attribution are exactly the auditor's view — recorder-level taps
/// cannot give that, because parallel recorders number hints independently.
pub fn run_scenario_audited_streaming_captured(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    window: WindowConfig,
) -> Result<(StreamingScenarioReport, AuditHistory), String> {
    run_scenario_streaming_inner(scenario, config, window, true)
        .map(|(report, history)| (report, history.expect("capture was requested")))
}

fn run_scenario_streaming_inner(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    window: WindowConfig,
    capture: bool,
) -> Result<(StreamingScenarioReport, Option<AuditHistory>), String> {
    require_recordable(scenario)?;
    let recorder_arc = Arc::new(StreamingRecorder::new(config.threads, 256));
    let consumer = recorder_arc.consumer();
    let mut stm = Stm::with_recorder(config.backend, Arc::clone(&recorder_arc) as _)
        .with_policy(Arc::clone(&config.policy));
    let state = scenario.build(&stm, config);
    let vars = state.words();
    let start = Instant::now();
    let (elapsed, (stream, history)) = std::thread::scope(|scope| {
        let sessions = config.threads;
        let auditor = scope.spawn(move || {
            let mut auditor = WindowedAuditor::new(vars, 0, window);
            let mut merger = StreamMerger::new(sessions);
            let mut collector = capture.then(|| HistoryCollector::new(vars, 0, sessions));
            match collector.as_mut() {
                Some(collector) => {
                    let mut tee = TeeSink::new(&mut auditor, collector);
                    while let Some(batch) = consumer.recv() {
                        merger.push_batch(&batch, &mut tee);
                    }
                    merger.finish(&mut tee);
                }
                None => {
                    while let Some(batch) = consumer.recv() {
                        merger.push_batch(&batch, &mut auditor);
                    }
                    merger.finish(&mut auditor);
                }
            }
            (auditor.finish(), collector.map(HistoryCollector::into_history))
        });
        let elapsed = execute_scenario(&stm, state.as_ref(), config, true);
        recorder_arc.finish();
        (elapsed, auditor.join().expect("auditor thread panicked"))
    });
    let total = start.elapsed();
    stm.take_recorder();
    let run = finish_scenario_report(scenario, config, &stm, state.as_ref(), elapsed);
    Ok((
        StreamingScenarioReport {
            run,
            window,
            drain_elapsed: total.saturating_sub(elapsed),
            stream,
        },
        history,
    ))
}

/// A scenario run audited in streaming windows while every commit is logged
/// to a crash-consistent WAL round directory.
#[derive(Debug, Clone)]
pub struct WalScenarioReport {
    /// The workload-side measurements.
    pub run: ScenarioRunReport,
    /// The window shape the auditor used.
    pub window: WindowConfig,
    /// Time from workload end to the final merged verdict.
    pub drain_elapsed: Duration,
    /// The merged verdicts, per-window detail and pipeline statistics.
    pub stream: StreamReport,
    /// What the WAL round logged (txns appended, segments sealed).
    pub wal: crate::recovery::WalTeeStats,
}

/// [`run_scenario_audited_streaming`] with a write-ahead log attached: the
/// merged commit stream is appended to a [`stm_runtime::wal::WalSink`]
/// round at `round_dir` *before* each record reaches the auditor, segments
/// seal (and the auditor's frontier is snapshotted) at every window
/// boundary, and the round ends with a `complete.json` marker.  A process
/// killed mid-round leaves a directory
/// [`crate::recovery::recover_round_report`] can finish auditing.
///
/// `pre_seal` runs right before every segment seal — the hook the serve
/// loop uses to flush its own buffered output first, so the seal never
/// claims durability the host's records don't have.
///
/// The WAL orders the *merged* stream, so this runner is the streaming
/// (single-auditor) topology; the sharded pipeline consumes per-partition
/// projections that have no single total order to log.
pub fn run_scenario_audited_walled(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    window: WindowConfig,
    round_dir: &std::path::Path,
    pre_seal: impl FnMut() + Send,
) -> Result<WalScenarioReport, String> {
    require_recordable(scenario)?;
    let recorder_arc = Arc::new(StreamingRecorder::new(config.threads, 256));
    let consumer = recorder_arc.consumer();
    let mut stm = Stm::with_recorder(config.backend, Arc::clone(&recorder_arc) as _)
        .with_policy(Arc::clone(&config.policy));
    let state = scenario.build(&stm, config);
    let vars = state.words();
    let start = Instant::now();
    let (elapsed, tail) = std::thread::scope(|scope| {
        let sessions = config.threads;
        let auditor = scope.spawn(move || {
            let auditor = WindowedAuditor::new(vars, 0, window);
            let mut tee =
                crate::recovery::WalTee::create(round_dir, sessions, vars, auditor, pre_seal)
                    .map_err(|e| format!("wal {}: {e}", round_dir.display()))?;
            let mut merger = StreamMerger::new(sessions);
            while let Some(batch) = consumer.recv() {
                merger.push_batch(&batch, &mut tee);
            }
            merger.finish(&mut tee);
            let (auditor, wal) =
                tee.finish().map_err(|e| format!("wal {}: {e}", round_dir.display()))?;
            Ok::<_, String>((auditor.finish(), wal))
        });
        let elapsed = execute_scenario(&stm, state.as_ref(), config, true);
        recorder_arc.finish();
        (elapsed, auditor.join().expect("auditor thread panicked"))
    });
    let (stream, wal) = tail?;
    let total = start.elapsed();
    stm.take_recorder();
    let run = finish_scenario_report(scenario, config, &stm, state.as_ref(), elapsed);
    Ok(WalScenarioReport { run, window, drain_elapsed: total.saturating_sub(elapsed), stream, wal })
}

/// A scenario run audited concurrently by the sharded partition pipeline
/// (`K` per-variable-partition windowed auditors + the escalation lane).
#[derive(Debug, Clone)]
pub struct ShardedScenarioReport {
    /// The workload-side measurements.
    pub run: ScenarioRunReport,
    /// The pipeline shape the sharded auditor used.
    pub shard: ShardConfig,
    /// Time from workload end to the final merged verdict.
    pub drain_elapsed: Duration,
    /// The stitched per-partition verdicts and pipeline statistics.
    pub sharded: ShardedStreamReport,
    /// Band moves the adaptive router applied during the run (always 0 when
    /// [`ShardConfig::adaptive`] is off).
    pub band_moves: u64,
}

/// Run a recordable scenario while a [`ShardedAuditor`] checks it on `K`
/// partition threads concurrently with the workload.
///
/// When `events` is given, live [`ShardEvent`]s stream into it while the run
/// is going: every closed window's verdict, first convictions, and a
/// periodic per-partition lag sample (every ~200 ms) — the feed the audit
/// CLI's `--serve` endpoint tails as JSON lines.
///
/// When [`ShardConfig::adaptive`] is set, the same ~200 ms sampler feeds
/// each lag snapshot to the auditor's [`tm_audit::BandRouter`], which may
/// move the most-backlogged partition's hottest band to the idlest
/// partition — the control plane that keeps one zipfian hot band from
/// throttling the whole pipeline through backpressure.
pub fn run_scenario_audited_sharded(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    shard: ShardConfig,
    events: Option<std::sync::mpsc::Sender<ShardEvent>>,
) -> Result<ShardedScenarioReport, String> {
    run_scenario_sharded_inner(scenario, config, shard, events, false).map(|(report, _)| report)
}

/// [`run_scenario_audited_sharded`], also returning the merged stream the
/// router saw as an [`AuditHistory`] (teed off after the [`StreamMerger`],
/// before band routing — the exact global order the pipeline audited).
pub fn run_scenario_audited_sharded_captured(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    shard: ShardConfig,
    events: Option<std::sync::mpsc::Sender<ShardEvent>>,
) -> Result<(ShardedScenarioReport, AuditHistory), String> {
    run_scenario_sharded_inner(scenario, config, shard, events, true)
        .map(|(report, history)| (report, history.expect("capture was requested")))
}

fn run_scenario_sharded_inner(
    scenario: &dyn Scenario,
    config: &ScenarioConfig,
    shard: ShardConfig,
    events: Option<std::sync::mpsc::Sender<ShardEvent>>,
    capture: bool,
) -> Result<(ShardedScenarioReport, Option<AuditHistory>), String> {
    require_recordable(scenario)?;
    let recorder_arc = Arc::new(StreamingRecorder::new(config.threads, 256));
    let consumer = recorder_arc.consumer();
    let mut stm = Stm::with_recorder(config.backend, Arc::clone(&recorder_arc) as _)
        .with_policy(Arc::clone(&config.policy));
    let state = scenario.build(&stm, config);
    let vars = state.words();
    let auditor = match &events {
        Some(tx) => ShardedAuditor::with_events(vars, 0, shard, tx.clone()),
        None => ShardedAuditor::new(vars, 0, shard),
    };
    let shard = auditor.config();
    let probe = auditor.lag_probe();
    let band_router = shard.adaptive.then(|| auditor.router());
    let done = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let (elapsed, (sharded, history)) = std::thread::scope(|scope| {
        let sessions = config.threads;
        let router = scope.spawn(move || {
            let mut auditor = auditor;
            let mut merger = StreamMerger::new(sessions);
            let mut collector = capture.then(|| HistoryCollector::new(vars, 0, sessions));
            match collector.as_mut() {
                Some(collector) => {
                    let mut tee = TeeSink::new(&mut auditor, collector);
                    while let Some(batch) = consumer.recv() {
                        merger.push_batch(&batch, &mut tee);
                    }
                    merger.finish(&mut tee);
                }
                None => {
                    while let Some(batch) = consumer.recv() {
                        merger.push_batch(&batch, &mut auditor);
                    }
                    merger.finish(&mut auditor);
                }
            }
            (auditor.finish(), collector.map(HistoryCollector::into_history))
        });
        // One sampler serves both consumers of the ~200 ms lag snapshot:
        // the live event feed (when `events` is on) and the adaptive band
        // router (when `shard.adaptive` is on).
        let sampler = (events.is_some() || band_router.is_some()).then(|| {
            let tx = events.clone();
            let probe = probe.clone();
            let done = Arc::clone(&done);
            let band_router = band_router.clone();
            scope.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(200));
                    let lag = probe.sample();
                    if let Some(router) = &band_router {
                        router.rebalance(&lag);
                    }
                    if let Some(tx) = &tx {
                        if tx.send(ShardEvent::Lag { partitions: lag }).is_err() {
                            break;
                        }
                    }
                }
            })
        });
        let elapsed = execute_scenario(&stm, state.as_ref(), config, true);
        recorder_arc.finish();
        let routed = router.join().expect("sharded auditor router panicked");
        done.store(true, Ordering::SeqCst);
        if let Some(sampler) = sampler {
            sampler.join().expect("lag sampler panicked");
        }
        // Always close with one drained lag sample, so short runs still get
        // a lag record even when the periodic sampler never fired.
        if let Some(tx) = &events {
            let _ = tx.send(ShardEvent::Lag { partitions: probe.sample() });
        }
        (elapsed, routed)
    });
    let total = start.elapsed();
    stm.take_recorder();
    let run = finish_scenario_report(scenario, config, &stm, state.as_ref(), elapsed);
    Ok((
        ShardedScenarioReport {
            run,
            shard,
            drain_elapsed: total.saturating_sub(elapsed),
            sharded,
            band_moves: band_router.map_or(0, |r| r.moves()),
        },
        history,
    ))
}

/// The stalled-writer liveness experiment: one thread opens a transaction, writes the
/// hot variable and then stalls for `stall` (holding its encounter-time lock on the
/// blocking backend), while `victims` other threads keep incrementing their own
/// private variables *plus* one read of the hot variable.  Returns the number of
/// victim transactions that managed to commit during the stall — the experimental
/// face of the liveness axis: near zero for the blocking backend, unaffected for the
/// obstruction-free and PRAM backends.
pub fn stalled_writer_experiment(
    backend: impl Into<BackendId>,
    victims: usize,
    stall: Duration,
) -> u64 {
    let stm = Arc::new(Stm::new(backend));
    let hot = stm.alloc(0);
    let privates: Vec<_> = (0..victims).map(|_| stm.alloc(0)).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(std::sync::atomic::AtomicU64::new(0));

    std::thread::scope(|scope| {
        // The stalled writer: write the hot variable, then sleep inside the closure.
        {
            let stm = Arc::clone(&stm);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let _ = stm.try_run(|tx| {
                    tx.write(hot, 99)?;
                    std::thread::sleep(stall);
                    Ok(())
                });
                stop.store(true, Ordering::SeqCst);
            });
        }
        // Victims: each repeatedly reads the hot variable and bumps its own counter.
        for (i, private) in privates.iter().enumerate() {
            let stm = Arc::clone(&stm);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let private = *private;
            let _ = i;
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let ok = stm.try_run(|tx| {
                        let _ = tx.read(hot)?;
                        tx.update(private, |v| v + 1)?;
                        Ok(())
                    });
                    if ok.is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    committed.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_runtime::BackendKind;

    #[test]
    fn disjoint_partitions_preserve_balance_on_consistent_backends() {
        for backend in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let report = run_threads(RunConfig {
                backend: backend.id(),
                threads: 4,
                tx_per_thread: 200,
                bank: BankConfig { accounts: 32, cross_fraction: 0.0, ..Default::default() },
            });
            assert!(report.balance_preserved, "{backend:?}: {report:?}");
            assert!(report.throughput > 0.0);
        }
    }

    #[test]
    fn contended_transfers_still_preserve_balance_but_cause_aborts_or_waits() {
        let report = run_threads(RunConfig {
            backend: BackendKind::ObstructionFree.id(),
            threads: 4,
            tx_per_thread: 300,
            bank: BankConfig { accounts: 4, cross_fraction: 1.0, ..Default::default() },
        });
        assert!(report.balance_preserved, "{report:?}");
    }

    #[test]
    fn pram_backend_visibly_breaks_the_global_invariant() {
        let report = run_threads(RunConfig {
            backend: BackendKind::PramLocal.id(),
            threads: 4,
            tx_per_thread: 100,
            bank: BankConfig { accounts: 8, cross_fraction: 1.0, ..Default::default() },
        });
        // Transfers only move money inside each thread's private replicas, so the
        // auditing thread still sees every account at its initial balance; the global
        // invariant holds *vacuously* for the auditor but cross-thread effects are
        // lost.  What must NOT happen is an abort: the backend is wait-free.
        assert_eq!(report.aborts, 0);
    }

    #[test]
    fn audited_runs_report_throughput_and_verdicts() {
        use tm_audit::Level;
        let report = run_audited(
            AuditRunConfig {
                backend: BackendKind::ObstructionFree.id(),
                sessions: 2,
                txns_per_session: 100,
                vars: 16,
                seed: 11,
            },
            tm_audit::linearization::DEFAULT_STATE_BUDGET,
        );
        assert!(report.throughput > 0.0);
        assert!(report.audit.passes(Level::Serializable), "{}", report.audit);
    }

    #[test]
    fn streaming_audited_runs_agree_with_batch_on_a_consistent_backend() {
        use tm_audit::Level;
        let config = AuditRunConfig {
            backend: BackendKind::ObstructionFree.id(),
            sessions: 2,
            txns_per_session: 300,
            vars: 16,
            seed: 11,
        };
        let report = run_audited_streaming(config, WindowConfig::sized(100));
        assert!(report.throughput > 0.0);
        assert_eq!(report.stream.total_txns, 600);
        assert!(report.stream.windows.len() >= 5, "windows: {}", report.stream.windows.len());
        for level in Level::ALL {
            assert!(report.stream.passes(level), "{level}: {}", report.stream.merged);
        }
        assert!(report.stream.first_conviction.is_none());
    }

    #[test]
    fn streaming_audits_convict_pram_mid_run() {
        let config = AuditRunConfig {
            backend: BackendKind::PramLocal.id(),
            sessions: 4,
            txns_per_session: 500,
            vars: 16,
            seed: 5,
        };
        let report = run_audited_streaming(config, WindowConfig::sized(250));
        let conviction = report.stream.first_conviction.as_ref().expect("pram must be convicted");
        assert!(
            conviction.txns_seen < report.stream.total_txns,
            "conviction after {} of {} txns must land mid-stream",
            conviction.txns_seen,
            report.stream.total_txns
        );
        assert!(report.stream.fails(tm_audit::Level::Serializable), "{}", report.stream.merged);
        assert!(report.stream.passes(tm_audit::Level::Causal), "{}", report.stream.merged);
    }

    #[test]
    fn scenarios_run_on_an_externally_registered_backend() {
        // The coarse-global-lock backend comes from this crate, not from
        // stm-runtime: running the bank scenario on it end-to-end proves the
        // registry is open.
        let glock = crate::glock::register();
        let scenario = crate::scenarios::BankScenario::default();
        let config = ScenarioConfig {
            threads: 4,
            txns_per_thread: 150,
            vars: 16,
            ..ScenarioConfig::new(glock)
        };
        let report = run_scenario(&scenario, &config);
        // Self-transfers commit nothing, so commits ≤ threads × txns.
        assert!(report.commits > 0 && report.commits <= 600, "{}", report.commits);
        assert_eq!(report.check.invariant, Some(true), "{}", report.check.detail);
        assert!(report.attempts_p99 >= report.attempts_p50);
    }

    #[test]
    fn audited_scenarios_produce_verdicts_batch_and_streaming() {
        use tm_audit::Level;
        let scenario = crate::scenarios::KvZipfScenario::default();
        let config = ScenarioConfig {
            threads: 2,
            txns_per_thread: 150,
            vars: 16,
            ..ScenarioConfig::new(BackendKind::ObstructionFree)
        };
        let report = run_scenario_audited(&scenario, &config, 2_000_000).unwrap();
        assert_eq!(report.run.commits, 300);
        assert!(report.audit.passes(Level::Serializable), "{}", report.audit);
        assert_eq!(report.run.check.invariant, Some(true), "{}", report.run.check.detail);

        let streaming =
            run_scenario_audited_streaming(&scenario, &config, WindowConfig::sized(100)).unwrap();
        assert_eq!(streaming.stream.total_txns, 300);
        assert!(streaming.stream.passes(Level::Serializable), "{}", streaming.stream.merged);
    }

    #[test]
    fn sharded_audited_scenarios_agree_and_stream_events() {
        use tm_audit::Level;
        let scenario = crate::scenarios::RegistersScenario;
        let config = ScenarioConfig {
            threads: 2,
            txns_per_thread: 200,
            vars: 16,
            ..ScenarioConfig::new(BackendKind::Tl2Blocking)
        };
        let shard = ShardConfig::new(4, tm_audit::WindowConfig::sized(64));
        let (tx, rx) = std::sync::mpsc::channel();
        let report = run_scenario_audited_sharded(&scenario, &config, shard, Some(tx)).unwrap();
        assert_eq!(report.sharded.total_txns, 400);
        for level in Level::ALL {
            assert!(report.sharded.passes(level), "{level}: {}", report.sharded.merged);
        }
        let events: Vec<ShardEvent> = rx.try_iter().collect();
        let windows = events.iter().filter(|e| matches!(e, ShardEvent::Window { .. })).count();
        assert_eq!(
            windows,
            report.sharded.partitions.iter().map(|p| p.stream.windows.len()).sum::<usize>()
        );

        // The sharded pipeline convicts an inconsistent backend, mid-stream.
        let pram = ScenarioConfig {
            threads: 4,
            txns_per_thread: 300,
            vars: 8,
            ..ScenarioConfig::new(BackendKind::PramLocal)
        };
        let report = run_scenario_audited_sharded(&scenario, &pram, shard, None).unwrap();
        assert!(report.sharded.fails(Level::Serializable), "{}", report.sharded.merged);
        assert!(report.sharded.first_conviction.is_some());
    }

    #[test]
    fn audited_scenarios_convict_the_pram_backend() {
        use tm_audit::Level;
        let scenario = crate::scenarios::RegistersScenario;
        let config = ScenarioConfig {
            threads: 4,
            txns_per_thread: 300,
            vars: 8,
            ..ScenarioConfig::new(BackendKind::PramLocal)
        };
        let report = run_scenario_audited(&scenario, &config, 2_000_000).unwrap();
        assert!(report.audit.passes(Level::Causal), "{}", report.audit);
        assert!(report.audit.fails(Level::Serializable), "{}", report.audit);
    }

    #[test]
    fn unrecordable_scenarios_are_rejected_by_audited_runs() {
        let scenario = crate::scenarios::BankScenario::default();
        let config = ScenarioConfig::new(BackendKind::ObstructionFree);
        let err = run_scenario_audited(&scenario, &config, 1_000).unwrap_err();
        assert!(err.contains("unique-write contract"), "{err}");
        let err = run_scenario_audited_streaming(&scenario, &config, WindowConfig::sized(64))
            .unwrap_err();
        assert!(err.contains("unique-write contract"), "{err}");
    }

    #[test]
    fn retry_policies_shape_the_attempt_histogram() {
        use stm_runtime::policy::ExponentialBackoff;
        let scenario = crate::scenarios::KvZipfScenario { theta: 0.99, read_fraction: 0.0 };
        let mut config = ScenarioConfig {
            threads: 4,
            txns_per_thread: 250,
            vars: 4,
            ..ScenarioConfig::new(BackendKind::ObstructionFree)
        };
        config.policy = Arc::new(ExponentialBackoff::default());
        let report = run_scenario(&scenario, &config);
        assert_eq!(report.commits, 1_000);
        // All-write hotspot traffic: the histogram must have been populated
        // and be internally consistent; backoff never gives up.
        assert!(report.attempts_mean >= 1.0);
        assert!(report.attempts_p99 >= report.attempts_p50);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.config.policy.name(), "backoff");
    }

    #[test]
    fn bounded_policies_actually_give_up_in_scenario_runs() {
        use crate::scenario::{Scenario, ScenarioCheck, ScenarioState};
        use stm_runtime::policy::BoundedRetry;
        use stm_runtime::TVar;

        // A scenario whose transactions always request an abort: under a
        // bounded policy every one must be dropped after exactly the bound,
        // deterministically — the regression shape for GiveUp being treated
        // as "retry forever".
        struct AlwaysAbort;
        struct AlwaysAbortState {
            var: TVar<i64>,
        }
        impl Scenario for AlwaysAbort {
            fn name(&self) -> &'static str {
                "always-abort"
            }
            fn summary(&self) -> &'static str {
                "test-only"
            }
            fn recordable(&self) -> bool {
                false
            }
            fn build(&self, stm: &Stm, _config: &ScenarioConfig) -> Box<dyn ScenarioState> {
                Box::new(AlwaysAbortState { var: stm.alloc(0i64) })
            }
        }
        impl ScenarioState for AlwaysAbortState {
            fn run_txn(&self, stm: &Stm, _thread: usize, _seq: u64, _rng: &mut StdRng) {
                let _ = stm.run_policy(|tx| {
                    tx.write(self.var, 1)?;
                    tx.abort::<()>()
                });
            }
            fn words(&self) -> usize {
                1
            }
            fn verify(&self, stm: &Stm) -> ScenarioCheck {
                ScenarioCheck {
                    invariant: Some(stm.read_now(self.var) == 0),
                    detail: "aborted writes never land".into(),
                }
            }
        }

        let mut config = ScenarioConfig {
            threads: 2,
            txns_per_thread: 50,
            vars: 1,
            ..ScenarioConfig::new(BackendKind::ObstructionFree)
        };
        config.policy = Arc::new(BoundedRetry { max_attempts: 3 });
        let report = run_scenario(&AlwaysAbort, &config);
        assert_eq!(report.commits, 0);
        assert_eq!(report.gave_up, 100, "{report:?}");
        assert_eq!(report.attempts_p50, 3, "give-ups land at the bound in the histogram");
        assert_eq!(report.aborts, 300, "3 attempts per transaction, no more");
        assert_eq!(report.check.invariant, Some(true));
    }

    #[test]
    fn stalled_writer_starves_victims_only_on_the_blocking_backend() {
        let stall = Duration::from_millis(120);
        let blocking = stalled_writer_experiment(BackendKind::Tl2Blocking, 2, stall);
        let ofree = stalled_writer_experiment(BackendKind::ObstructionFree, 2, stall);
        // The obstruction-free backend keeps committing while the writer sleeps; the
        // blocking backend's victims spend the stall spinning on the hot lock.
        assert!(
            ofree > blocking.saturating_mul(3).max(10),
            "expected OF ({ofree}) to dominate blocking ({blocking})"
        );
    }
}
