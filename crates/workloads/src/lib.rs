//! # workloads — workload generators and a multi-threaded runner for the STM runtime
//!
//! The PCL paper has no performance evaluation (it is an impossibility result), but
//! its discussion section is all about the *practical* trade-off the theorem
//! formalizes: what do you buy by giving up strict disjoint-access-parallelism, or
//! consistency, or non-blocking liveness?  This crate supplies the workloads the
//! benchmark harness uses to put numbers on that trade-off:
//!
//! * [`bank`] — transfer transactions over an account array, with a configurable
//!   fraction of cross-partition (conflicting) transfers and a total-balance
//!   invariant that doubles as a consistency smoke test;
//! * [`zipf`] — a Zipfian index sampler for hotspot contention experiments;
//! * [`runner`] — a thread-pool runner that executes a fixed number of transactions
//!   per thread against a chosen backend and reports throughput, abort counts and the
//!   stalled-writer liveness experiment; its **audit modes** record every commit
//!   through `tm-audit` and prove which consistency levels (RC / RA / Causal / SI /
//!   SER) the run satisfied — whole-run batch ([`runner::run_audited`]) or
//!   bounded-memory streaming windows concurrent with the workload
//!   ([`runner::run_audited_streaming`]).
//!
//! The `audit` binary (`cargo run -p workloads --bin audit`) wraps both audit
//! modes behind a CLI so operators can audit a backend without writing Rust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod runner;
pub mod zipf;

pub use bank::{Bank, BankConfig};
pub use runner::{
    run_audited, run_audited_streaming, run_threads, stalled_writer_experiment, AuditedRunReport,
    RunConfig, RunReport, StreamingAuditedReport,
};
pub use zipf::Zipf;
