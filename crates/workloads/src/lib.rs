//! # workloads — scenarios, backends-from-outside, and the runner for the STM runtime
//!
//! The PCL paper has no performance evaluation (it is an impossibility result), but
//! its discussion section is all about the *practical* trade-off the theorem
//! formalizes: what do you buy by giving up strict disjoint-access-parallelism, or
//! consistency, or non-blocking liveness?  This crate supplies the workload side of
//! that question:
//!
//! * [`scenario`] / [`scenarios`] — the **Scenario API**: workloads as pluggable
//!   data ([`Scenario`] + [`ScenarioState`]), with a registry mirroring the
//!   backend registry.  Built-ins: the RMW-heavy `registers` mix (the audit
//!   workhorse), a read-heavy `kv-zipf` hotspot store, `scan-writers` (one long
//!   read-only scan racing short writers), `write-skew` (read-a-pair,
//!   write-one-half — the shape whose audited run separates the SI and SER
//!   verdicts on the `mvcc` backend) and the classic `bank`;
//! * [`glock`] — a coarse-global-lock backend (**"give up Parallelism"**)
//!   registered into [`stm_runtime::registry`] *from this crate*: the proof the
//!   backend registry is open.  [`register_workload_backends`] makes its name
//!   resolvable; CLI/bench/example entry points call it at startup;
//! * [`bank`] / [`zipf`] — the transfer workload and a Zipfian sampler;
//! * [`runner`] — thread-pool runners for every mode: raw throughput
//!   ([`runner::run_threads`]), scenario runs ([`runner::run_scenario`]), and the
//!   audit modes that record every commit through `tm-audit` and prove which
//!   consistency levels the run satisfied — whole-run batch
//!   ([`runner::run_scenario_audited`]), bounded-memory streaming windows
//!   concurrent with the workload ([`runner::run_scenario_audited_streaming`]),
//!   or the multi-core sharded partition pipeline with live window/lag events
//!   ([`runner::run_scenario_audited_sharded`], the engine behind the audit
//!   CLI's `--audit=window:shards=K` and `--serve` modes).
//!   Reports carry the attempt histogram percentiles (p50/p99) so retry
//!   policies are measurable.
//!
//! The `audit` binary (`cargo run -p workloads --bin audit`) wraps the whole
//! `scenario × backend × retry-policy × audit-mode` product behind a CLI so
//! operators can audit any combination without writing Rust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod glock;
pub mod recovery;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod zipf;

pub use bank::{Bank, BankConfig};
pub use recovery::{
    incomplete_rounds, next_round_index, recover_round_auditor, recover_round_report,
    round_dir_name, round_dirs, RecoveredRoundReport, WalMeta, WalRecovery, WalTee, WalTeeStats,
};
pub use runner::{
    run_audited, run_audited_streaming, run_audited_with, run_scenario, run_scenario_audited,
    run_scenario_audited_captured, run_scenario_audited_sharded,
    run_scenario_audited_sharded_captured, run_scenario_audited_streaming,
    run_scenario_audited_streaming_captured, run_scenario_audited_walled,
    run_scenario_audited_with, run_scenario_audited_with_captured, run_scenario_captured,
    run_threads, stalled_writer_experiment, AuditedRunReport, AuditedScenarioReport, RunConfig,
    RunReport, ScenarioRunReport, ShardedScenarioReport, StreamingAuditedReport,
    StreamingScenarioReport, WalScenarioReport,
};
pub use scenario::{
    all_scenarios, scenario_by_name, Scenario, ScenarioCheck, ScenarioConfig, ScenarioState,
    UnknownScenario,
};
pub use scenarios::{
    BankScenario, KvZipfScenario, RegistersScenario, ScanWritersScenario, WriteSkewScenario,
};
pub use zipf::Zipf;

/// Register every backend this crate contributes (currently [`glock`]) with
/// the open [`stm_runtime::registry`].  Idempotent and cheap — CLI, bench and
/// example entry points call it once at startup so names like
/// `"global-lock"` parse.
pub fn register_workload_backends() {
    glock::register();
}
