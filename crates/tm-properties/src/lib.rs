//! # tm-properties — parallelism and liveness analyses for TM executions
//!
//! The PCL theorem is a statement about three properties.  `tm-consistency` covers
//! the **C**; this crate covers the other two:
//!
//! * **P — disjoint-access-parallelism** ([`conflict`], [`contention`], [`dap`]):
//!   structural predicates on recorded executions.  Strict DAP (the paper's
//!   definition) says two transactions may contend on a base object only if their
//!   data sets intersect; the weaker conflict-graph and feeble variants from the
//!   related-work section are provided as well, because the paper's positioning of
//!   real systems (DSTM, OSTM, SI-STM) depends on them.
//! * **L — liveness** ([`liveness`]): empirical probes built on the deterministic
//!   simulator.  The liveness the theorem needs is deliberately weak — *"transactions
//!   eventually commit if they run solo"* — and the probes test exactly that: every
//!   transaction run solo from the initial configuration, and run solo after any
//!   prefix of any other transaction has been paused mid-flight, must commit within a
//!   bounded number of steps.  Blocking designs (TL) fail the paused-writer probe;
//!   obstruction-free designs pass it.
//!
//! All analyses return structured reports with per-pair witnesses so the theorem
//! driver can print exactly *which* base object two disjoint transactions contended
//! on, or *which* paused transaction starves which victim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod contention;
pub mod dap;
pub mod liveness;

pub use dap::{check_strict_dap, DapReport, DapVariant, DapViolation};
pub use liveness::{probe_obstruction_freedom, LivenessReport, LivenessViolation};
