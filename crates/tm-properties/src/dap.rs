//! Disjoint-access-parallelism checkers.
//!
//! * **Strict DAP** (the paper's definition, Section 3): in every execution, two
//!   transactions may contend on a base object *only if* their data sets intersect.
//!   This is the "P" of the PCL theorem.
//! * **Conflict-graph DAP** (Attiya–Hillel–Milani \[8\], also \[2, 15\]): contention
//!   is allowed whenever there is a *path* between the two transactions in the
//!   conflict graph of the minimal execution interval containing both.
//! * **Feeble DAP** (\[15\]): like conflict-graph DAP, but the path requirement is
//!   dropped for transactions that are not concurrent — only concurrent,
//!   unconnected transactions must not contend.
//!
//! The checkers are *per-execution*: they certify or refute the property on the
//! executions actually produced.  A TM algorithm is (strictly) DAP only if every
//! execution passes; the theorem driver therefore runs them on the adversarial
//! executions of the proof plus randomized schedules.

use crate::conflict::{interval_conflict_graph, shared_items};
use crate::contention::all_contentions;
use std::fmt;
use tm_model::{Execution, Scenario, TxId};

/// Which flavour of disjoint-access-parallelism was checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DapVariant {
    /// The paper's strict DAP.
    Strict,
    /// The conflict-graph ("path") variant.
    ConflictGraph,
    /// The feeble variant (path required only for concurrent transactions).
    Feeble,
}

impl fmt::Display for DapVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DapVariant::Strict => f.write_str("strict disjoint-access-parallelism"),
            DapVariant::ConflictGraph => f.write_str("conflict-graph disjoint-access-parallelism"),
            DapVariant::Feeble => f.write_str("feeble disjoint-access-parallelism"),
        }
    }
}

/// One violation: two transactions that contend although the variant forbids it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DapViolation {
    /// First transaction of the offending pair.
    pub tx1: TxId,
    /// Second transaction of the offending pair.
    pub tx2: TxId,
    /// The base object they contend on.
    pub object: String,
    /// Why the contention is illegal under the checked variant.
    pub reason: String,
}

impl fmt::Display for DapViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} and {} contend on `{}` although {}",
            self.tx1, self.tx2, self.object, self.reason
        )
    }
}

/// The result of a DAP check on one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DapReport {
    /// The variant that was checked.
    pub variant: DapVariant,
    /// All violations found (empty = the execution satisfies the variant).
    pub violations: Vec<DapViolation>,
    /// Total number of contending pairs observed (legal or not) — a useful measure of
    /// how much low-level synchronization the algorithm introduces.
    pub contending_pairs: usize,
}

impl DapReport {
    /// `true` iff the execution satisfies the variant.
    pub fn satisfied(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for DapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.satisfied() {
            write!(f, "{}: satisfied ({} contending pairs)", self.variant, self.contending_pairs)
        } else {
            writeln!(f, "{}: VIOLATED", self.variant)?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

fn check(execution: &Execution, scenario: &Scenario, variant: DapVariant) -> DapReport {
    let contentions = all_contentions(execution);
    let history = execution.history();
    let mut violations = Vec::new();
    for c in &contentions {
        let conflict = scenario.tx(c.tx1).conflicts_with(scenario.tx(c.tx2));
        let legal = match variant {
            DapVariant::Strict => conflict,
            DapVariant::ConflictGraph => {
                conflict
                    || interval_conflict_graph(scenario, execution, c.tx1, c.tx2)
                        .connected(c.tx1, c.tx2)
            }
            DapVariant::Feeble => {
                conflict
                    || !history.concurrent(c.tx1, c.tx2)
                    || interval_conflict_graph(scenario, execution, c.tx1, c.tx2)
                        .connected(c.tx1, c.tx2)
            }
        };
        if !legal {
            let reason = match variant {
                DapVariant::Strict => {
                    format!("their data sets are disjoint (D({}) ∩ D({}) = ∅)", c.tx1, c.tx2)
                }
                DapVariant::ConflictGraph => {
                    "no conflict path connects them in the surrounding interval".to_string()
                }
                DapVariant::Feeble => {
                    "they are concurrent and no conflict path connects them".to_string()
                }
            };
            violations.push(DapViolation {
                tx1: c.tx1,
                tx2: c.tx2,
                object: c.object.clone(),
                reason,
            });
        }
    }
    DapReport { variant, violations, contending_pairs: contentions.len() }
}

/// Check strict disjoint-access-parallelism of an execution.
pub fn check_strict_dap(execution: &Execution, scenario: &Scenario) -> DapReport {
    check(execution, scenario, DapVariant::Strict)
}

/// Check the conflict-graph variant of DAP.
pub fn check_conflict_graph_dap(execution: &Execution, scenario: &Scenario) -> DapReport {
    check(execution, scenario, DapVariant::ConflictGraph)
}

/// Check feeble DAP.
pub fn check_feeble_dap(execution: &Execution, scenario: &Scenario) -> DapReport {
    check(execution, scenario, DapVariant::Feeble)
}

/// Sanity helper used by tests and the theorem driver: the data-set conflict relation
/// itself (true iff the pair is allowed to contend under strict DAP).
pub fn may_contend_strict(scenario: &Scenario, a: TxId, b: TxId) -> bool {
    !shared_items(scenario, a, b).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::TmEvent;
    use tm_model::primitive::{PrimResponse, Primitive};
    use tm_model::step::{Event, MemStep};
    use tm_model::{ObjId, ProcId, Word};

    fn mem(proc: usize, tx: usize, obj: &str, write: bool) -> Event {
        Event::Mem(MemStep {
            proc: ProcId(proc),
            tx: TxId(tx),
            obj: ObjId(0),
            obj_name: obj.into(),
            prim: if write { Primitive::Write(Word::Int(1)) } else { Primitive::Read },
            resp: if write { PrimResponse::Ack } else { PrimResponse::Value(Word::Int(0)) },
        })
    }
    fn begin(proc: usize, tx: usize) -> Vec<Event> {
        vec![
            Event::Tm { proc: ProcId(proc), event: TmEvent::InvBegin { tx: TxId(tx) } },
            Event::Tm { proc: ProcId(proc), event: TmEvent::RespBegin { tx: TxId(tx) } },
        ]
    }
    fn commit(proc: usize, tx: usize) -> Vec<Event> {
        vec![
            Event::Tm { proc: ProcId(proc), event: TmEvent::InvCommit { tx: TxId(tx) } },
            Event::Tm {
                proc: ProcId(proc),
                event: TmEvent::RespCommit { tx: TxId(tx), committed: true },
            },
        ]
    }

    /// Scenario: T1 writes x; T2 writes y; T3 accesses both x and y.
    fn scenario() -> Scenario {
        Scenario::builder()
            .tx(0, "T1", |t| t.write("x", 1))
            .tx(1, "T2", |t| t.write("y", 2))
            .tx(2, "T3", |t| t.read("x").read("y"))
            .build()
    }

    #[test]
    fn disjoint_transactions_contending_on_a_global_object_violate_strict_dap() {
        // T1 and T2 have disjoint data sets but both CAS a global clock.
        let s = scenario();
        let mut events = begin(0, 0);
        events.push(mem(0, 0, "global-clock", true));
        events.push(mem(0, 0, "val:x", true));
        events.extend(commit(0, 0));
        events.extend(begin(1, 1));
        events.push(mem(1, 1, "global-clock", true));
        events.push(mem(1, 1, "val:y", true));
        events.extend(commit(1, 1));
        let e = Execution::from_events(events);
        let report = check_strict_dap(&e, &s);
        assert!(!report.satisfied());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].object, "global-clock");
        assert!(report.to_string().contains("VIOLATED"));
    }

    #[test]
    fn per_item_metadata_only_satisfies_strict_dap() {
        let s = scenario();
        let mut events = begin(0, 0);
        events.push(mem(0, 0, "val:x", true));
        events.extend(commit(0, 0));
        events.extend(begin(1, 1));
        events.push(mem(1, 1, "val:y", true));
        events.extend(commit(1, 1));
        events.extend(begin(2, 2));
        events.push(mem(2, 2, "val:x", false));
        events.push(mem(2, 2, "val:y", false));
        events.extend(commit(2, 2));
        let e = Execution::from_events(events);
        let report = check_strict_dap(&e, &s);
        assert!(report.satisfied(), "{report}");
        // T3 conflicts with both writers, so its (trivial-only) accesses are fine, and
        // the contending pairs are exactly the conflicting ones.
        assert_eq!(report.contending_pairs, 2);
        assert!(report.to_string().contains("satisfied"));
    }

    #[test]
    fn conflict_graph_variant_allows_contention_along_a_path() {
        // T1 (writes x) and T2 (writes y) contend on an object, which strict DAP
        // forbids; but T3 (accessing x and y) overlaps both, forming a path
        // T1 – T3 – T2, so the conflict-graph variant allows it.
        let s = scenario();
        let mut events = begin(0, 0);
        events.extend(begin(1, 1));
        events.extend(begin(2, 2)); // T3 overlaps both
        events.push(mem(0, 0, "shared-meta", true));
        events.push(mem(1, 1, "shared-meta", true));
        events.push(mem(2, 2, "val:x", false));
        events.push(mem(2, 2, "val:y", false));
        events.extend(commit(0, 0));
        events.extend(commit(1, 1));
        events.extend(commit(2, 2));
        let e = Execution::from_events(events);
        assert!(!check_strict_dap(&e, &s).satisfied());
        assert!(check_conflict_graph_dap(&e, &s).satisfied());
        assert!(check_feeble_dap(&e, &s).satisfied());
    }

    #[test]
    fn feeble_variant_additionally_tolerates_non_concurrent_contention() {
        // T1 completes entirely before T2 begins; they contend on a metadata object
        // and there is no path (T3 never runs).  Conflict-graph DAP rejects it,
        // feeble DAP accepts it because the transactions are not concurrent.
        let s = scenario();
        let mut events = begin(0, 0);
        events.push(mem(0, 0, "meta", true));
        events.extend(commit(0, 0));
        events.extend(begin(1, 1));
        events.push(mem(1, 1, "meta", true));
        events.extend(commit(1, 1));
        let e = Execution::from_events(events);
        assert!(!check_strict_dap(&e, &s).satisfied());
        assert!(!check_conflict_graph_dap(&e, &s).satisfied());
        assert!(check_feeble_dap(&e, &s).satisfied());
    }

    #[test]
    fn may_contend_strict_follows_data_sets() {
        let s = scenario();
        assert!(!may_contend_strict(&s, TxId(0), TxId(1)));
        assert!(may_contend_strict(&s, TxId(0), TxId(2)));
        assert!(may_contend_strict(&s, TxId(1), TxId(2)));
    }

    #[test]
    fn empty_execution_satisfies_everything() {
        let s = scenario();
        let e = Execution::new();
        assert!(check_strict_dap(&e, &s).satisfied());
        assert!(check_conflict_graph_dap(&e, &s).satisfied());
        assert!(check_feeble_dap(&e, &s).satisfied());
    }

    #[test]
    fn variant_display_names_are_distinct() {
        assert_ne!(DapVariant::Strict.to_string(), DapVariant::Feeble.to_string());
        assert!(DapVariant::ConflictGraph.to_string().contains("conflict-graph"));
    }
}
