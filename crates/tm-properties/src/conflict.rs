//! The conflict relation and conflict graphs.
//!
//! Two (static) transactions *conflict* if their data sets intersect:
//! `D(T1) ∩ D(T2) ≠ ∅`.  The weaker variants of disjoint-access-parallelism found in
//! the literature (and discussed in the paper's related-work section) allow two
//! transactions to contend on a base object when there is a *path* between them in the
//! conflict graph of the minimal execution interval containing both — this module
//! provides that graph and its path queries.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tm_model::execution::Interval;
use tm_model::{DataItem, Execution, Scenario, TxId};

/// The conflict graph over a set of transactions: nodes are transactions, edges join
/// transactions whose data sets intersect.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    adjacency: BTreeMap<TxId, BTreeSet<TxId>>,
}

impl ConflictGraph {
    /// Build the conflict graph over all transactions of a scenario.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Self::from_scenario_subset(scenario, &scenario.txs.iter().map(|t| t.id).collect::<Vec<_>>())
    }

    /// Build the conflict graph over a subset of a scenario's transactions.
    pub fn from_scenario_subset(scenario: &Scenario, txs: &[TxId]) -> Self {
        let mut graph = ConflictGraph::default();
        for tx in txs {
            graph.adjacency.entry(*tx).or_default();
        }
        for (i, a) in txs.iter().enumerate() {
            for b in txs.iter().skip(i + 1) {
                if scenario.tx(*a).conflicts_with(scenario.tx(*b)) {
                    graph.add_edge(*a, *b);
                }
            }
        }
        graph
    }

    /// Add an (undirected) edge.
    pub fn add_edge(&mut self, a: TxId, b: TxId) {
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Whether two transactions are directly connected (conflict).
    pub fn conflict(&self, a: TxId, b: TxId) -> bool {
        self.adjacency.get(&a).map(|s| s.contains(&b)).unwrap_or(false)
    }

    /// Whether there is a path between two transactions (every two consecutive
    /// transactions on the path conflict).  A transaction is trivially connected to
    /// itself.
    pub fn connected(&self, a: TxId, b: TxId) -> bool {
        self.path(a, b).is_some()
    }

    /// A shortest path between two transactions, if one exists.
    pub fn path(&self, a: TxId, b: TxId) -> Option<Vec<TxId>> {
        if a == b {
            return Some(vec![a]);
        }
        if !self.adjacency.contains_key(&a) || !self.adjacency.contains_key(&b) {
            return None;
        }
        let mut prev: BTreeMap<TxId, TxId> = BTreeMap::new();
        let mut queue = VecDeque::from([a]);
        let mut seen = BTreeSet::from([a]);
        while let Some(cur) = queue.pop_front() {
            for next in self.adjacency.get(&cur).into_iter().flatten() {
                if seen.insert(*next) {
                    prev.insert(*next, cur);
                    if *next == b {
                        let mut path = vec![b];
                        let mut at = b;
                        while let Some(p) = prev.get(&at) {
                            path.push(*p);
                            at = *p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(*next);
                }
            }
        }
        None
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> Vec<TxId> {
        self.adjacency.keys().copied().collect()
    }
}

/// The data items shared by two transactions' data sets (empty iff they do not
/// conflict).
pub fn shared_items(scenario: &Scenario, a: TxId, b: TxId) -> BTreeSet<DataItem> {
    let da = scenario.tx(a).data_set();
    let db = scenario.tx(b).data_set();
    da.intersection(&db).cloned().collect()
}

/// The transactions of an execution whose active interval overlaps `interval` —
/// the node set used by interval-scoped conflict graphs.
pub fn transactions_overlapping(execution: &Execution, interval: Interval) -> Vec<TxId> {
    execution
        .active_intervals()
        .into_iter()
        .filter(|(_, iv)| iv.overlaps(&interval))
        .map(|(tx, _)| tx)
        .collect()
}

/// Build the conflict graph of the minimal execution interval containing the active
/// intervals of both `a` and `b` (the graph used by the conflict-graph variant of
/// disjoint-access-parallelism).
pub fn interval_conflict_graph(
    scenario: &Scenario,
    execution: &Execution,
    a: TxId,
    b: TxId,
) -> ConflictGraph {
    let intervals = execution.active_intervals();
    let (Some(ia), Some(ib)) = (intervals.get(&a), intervals.get(&b)) else {
        return ConflictGraph::default();
    };
    let hull = ia.hull(ib);
    let nodes = transactions_overlapping(execution, hull);
    ConflictGraph::from_scenario_subset(scenario, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::Scenario;

    fn chain_scenario() -> Scenario {
        // T1–T2 share x, T2–T3 share y, T4 is isolated.
        Scenario::builder()
            .tx(0, "T1", |t| t.write("x", 1))
            .tx(1, "T2", |t| t.read("x").write("y", 2))
            .tx(2, "T3", |t| t.read("y"))
            .tx(3, "T4", |t| t.write("z", 4))
            .build()
    }

    #[test]
    fn edges_follow_data_set_intersection() {
        let s = chain_scenario();
        let g = ConflictGraph::from_scenario(&s);
        assert!(g.conflict(TxId(0), TxId(1)));
        assert!(g.conflict(TxId(1), TxId(2)));
        assert!(!g.conflict(TxId(0), TxId(2)));
        assert!(!g.conflict(TxId(0), TxId(3)));
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.nodes().len(), 4);
    }

    #[test]
    fn paths_capture_transitive_conflicts() {
        let s = chain_scenario();
        let g = ConflictGraph::from_scenario(&s);
        assert!(g.connected(TxId(0), TxId(2)));
        assert_eq!(g.path(TxId(0), TxId(2)).unwrap(), vec![TxId(0), TxId(1), TxId(2)]);
        assert!(!g.connected(TxId(0), TxId(3)));
        assert!(g.path(TxId(0), TxId(3)).is_none());
        assert_eq!(g.path(TxId(1), TxId(1)).unwrap(), vec![TxId(1)]);
    }

    #[test]
    fn shared_items_lists_the_intersection() {
        let s = chain_scenario();
        let xs = shared_items(&s, TxId(0), TxId(1));
        assert_eq!(xs, BTreeSet::from([DataItem::new("x")]));
        assert!(shared_items(&s, TxId(0), TxId(3)).is_empty());
    }

    #[test]
    fn unknown_nodes_are_not_connected() {
        let g = ConflictGraph::default();
        assert!(!g.connected(TxId(0), TxId(1)));
        assert!(g.is_empty());
    }

    #[test]
    fn subset_graph_only_contains_requested_nodes() {
        let s = chain_scenario();
        let g = ConflictGraph::from_scenario_subset(&s, &[TxId(0), TxId(1)]);
        assert_eq!(g.len(), 2);
        assert!(g.conflict(TxId(0), TxId(1)));
        assert!(!g.connected(TxId(0), TxId(2)));
    }
}
