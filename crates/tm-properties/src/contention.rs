//! Base-object contention between transactions in a recorded execution.
//!
//! Two executions (here: the step subsequences `α|T1` and `α|T2` of two transactions)
//! *contend* on a base object `o` if both contain a primitive operation on `o` and at
//! least one of those primitives is non-trivial.  Contention is the low-level
//! phenomenon disjoint-access-parallelism restricts: it is what forces cache-line
//! transfers and synchronization between otherwise unrelated transactions.

use std::collections::BTreeMap;
use tm_model::{Execution, TxId};

/// A witnessed contention between two transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contention {
    /// One of the transactions.
    pub tx1: TxId,
    /// The other transaction.
    pub tx2: TxId,
    /// The base object (by stable name) they contend on.
    pub object: String,
}

impl std::fmt::Display for Contention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} and {} contend on base object `{}`", self.tx1, self.tx2, self.object)
    }
}

/// Whether two transactions contend in an execution; returns the first witnessing
/// object name if they do.
pub fn contend_on(execution: &Execution, tx1: TxId, tx2: TxId) -> Option<String> {
    let f1 = execution.footprint_of_tx(tx1);
    let f2 = execution.footprint_of_tx(tx2);
    f1.contends_with(&f2)
}

/// All pairwise contentions in an execution (each unordered pair reported once, with
/// one witnessing object).
pub fn all_contentions(execution: &Execution) -> Vec<Contention> {
    let txs = execution.transactions();
    let footprints: BTreeMap<TxId, _> =
        txs.iter().map(|t| (*t, execution.footprint_of_tx(*t))).collect();
    let mut out = Vec::new();
    for (i, a) in txs.iter().enumerate() {
        for b in txs.iter().skip(i + 1) {
            if let Some(object) = footprints[a].contends_with(&footprints[b]) {
                out.push(Contention { tx1: *a, tx2: *b, object });
            }
        }
    }
    out
}

/// The number of distinct base objects each transaction accessed (a cheap measure of
/// metadata footprint reported by the ablation benchmarks).
pub fn objects_touched(execution: &Execution) -> BTreeMap<TxId, usize> {
    execution
        .transactions()
        .into_iter()
        .map(|t| (t, execution.footprint_of_tx(t).all().len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::primitive::{PrimResponse, Primitive};
    use tm_model::step::{Event, MemStep};
    use tm_model::{ObjId, ProcId, Word};

    fn step(proc: usize, tx: usize, obj: &str, write: bool) -> Event {
        Event::Mem(MemStep {
            proc: ProcId(proc),
            tx: TxId(tx),
            obj: ObjId(0),
            obj_name: obj.into(),
            prim: if write { Primitive::Write(Word::Int(1)) } else { Primitive::Read },
            resp: if write { PrimResponse::Ack } else { PrimResponse::Value(Word::Int(0)) },
        })
    }

    #[test]
    fn writer_and_reader_of_same_object_contend() {
        let e = Execution::from_events(vec![step(0, 0, "val:x", true), step(1, 1, "val:x", false)]);
        assert_eq!(contend_on(&e, TxId(0), TxId(1)), Some("val:x".into()));
        let all = all_contentions(&e);
        assert_eq!(all.len(), 1);
        assert!(all[0].to_string().contains("val:x"));
    }

    #[test]
    fn two_readers_do_not_contend() {
        let e =
            Execution::from_events(vec![step(0, 0, "val:x", false), step(1, 1, "val:x", false)]);
        assert_eq!(contend_on(&e, TxId(0), TxId(1)), None);
        assert!(all_contentions(&e).is_empty());
    }

    #[test]
    fn disjoint_objects_do_not_contend() {
        let e = Execution::from_events(vec![step(0, 0, "val:x", true), step(1, 1, "val:y", true)]);
        assert!(all_contentions(&e).is_empty());
    }

    #[test]
    fn two_writers_of_same_object_contend() {
        let e = Execution::from_events(vec![step(0, 0, "clock", true), step(1, 1, "clock", true)]);
        assert_eq!(all_contentions(&e).len(), 1);
    }

    #[test]
    fn objects_touched_counts_distinct_names() {
        let e = Execution::from_events(vec![
            step(0, 0, "a", true),
            step(0, 0, "a", false),
            step(0, 0, "b", false),
            step(1, 1, "c", true),
        ]);
        let counts = objects_touched(&e);
        assert_eq!(counts[&TxId(0)], 2);
        assert_eq!(counts[&TxId(1)], 1);
    }
}
