//! Liveness probes: "transactions eventually commit if they run solo".
//!
//! The PCL theorem uses a deliberately weak liveness property — obstruction-freedom
//! restricted to the guarantee that a transaction running **solo** (no other process
//! takes steps during its execution interval) eventually commits.  Two situations
//! exercise it:
//!
//! 1. a transaction running solo from the **initial configuration**, and
//! 2. a transaction running solo from a configuration in which some *other*
//!    transaction has been **paused mid-flight** after an arbitrary prefix of its
//!    steps (this is where lock-based designs fail: the paused transaction may hold a
//!    lock forever, and the solo victim spins).
//!
//! [`probe_obstruction_freedom`] replays exactly these situations with the
//! deterministic simulator and reports every victim that aborts or fails to finish
//! within the step budget.  The probes assume the scenario assigns one transaction per
//! process (true for every scenario in this reproduction); for processes with several
//! transactions only the first is probed.

use std::fmt;
use tm_model::prelude::*;

/// Configuration of the liveness probes.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Step budget granted to a solo run before declaring it blocked.
    pub step_limit: usize,
    /// Upper bound on the number of prefix lengths probed per blocker (prefixes are
    /// probed exhaustively up to the blocker's solo length, capped by this bound).
    pub max_prefix: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig { step_limit: 2_000, max_prefix: 200 }
    }
}

/// One liveness violation found by the probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessViolation {
    /// The transaction that ran solo and failed to commit.
    pub victim: TxId,
    /// The transaction that was paused mid-flight beforehand (`None` for the
    /// from-initial-configuration probe).
    pub blocker: Option<TxId>,
    /// How many steps of the blocker had been executed before it was paused.
    pub prefix_steps: usize,
    /// What happened to the victim.
    pub outcome: TxOutcome,
    /// Whether the victim hit the step budget (the signature of spinning on a lock).
    pub limit_hit: bool,
}

impl fmt::Display for LivenessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.blocker {
            Some(b) => write!(
                f,
                "{} run solo after {} was paused at step {} ended as `{}`{}",
                self.victim,
                b,
                self.prefix_steps,
                self.outcome,
                if self.limit_hit { " (step budget exhausted — blocked)" } else { "" }
            ),
            None => write!(
                f,
                "{} run solo from the initial configuration ended as `{}`{}",
                self.victim,
                self.outcome,
                if self.limit_hit { " (step budget exhausted — blocked)" } else { "" }
            ),
        }
    }
}

/// Result of the liveness probes for one algorithm on one scenario.
#[derive(Debug, Clone, Default)]
pub struct LivenessReport {
    /// Every violation found.
    pub violations: Vec<LivenessViolation>,
    /// Number of individual solo runs performed.
    pub probes_run: usize,
}

impl LivenessReport {
    /// `true` iff every probed solo run committed — the algorithm behaves
    /// obstruction-free (for the probed scenario).
    pub fn satisfied(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for LivenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.satisfied() {
            write!(f, "obstruction-freedom probe: satisfied ({} solo runs)", self.probes_run)
        } else {
            writeln!(
                f,
                "obstruction-freedom probe: VIOLATED ({} of {} solo runs failed)",
                self.violations.len(),
                self.probes_run
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// The first transaction of each process (the probed transactions).
fn first_tx_per_process(scenario: &Scenario) -> Vec<TxSpec> {
    (0..scenario.n_procs)
        .filter_map(|p| scenario.txs_of(ProcId(p)).first().map(|t| (*t).clone()))
        .collect()
}

/// Count the steps a transaction takes when run solo to completion from the initial
/// configuration (used to bound the prefix enumeration).
fn solo_length(algo: &dyn TmAlgorithm, scenario: &Scenario, spec: &TxSpec, limit: usize) -> usize {
    let sim = Simulator::new(algo, scenario).with_step_limit(limit);
    let out = sim.run(&Schedule::from_directives(vec![Directive::RunUntilTxDone(spec.proc)]));
    out.reports.first().map(|r| r.steps_taken).unwrap_or(0)
}

/// Run the obstruction-freedom probes for an algorithm on a scenario.
pub fn probe_obstruction_freedom(
    algo: &dyn TmAlgorithm,
    scenario: &Scenario,
    config: ProbeConfig,
) -> LivenessReport {
    let mut report = LivenessReport::default();
    let probed = first_tx_per_process(scenario);

    // Probe 1: every transaction solo from the initial configuration.
    for victim in &probed {
        let sim = Simulator::new(algo, scenario).with_step_limit(config.step_limit);
        let out = sim.run(&Schedule::from_directives(vec![Directive::RunUntilTxDone(victim.proc)]));
        report.probes_run += 1;
        let outcome = out.outcome_of(victim.id);
        if outcome != TxOutcome::Committed {
            report.violations.push(LivenessViolation {
                victim: victim.id,
                blocker: None,
                prefix_steps: 0,
                outcome,
                limit_hit: out.any_limit_hit(),
            });
        }
    }

    // Probe 2: every transaction solo after every prefix of every other transaction.
    for blocker in &probed {
        let blocker_len =
            solo_length(algo, scenario, blocker, config.step_limit).min(config.max_prefix);
        for prefix in 1..=blocker_len {
            for victim in &probed {
                if victim.id == blocker.id {
                    continue;
                }
                let sim = Simulator::new(algo, scenario).with_step_limit(config.step_limit);
                let out = sim.run(&Schedule::from_directives(vec![
                    Directive::Steps(blocker.proc, prefix),
                    Directive::RunUntilTxDone(victim.proc),
                ]));
                report.probes_run += 1;
                let outcome = out.outcome_of(victim.id);
                let limit_hit = out.reports.get(1).map(|r| r.limit_hit).unwrap_or(false);
                if outcome != TxOutcome::Committed {
                    report.violations.push(LivenessViolation {
                        victim: victim.id,
                        blocker: Some(blocker.id),
                        prefix_steps: prefix,
                        outcome,
                        limit_hit,
                    });
                }
            }
        }
    }
    report
}

/// A cruder global-progress probe: run every transaction under a round-robin schedule
/// and report the transactions that did not complete within the step budget.  Useful
/// for contrasting blocking and non-blocking designs under contention; it is *not* a
/// lock-freedom decision procedure.
pub fn probe_round_robin_progress(
    algo: &dyn TmAlgorithm,
    scenario: &Scenario,
    max_steps: usize,
) -> Vec<TxId> {
    let sim = Simulator::new(algo, scenario).with_step_limit(max_steps);
    let out = sim.run(&Schedule::round_robin(max_steps));
    scenario
        .txs
        .iter()
        .filter(|t| out.outcome_of(t.id) == TxOutcome::Unfinished)
        .map(|t| t.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::algorithm::{TxLogic, TxResult};
    use tm_model::{DataItem, Word};

    /// Unsynchronized single-register algorithm: trivially obstruction-free.
    struct Naive;
    struct NaiveTx;
    impl TmAlgorithm for Naive {
        fn name(&self) -> &'static str {
            "naive"
        }
        fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
            Box::new(NaiveTx)
        }
    }
    impl TxLogic for NaiveTx {
        fn read(&mut self, ctx: &mut dyn TxCtx, item: &DataItem) -> TxResult<i64> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            Ok(ctx.read_obj(obj).expect_int())
        }
        fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            ctx.write_obj(obj, Word::Int(value));
            Ok(())
        }
        fn commit(&mut self, _ctx: &mut dyn TxCtx) -> TxResult<()> {
            Ok(())
        }
    }

    /// A single global lock acquired at begin and released at commit: blocking.
    struct GlobalLock;
    struct GlobalLockTx {
        holding: bool,
    }
    impl TmAlgorithm for GlobalLock {
        fn name(&self) -> &'static str {
            "global-lock"
        }
        fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
            Box::new(GlobalLockTx { holding: false })
        }
    }
    impl TxLogic for GlobalLockTx {
        fn begin(&mut self, ctx: &mut dyn TxCtx) {
            let lock = ctx.obj("global-lock", Word::Int(0));
            while !ctx.cas_obj(lock, Word::Int(0), Word::Int(1)) {}
            self.holding = true;
        }
        fn read(&mut self, ctx: &mut dyn TxCtx, item: &DataItem) -> TxResult<i64> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            Ok(ctx.read_obj(obj).expect_int())
        }
        fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            ctx.write_obj(obj, Word::Int(value));
            Ok(())
        }
        fn commit(&mut self, ctx: &mut dyn TxCtx) -> TxResult<()> {
            let lock = ctx.obj("global-lock", Word::Int(0));
            ctx.write_obj(lock, Word::Int(0));
            self.holding = false;
            Ok(())
        }
    }

    fn two_disjoint_writers() -> Scenario {
        Scenario::builder()
            .tx(0, "T1", |t| t.write("x", 1))
            .tx(1, "T2", |t| t.write("y", 2))
            .build()
    }

    #[test]
    fn unsynchronized_algorithm_passes_all_probes() {
        let scenario = two_disjoint_writers();
        let report = probe_obstruction_freedom(&Naive, &scenario, ProbeConfig::default());
        assert!(report.satisfied(), "{report}");
        assert!(report.probes_run >= 2);
        assert!(report.to_string().contains("satisfied"));
    }

    #[test]
    fn global_lock_algorithm_fails_the_paused_writer_probe() {
        let scenario = two_disjoint_writers();
        let config = ProbeConfig { step_limit: 100, max_prefix: 10 };
        let report = probe_obstruction_freedom(&GlobalLock, &scenario, config);
        assert!(!report.satisfied(), "{report}");
        // The violation must be a blocked victim (step budget exhausted), with the
        // blocker identified.
        assert!(report.violations.iter().any(|v| v.blocker.is_some() && v.limit_hit));
        assert!(report.to_string().contains("VIOLATED"));
    }

    #[test]
    fn global_lock_algorithm_still_passes_the_solo_probe() {
        // From the initial configuration the lock is free, so solo runs commit.
        let scenario = two_disjoint_writers();
        let config = ProbeConfig { step_limit: 100, max_prefix: 10 };
        let report = probe_obstruction_freedom(&GlobalLock, &scenario, config);
        assert!(report.violations.iter().all(|v| v.blocker.is_some()));
    }

    #[test]
    fn round_robin_progress_distinguishes_blocking_from_nonblocking() {
        let scenario = two_disjoint_writers();
        assert!(probe_round_robin_progress(&Naive, &scenario, 1_000).is_empty());
        // Even the blocking design eventually completes under round robin (the lock
        // holder keeps getting scheduled), so this probe alone cannot condemn it.
        assert!(probe_round_robin_progress(&GlobalLock, &scenario, 1_000).is_empty());
    }

    #[test]
    fn violation_display_mentions_the_blocker() {
        let v = LivenessViolation {
            victim: TxId(1),
            blocker: Some(TxId(0)),
            prefix_steps: 3,
            outcome: TxOutcome::Unfinished,
            limit_hit: true,
        };
        let text = v.to_string();
        assert!(text.contains("T2"));
        assert!(text.contains("T1"));
        assert!(text.contains("blocked"));
    }
}
