//! Livelock regression: contention-managed retry policies must keep the
//! *typical* transaction's attempt count bounded under a hot-pair storm
//! where immediate retry burns unbounded attempts.
//!
//! The storm is deterministic by construction (kv-zipf distilled to its hot
//! pair): a stalled writer takes the hot variable's encounter-time lock on
//! the blocking backend and holds it for a fixed window while 8 victim
//! threads each run exactly one read-modify-write of the hot pair; a
//! barrier closes the round and the next window opens.  Every victim
//! transaction therefore runs against a locked hot variable for a full
//! window:
//!
//! * **immediate retry** re-attempts as fast as the (deliberately tiny)
//!   spin budget aborts it — thousands of attempts per window, on every
//!   victim transaction at once;
//! * **karma** and **timestamp** elect one transaction to poll the lock at
//!   full speed and pace everyone else, so the *median* victim commits in
//!   a bounded number of attempts.  The maximum is the wrong statistic
//!   here by design: some transaction must poll the lock, and both
//!   policies deliberately nominate exactly one.
//!
//! The attempts histogram is log2-bucketed and quantiles report bucket
//! lower bounds, so the asserted bound has a power-of-two's worth of slack
//! on each side.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use stm_runtime::policy::{ImmediateRetry, Karma, RetryPolicy, Timestamp};
use stm_runtime::registry::{register, Axis, BackendSpec, Triangle};
use stm_runtime::tl2::Tl2Backend;
use stm_runtime::{Backend, BackendId, Stm};

const VICTIMS: usize = 8;
const ROUNDS: usize = 5;
const STALL: Duration = Duration::from_millis(30);
/// Attempts-per-transaction bound (asserted at the median): the managed
/// policies stay under it, immediate retry blows through it.
const BOUND: u32 = 512;

fn tiny_spin_tl2() -> Arc<dyn Backend> {
    // A tiny spin budget makes every attempt against the locked hot
    // variable abort quickly, so attempt counts — not wall time — are what
    // the policies differ in.
    Arc::new(Tl2Backend::with_spin_limit(64))
}

fn storm_backend() -> BackendId {
    register(BackendSpec {
        name: "tl2-tiny-spin",
        aliases: &[],
        summary: "tl2-blocking with a 64-iteration spin budget (livelock regression storms)",
        triangle: Triangle {
            sacrificed: Axis::Liveness,
            parallelism: "per-var metadata only (strict DAP)",
            consistency: "serializable",
            liveness: "blocking (tiny spin budget, then abort)",
        },
        constructor: tiny_spin_tl2,
    })
    .expect("registering the tiny-spin storm backend")
}

/// Run the hot-pair storm under `policy`; returns (commits, attempts_p50).
fn hot_pair_storm(policy: Arc<dyn RetryPolicy>) -> (u64, u32) {
    let stm = Arc::new(Stm::new(storm_backend()).with_policy(policy));
    let hot_a = stm.alloc(0i64);
    let hot_b = stm.alloc(0i64);
    // Monotone round counter: window `r` is open once it reads `r + 1`.
    // Victims poll it so every victim transaction starts against a locked
    // hot variable (a plain flag could be missed by a slowly-scheduled
    // victim after the window already closed).
    let window_open = Arc::new(AtomicUsize::new(0));
    let round_done = Arc::new(Barrier::new(VICTIMS + 1));
    std::thread::scope(|s| {
        {
            let stm = Arc::clone(&stm);
            let window_open = Arc::clone(&window_open);
            let round_done = Arc::clone(&round_done);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    stm.run(|t| {
                        // Encounter-time lock on the hot variable, held
                        // across the whole stall.
                        t.write(hot_a, -1)?;
                        window_open.store(r + 1, Ordering::Release);
                        std::thread::sleep(STALL);
                        Ok(())
                    });
                    round_done.wait();
                }
            });
        }
        for _ in 0..VICTIMS {
            let stm = Arc::clone(&stm);
            let window_open = Arc::clone(&window_open);
            let round_done = Arc::clone(&round_done);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    while window_open.load(Ordering::Acquire) < r + 1 {
                        std::thread::yield_now();
                    }
                    stm.run(|t| {
                        let a = t.read(hot_a)?;
                        let b = t.read(hot_b)?;
                        t.write(hot_a, a + 1)?;
                        t.write(hot_b, b + 1)
                    });
                    round_done.wait();
                }
            });
        }
    });
    (stm.stats().commits(), stm.stats().attempts_quantile(0.5))
}

#[test]
fn managed_policies_bound_the_attempts_immediate_retry_burns() {
    let total = (ROUNDS * (VICTIMS + 1)) as u64;

    let (commits, immediate_p50) = hot_pair_storm(Arc::new(ImmediateRetry));
    assert_eq!(commits, total, "every transaction still commits under immediate retry");
    assert!(
        immediate_p50 > BOUND,
        "immediate retry must burn the stall windows (p50 {immediate_p50} ≤ {BOUND}); \
         if this fails the storm no longer stalls its victims"
    );

    for (name, policy) in [
        ("karma", Arc::new(Karma::new(1_024)) as Arc<dyn RetryPolicy>),
        ("timestamp", Arc::new(Timestamp::new(1 << 17)) as Arc<dyn RetryPolicy>),
    ] {
        let (commits, p50) = hot_pair_storm(policy);
        assert_eq!(commits, total, "{name}: every transaction must still commit");
        assert!(
            p50 <= BOUND,
            "{name} must pace the storm (p50 {p50} > {BOUND}, immediate burned {immediate_p50})"
        );
    }
}
