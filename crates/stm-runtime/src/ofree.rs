//! The obstruction-free backend: never waits, aborts on any contention.
//!
//! Same per-variable layout as the blocking backend (lock bit, version, value) and
//! the same per-variable-only metadata discipline, but every potentially blocking
//! wait is replaced by an immediate abort:
//!
//! * writes are buffered and the write locks are only taken at commit, with a single
//!   `try_lock` each — a busy lock aborts the attempt instead of spinning;
//! * reads of a locked variable abort instead of waiting;
//! * commit validates the read set and installs the write set, exactly like TL2.
//!
//! A transaction running without contention commits in a bounded number of its own
//! steps (obstruction-freedom); under contention progress is probabilistic (the
//! retry loop in [`crate::Stm::run`]), mirroring how obstruction-free STMs rely on
//! contention managers in practice.

use crate::backend::{Backend, VarId};
use crate::txn::{AbortReason, StmError, TxnData};
use crate::vartable::VarTable;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

#[derive(Default)]
struct Cell {
    locked: AtomicBool,
    version: AtomicU64,
    value: AtomicI64,
}

/// The obstruction-free backend.
pub struct OFreeBackend {
    cells: VarTable<Cell>,
}

impl OFreeBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        OFreeBackend { cells: VarTable::new() }
    }

    fn cell(&self, var: VarId) -> &Cell {
        self.cells.get(var.index())
    }

    fn release_all(&self, data: &mut TxnData) {
        for var in std::mem::take(&mut data.held_locks) {
            self.cell(var).locked.store(false, Ordering::Release);
        }
    }
}

impl Default for OFreeBackend {
    fn default() -> Self {
        OFreeBackend::new()
    }
}

impl Backend for OFreeBackend {
    fn alloc_words(&self, initials: &[i64]) -> VarId {
        VarId(self.cells.alloc_init(initials.len(), |k, cell| {
            cell.value.store(initials[k], Ordering::Relaxed);
        }))
    }

    fn begin(&self, data: &mut TxnData) {
        data.reset();
    }

    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, StmError> {
        if let Some(v) = data.write_set.get(&var) {
            return Ok(*v);
        }
        if let Some(v) = data.read_cache.get(&var) {
            return Ok(*v);
        }
        let cell = self.cell(var);
        if cell.locked.load(Ordering::Acquire) {
            data.set_abort_reason(AbortReason::LockConflict);
            return Err(StmError::Aborted); // never wait
        }
        let v1 = cell.version.load(Ordering::Acquire);
        let value = cell.value.load(Ordering::Acquire);
        let v2 = cell.version.load(Ordering::Acquire);
        if v1 != v2 || cell.locked.load(Ordering::Acquire) {
            data.set_abort_reason(AbortReason::LockConflict);
            return Err(StmError::Aborted);
        }
        data.read_versions.insert(var, v1);
        data.read_cache.insert(var, value);
        Ok(value)
    }

    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), StmError> {
        data.write_set.insert(var, value);
        Ok(())
    }

    fn commit(&self, data: &mut TxnData) -> Result<(), StmError> {
        // Acquire write locks in variable order, aborting on the first busy one.
        for i in 0..data.write_set.len() {
            let var = data.write_set.key_at(i);
            let cell = self.cell(var);
            if cell
                .locked
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                self.release_all(data);
                data.set_abort_reason(AbortReason::LockConflict);
                return Err(StmError::Aborted);
            }
            data.held_locks.push(var);
        }
        // Validate the read set.
        for (var, recorded) in &data.read_versions {
            let cell = self.cell(*var);
            let locked_by_other =
                cell.locked.load(Ordering::Acquire) && !data.held_locks.contains(var);
            if locked_by_other || cell.version.load(Ordering::Acquire) != *recorded {
                self.release_all(data);
                data.set_abort_reason(AbortReason::ReadValidation);
                return Err(StmError::Aborted);
            }
        }
        data.mark_validated();
        // Install and release.
        for (&var, &value) in &data.write_set {
            let cell = self.cell(var);
            cell.value.store(value, Ordering::Release);
            cell.version.fetch_add(1, Ordering::AcqRel);
        }
        self.release_all(data);
        Ok(())
    }

    fn cleanup(&self, data: &mut TxnData) {
        self.release_all(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_transactions_commit() {
        let b = OFreeBackend::new();
        let v = b.alloc(1);
        let mut d = TxnData::default();
        b.begin(&mut d);
        assert_eq!(b.read(&mut d, v).unwrap(), 1);
        b.write(&mut d, v, 2).unwrap();
        assert_eq!(b.read(&mut d, v).unwrap(), 2); // read-your-own-write
        assert!(b.commit(&mut d).is_ok());

        let mut d2 = TxnData::default();
        b.begin(&mut d2);
        assert_eq!(b.read(&mut d2, v).unwrap(), 2);
    }

    #[test]
    fn conflicting_committed_writer_forces_validation_abort() {
        let b = OFreeBackend::new();
        let v = b.alloc(0);
        let w = b.alloc(0);

        let mut t1 = TxnData::default();
        b.begin(&mut t1);
        assert_eq!(b.read(&mut t1, v).unwrap(), 0);

        let mut t2 = TxnData::default();
        b.begin(&mut t2);
        b.write(&mut t2, v, 7).unwrap();
        assert!(b.commit(&mut t2).is_ok());

        b.write(&mut t1, w, 1).unwrap();
        assert_eq!(b.commit(&mut t1), Err(StmError::Aborted));
        // Nothing leaked: w is still writable by a fresh transaction.
        let mut t3 = TxnData::default();
        b.begin(&mut t3);
        b.write(&mut t3, w, 2).unwrap();
        assert!(b.commit(&mut t3).is_ok());
    }

    #[test]
    fn reads_of_a_locked_variable_abort_immediately_instead_of_waiting() {
        let b = OFreeBackend::new();
        let v = b.alloc(0);
        // Simulate a writer stalled mid-commit by locking the cell directly through a
        // half-finished commit.
        let mut stalled = TxnData::default();
        b.begin(&mut stalled);
        b.write(&mut stalled, v, 5).unwrap();
        // Take the lock as commit would, but do not finish.
        let cell = b.cell(v);
        assert!(cell
            .locked
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());

        let mut reader = TxnData::default();
        b.begin(&mut reader);
        let start = std::time::Instant::now();
        assert_eq!(b.read(&mut reader, v), Err(StmError::Aborted));
        assert!(start.elapsed() < std::time::Duration::from_millis(50));
        cell.locked.store(false, Ordering::Release);
    }

    #[test]
    fn write_write_races_leave_exactly_one_winner_per_round() {
        let b = Arc::new(OFreeBackend::new());
        let v = b.alloc(0);
        std::thread::scope(|s| {
            for i in 0..4 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    // Retry loop at the test level (the Stm front-end normally does this).
                    loop {
                        let mut d = TxnData::default();
                        b.begin(&mut d);
                        let cur = match b.read(&mut d, v) {
                            Ok(c) => c,
                            Err(_) => continue,
                        };
                        if b.write(&mut d, v, cur + i + 1).is_err() {
                            continue;
                        }
                        if b.commit(&mut d).is_ok() {
                            break;
                        }
                    }
                });
            }
        });
        let mut d = TxnData::default();
        b.begin(&mut d);
        // All four increments landed (values 1..=4 added in some order).
        assert_eq!(b.read(&mut d, v).unwrap(), 1 + 2 + 3 + 4);
    }
}
