//! The runtime's telemetry handles: phase-latency histograms, abort-reason
//! counters mirrored into a metrics registry, the liveness watchdog, and the
//! optional commit tracer.
//!
//! [`crate::Stm::new`] attaches an [`StmTelemetry`] only when
//! [`tm_telemetry::enabled`] is set, so a metrics-off run carries a `None`
//! and pays one never-taken branch per commit.  Tests attach handles bound
//! to a private [`tm_telemetry::Registry`] via [`crate::Stm::with_telemetry`]
//! so their assertions never see another test's samples.

use crate::txn::AbortReason;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use tm_telemetry::{Counter, Gauge, Histogram, Registry, RingTracer};

/// Aborts-without-a-commit a thread must accumulate before the watchdog
/// counts it as stalled.
pub const WATCHDOG_STALL_THRESHOLD: u64 = 64;

/// Per-thread slots the watchdog tracks.  Threads are assigned slots from a
/// process-wide counter; processes that ever create more than this many
/// threads wrap around and share slots (the gauge stays a lower bound).
pub const WATCHDOG_SLOTS: usize = 64;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| match s.get() {
        Some(slot) => slot,
        None => {
            let slot = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % WATCHDOG_SLOTS;
            s.set(Some(slot));
            slot
        }
    })
}

/// The liveness watchdog: per-thread no-commit-progress detection ("What's
/// Live?" made operational).  Each abort bumps the calling thread's
/// aborts-since-last-commit count; crossing [`WATCHDOG_STALL_THRESHOLD`]
/// marks the thread stalled (gauge +1, stall-event counter +1) until its
/// next commit clears it.
#[derive(Debug)]
pub struct LivenessWatchdog {
    slots: [AtomicU64; WATCHDOG_SLOTS],
    threshold: u64,
    /// Threads currently past the threshold.
    stalled: Gauge,
    /// Total threshold crossings ever.
    stall_events: Counter,
}

impl LivenessWatchdog {
    fn new(stalled: Gauge, stall_events: Counter, threshold: u64) -> Self {
        LivenessWatchdog {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
            threshold: threshold.max(1),
            stalled,
            stall_events,
        }
    }

    /// Record an abort on the calling thread.
    pub fn on_abort(&self) {
        let prev = self.slots[thread_slot()].fetch_add(1, Ordering::Relaxed);
        if prev + 1 == self.threshold {
            self.stall_events.inc();
            self.stalled.add(1);
        }
    }

    /// Record a commit on the calling thread (progress: clears any stall).
    pub fn on_commit(&self) {
        // Fast path: a plain load on the thread's own slot — commits after
        // commits never pay the RMW.
        let slot = &self.slots[thread_slot()];
        if slot.load(Ordering::Relaxed) == 0 {
            return;
        }
        let prev = slot.swap(0, Ordering::Relaxed);
        if prev >= self.threshold {
            self.stalled.add(-1);
        }
    }

    /// Threads currently counted as stalled.
    pub fn stalled_threads(&self) -> i64 {
        self.stalled.get()
    }

    /// Total threshold crossings so far.
    pub fn stall_events(&self) -> u64 {
        self.stall_events.get()
    }
}

/// Commit-phase labels, in reporting order.
pub const PHASES: [&str; 3] = ["read", "validate", "publish"];

/// Phase-latency sampling period: 1 in this many attempts is wall-clock
/// timed.  The clock reads (four `Instant::now()` calls per timed commit)
/// are the dominant metrics-on cost on sub-microsecond transactions, so the
/// histograms sample; the commit/abort *counters* stay exact.  Each thread's
/// first attempt is always sampled, so any thread that commits contributes
/// at least one sample per phase.
pub const PHASE_SAMPLE_EVERY: u64 = 64;

thread_local! {
    static PHASE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Advance the calling thread's sampling tick; `true` when this attempt
/// should be phase-timed.
pub(crate) fn phase_sample_tick() -> bool {
    PHASE_TICK.with(|t| {
        let v = t.get();
        t.set(v.wrapping_add(1));
        v % PHASE_SAMPLE_EVERY == 0
    })
}

/// Everything one [`crate::Stm`] instance records when metrics are on.
#[derive(Debug)]
pub struct StmTelemetry {
    /// Wall time from begin to the body returning `Ok` (read-set build).
    pub phase_read: Histogram,
    /// Wall time from commit entry to the backend's validate→publish mark.
    pub phase_validate: Histogram,
    /// Wall time from the mark to commit return (publish/install).
    pub phase_publish: Histogram,
    /// Commit counter mirrored into the registry.
    pub commits: Counter,
    /// Abort counters mirrored into the registry, one per [`AbortReason`]
    /// (in [`AbortReason::ALL`] order).
    pub aborts: [Counter; AbortReason::ALL.len()],
    /// The per-thread liveness watchdog.
    pub watchdog: LivenessWatchdog,
    /// The post-mortem commit tracer, when tracing is enabled.
    pub tracer: Option<&'static RingTracer>,
}

impl StmTelemetry {
    /// Build the instrument set for one backend inside `registry`.  The same
    /// `(metric, backend)` pair always resolves to the same underlying
    /// values, so several `Stm` instances over one backend accumulate into
    /// one series.
    pub fn from_registry(registry: &Registry, backend: &str) -> Self {
        fn labelled<'a>(backend: &'a str, extra: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
            let mut all = vec![("backend", backend)];
            all.extend_from_slice(extra);
            all
        }
        StmTelemetry {
            phase_read: registry.histogram(
                "stm_phase_ns",
                &labelled(backend, &[("phase", "read")]),
                "ns",
            ),
            phase_validate: registry.histogram(
                "stm_phase_ns",
                &labelled(backend, &[("phase", "validate")]),
                "ns",
            ),
            phase_publish: registry.histogram(
                "stm_phase_ns",
                &labelled(backend, &[("phase", "publish")]),
                "ns",
            ),
            commits: registry.counter("stm_commits_total", &labelled(backend, &[]), "txns"),
            aborts: std::array::from_fn(|i| {
                registry.counter(
                    "stm_aborts_total",
                    &labelled(backend, &[("reason", AbortReason::ALL[i].name())]),
                    "txns",
                )
            }),
            watchdog: LivenessWatchdog::new(
                registry.gauge("stm_stalled_threads", &labelled(backend, &[]), "threads"),
                registry.counter("stm_stall_events_total", &labelled(backend, &[]), "events"),
                WATCHDOG_STALL_THRESHOLD,
            ),
            tracer: tm_telemetry::trace_enabled().then(tm_telemetry::tracer),
        }
    }

    /// Record a phase-timed committed attempt: the three phase spans, the
    /// commit counter, watchdog progress, and (when tracing) a
    /// flight-recorder event.  `t_begin` is attempt start, `t_body_ok` the
    /// body returning `Ok`, `validated_at` the backend's optional
    /// validate→publish mark, `t_done` commit return.  Only 1 in
    /// [`PHASE_SAMPLE_EVERY`] commits takes this path; the rest go through
    /// [`StmTelemetry::on_commit_untimed`].
    pub fn on_commit(
        &self,
        backend: &str,
        t_begin: Instant,
        t_body_ok: Instant,
        validated_at: Option<Instant>,
        t_done: Instant,
    ) {
        let mark = validated_at.unwrap_or(t_body_ok);
        self.phase_read.record_duration(t_body_ok.duration_since(t_begin));
        self.phase_validate.record_duration(mark.duration_since(t_body_ok));
        self.phase_publish.record_duration(t_done.duration_since(mark));
        self.commits.inc();
        self.watchdog.on_commit();
        if let Some(tracer) = self.tracer {
            let total = t_done.duration_since(t_begin);
            tracer.push(
                "commit",
                backend,
                &[
                    ("duration_ns", u64::try_from(total.as_nanos()).unwrap_or(u64::MAX)),
                    ("thread_slot", thread_slot() as u64),
                ],
            );
        }
    }

    /// Record an unsampled committed attempt: exact counting and watchdog
    /// progress, no clock reads.
    pub fn on_commit_untimed(&self) {
        self.commits.inc();
        self.watchdog.on_commit();
    }

    /// Record an aborted attempt: the taxonomy counter and watchdog
    /// no-progress bookkeeping.
    pub fn on_abort(&self, reason: AbortReason) {
        self.aborts[reason.index()].inc();
        self.watchdog.on_abort();
    }

    /// Mirror [`crate::StmStats::reclassify_abort`] in the registry
    /// counters: move the final attempt's abort from its conflict reason to
    /// the `giveup` series, keeping `sum(stm_aborts_total) ==` the true
    /// abort count.
    pub fn on_giveup(&self, from: AbortReason) {
        if from != AbortReason::Giveup {
            self.aborts[from.index()].sub(1);
            self.aborts[AbortReason::Giveup.index()].inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_flags_stalls_and_clears_on_commit() {
        let stalled = Gauge::new();
        let events = Counter::new();
        let w = LivenessWatchdog::new(stalled, events, 3);
        w.on_abort();
        w.on_abort();
        assert_eq!(w.stalled_threads(), 0, "below threshold");
        w.on_abort();
        assert_eq!(w.stalled_threads(), 1, "threshold crossing marks the thread");
        assert_eq!(w.stall_events(), 1);
        w.on_abort();
        assert_eq!(w.stall_events(), 1, "staying stalled is one event, not many");
        w.on_commit();
        assert_eq!(w.stalled_threads(), 0, "progress clears the stall");
        w.on_commit();
        assert_eq!(w.stalled_threads(), 0, "an un-stalled commit must not go negative");
        assert_eq!(w.stall_events(), 1);
    }

    #[test]
    fn phase_recording_accounts_every_commit_once_per_phase() {
        let registry = Registry::new();
        let tele = StmTelemetry::from_registry(&registry, "test-backend");
        let t0 = Instant::now();
        for _ in 0..10 {
            tele.on_commit("test-backend", t0, t0, None, t0);
        }
        tele.on_abort(AbortReason::ReadValidation);
        assert_eq!(tele.phase_read.count(), 10);
        assert_eq!(tele.phase_validate.count(), 10);
        assert_eq!(tele.phase_publish.count(), 10);
        assert_eq!(tele.commits.get(), 10);
        assert_eq!(tele.aborts[AbortReason::ReadValidation.index()].get(), 1);
        // Same (registry, backend) → same series.
        let again = StmTelemetry::from_registry(&registry, "test-backend");
        assert_eq!(again.commits.get(), 10);
    }
}
