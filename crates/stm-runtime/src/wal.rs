//! Write-ahead commit logging: durable, partially constrained transaction
//! logs that survive `kill -9`.
//!
//! A [`WalSink`] appends committed `(T, so, wr)` records — session, session
//! sequence, recording hint, read set, write set — to segment files inside a
//! **round directory**, in publish order.  The log is *partially
//! constrained* in the sense of Zhou et al. (*Guaranteeing Recoverability
//! via Partially Constrained Transaction Logs*): it totally orders commits
//! only within a session (and, through the recorded values, along each
//! variable's write chain); racing commits of different sessions may land in
//! either order, which is exactly the constraint set the windowed auditor's
//! verdicts are sound under.
//!
//! Records are written in the `tm-history` wire format, one JSON line per
//! transaction, with the document header opening segment 0 — so the
//! concatenation of a round's segments **is** a valid wire document and the
//! log can be re-ingested by any tool that reads histories, no conversion
//! step.  (This crate cannot depend on `tm-history`, so the few line shapes
//! are formatted here; a byte-compatibility test on the `tm-history` side
//! pins them to the real encoder.)
//!
//! # Durability and torn tails
//!
//! Every record is appended with a single `write` call, so once
//! [`WalSink::append_txn`] returns the bytes are in the page cache and
//! survive the *process* dying (`kill -9`).  Surviving the *machine* dying
//! is segment-granular: [`WalSink::seal_segment`] fsyncs the segment, then
//! publishes a **seal** — a sidecar `segment-NNNNNN.seal` JSON carrying the
//! segment's byte length, line count and CRC32 — via write-to-temp + rename.
//!
//! Recovery ([`recover_round`]) trusts sealed bytes only after re-verifying
//! length and checksum; the one unsealed tail segment is truncated to its
//! last complete line (**the torn-tail rule**: a record either ends in a
//! newline or it never happened), so a crash mid-append is detected and
//! dropped rather than decoded as garbage.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Number of decimal digits in segment / snapshot file names.
const SEG_WIDTH: usize = 6;

fn segment_name(index: u64) -> String {
    format!("segment-{index:0SEG_WIDTH$}.tmh")
}

fn seal_name(index: u64) -> String {
    format!("segment-{index:0SEG_WIDTH$}.seal")
}

/// CRC32 (IEEE 802.3, the zlib polynomial), byte-at-a-time.
///
/// Hand-rolled because the WAL cannot pull in a checksum crate; the table is
/// built once on first use.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// Extend a running CRC32 (start from [`CRC_INIT`], finish with [`crc_done`]).
fn crc_update(mut crc: u32, bytes: &[u8]) -> u32 {
    let table = crc32_table();
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

const CRC_INIT: u32 = 0xFFFF_FFFF;

fn crc_done(crc: u32) -> u32 {
    crc ^ 0xFFFF_FFFF
}

/// CRC32 of a complete byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc_done(crc_update(CRC_INIT, bytes))
}

/// Append-only writer for one round's commit log.
///
/// Lines are wire-format JSON; segment 0 opens with the document header.
/// [`WalSink::seal_segment`] makes everything written so far durable and
/// verifiable; [`WalSink::finish`] seals the tail and drops a `complete`
/// marker so recovery can tell a clean round from a crashed one.
#[derive(Debug)]
pub struct WalSink {
    dir: PathBuf,
    file: File,
    segment_index: u64,
    segment_len: u64,
    segment_lines: u64,
    segment_crc: u32,
    total_lines: u64,
}

impl WalSink {
    /// Create a fresh round directory (parents included) and open segment 0
    /// with the wire header for `sessions` sessions over `vars` variables
    /// starting at `initial`.
    ///
    /// Fails if segment 0 already exists: a round directory is written by
    /// exactly one process, once.
    pub fn create(dir: &Path, sessions: usize, vars: usize, initial: i64) -> io::Result<WalSink> {
        fs::create_dir_all(dir)?;
        let path = dir.join(segment_name(0));
        let file = OpenOptions::new().write(true).create_new(true).open(&path)?;
        let mut sink = WalSink {
            dir: dir.to_path_buf(),
            file,
            segment_index: 0,
            segment_len: 0,
            segment_lines: 0,
            segment_crc: CRC_INIT,
            total_lines: 0,
        };
        let header = format!(
            "{{\"tm-history\":1,\"sessions\":{sessions},\"vars\":{vars},\"initial\":{initial}}}\n"
        );
        sink.write_line_raw(header.as_bytes())?;
        Ok(sink)
    }

    fn write_line_raw(&mut self, line: &[u8]) -> io::Result<()> {
        // One write call per line: either the whole record reaches the page
        // cache or (on a short write error) the caller learns about it —
        // never an interleaved half-line from this process's perspective.
        self.file.write_all(line)?;
        self.segment_crc = crc_update(self.segment_crc, line);
        self.segment_len += line.len() as u64;
        self.segment_lines += 1;
        Ok(())
    }

    /// Append one committed transaction: session `s`, session sequence `q`,
    /// recording hint `h`, external reads and writes as `(var, value)`
    /// pairs.  Within a session, `q` must be contiguous from 0 and `h`
    /// strictly increasing — the decoder's contract.
    pub fn append_txn(
        &mut self,
        session: usize,
        seq: u64,
        hint: u64,
        reads: &[(usize, i64)],
        writes: &[(usize, i64)],
    ) -> io::Result<()> {
        let mut line = format!("{{\"s\":{session},\"q\":{seq},\"h\":{hint},\"r\":[");
        for (i, &(var, value)) in reads.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("[{var},{value}]"));
        }
        line.push_str("],\"w\":[");
        for (i, &(var, value)) in writes.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("[{var},{value}]"));
        }
        line.push_str("]}\n");
        self.write_line_raw(line.as_bytes())?;
        self.total_lines += 1;
        Ok(())
    }

    /// The round directory this sink writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the segment currently being written.
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Lines (header included for segment 0) in the current segment.
    pub fn segment_lines(&self) -> u64 {
        self.segment_lines
    }

    /// Transactions appended over the sink's lifetime (header not counted).
    pub fn total_txns(&self) -> u64 {
        self.total_lines
    }

    /// Make everything appended so far durable: fsync the segment, publish
    /// its seal (length + line count + CRC32) atomically, and open the next
    /// segment.  Returns the index of the segment just sealed.
    pub fn seal_segment(&mut self) -> io::Result<u64> {
        self.file.sync_all()?;
        let sealed = self.segment_index;
        let seal = format!(
            "{{\"wal-seal\":1,\"segment\":{sealed},\"len\":{},\"lines\":{},\"crc\":{}}}\n",
            self.segment_len,
            self.segment_lines,
            crc_done(self.segment_crc)
        );
        self.write_blob(&seal_name(sealed), seal.as_bytes())?;
        self.segment_index += 1;
        let path = self.dir.join(segment_name(self.segment_index));
        self.file = OpenOptions::new().write(true).create_new(true).open(&path)?;
        self.segment_len = 0;
        self.segment_lines = 0;
        self.segment_crc = CRC_INIT;
        Ok(sealed)
    }

    /// Atomically publish a sidecar blob (e.g. a frontier snapshot) in the
    /// round directory: write to a temp file, fsync, rename into place, and
    /// fsync the directory so the name survives a crash too.
    pub fn write_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        write_atomic(&self.dir, name, bytes)
    }

    /// Seal the tail segment (or remove it when empty) and drop the
    /// `complete` marker that tells recovery this round ended cleanly.
    pub fn finish(mut self) -> io::Result<()> {
        if self.segment_lines > 0 {
            self.seal_segment()?;
        }
        // The freshly opened (or never-written) tail segment is empty:
        // remove it so the directory holds exactly the sealed set.
        let tail = self.dir.join(segment_name(self.segment_index));
        let _ = fs::remove_file(tail);
        let marker = format!(
            "{{\"wal-complete\":1,\"segments\":{},\"txns\":{}}}\n",
            self.segment_index, self.total_lines
        );
        self.write_blob("complete.json", bytes_of(&marker))?;
        Ok(())
    }
}

fn bytes_of(s: &str) -> &[u8] {
    s.as_bytes()
}

/// Write `name` in `dir` atomically: temp file, fsync, rename, directory
/// fsync.  Used for seals, snapshots and markers — anything whose partial
/// presence would be worse than absence.
pub fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!(".{name}.tmp"));
    let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(name))?;
    // Directory fsync makes the rename itself durable; some filesystems
    // refuse to open a directory for writing, so failures are best-effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// One segment's fate during [`recover_round`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredSegment {
    /// Segment index.
    pub index: u64,
    /// Whether a verified seal covered it.
    pub sealed: bool,
    /// Bytes kept (after any torn-tail truncation).
    pub kept_bytes: u64,
    /// Bytes dropped from a torn tail (unsealed segment only).
    pub torn_bytes: u64,
}

/// What [`recover_round`] reassembled from a round directory.
#[derive(Debug, Clone)]
pub struct RecoveredRound {
    /// The concatenated kept bytes of every segment, in index order — one
    /// complete wire document (header included, from segment 0).
    pub text: String,
    /// Per-segment accounting, in index order.
    pub segments: Vec<RecoveredSegment>,
    /// `true` when the round ended cleanly (its `complete.json` marker is
    /// present) — nothing was torn and no recovery was actually needed.
    pub complete: bool,
}

impl RecoveredRound {
    /// Total bytes dropped by the torn-tail rule.
    pub fn torn_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.torn_bytes).sum()
    }
}

fn corrupt(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Extract `"key":<unsigned>` from a one-object JSON line (the seal and
/// marker files are written by this module, so a positional scan suffices —
/// a missing or malformed field is corruption, not a parse dialect).
fn seal_field(text: &str, key: &str, path: &Path) -> io::Result<u64> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| corrupt(format!("{}: seal is missing {key:?}", path.display())))?;
    let digits: String =
        text[at + needle.len()..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits
        .parse::<u64>()
        .map_err(|_| corrupt(format!("{}: seal field {key:?} is not a number", path.display())))
}

/// Reassemble a round directory after a crash: verify every sealed segment
/// against its seal (length + CRC32), truncate the one unsealed tail
/// segment to its last complete line (physically, so the directory is clean
/// afterwards), and return the surviving bytes as one wire document.
///
/// Corruption that a seal *promised* against — a sealed segment shorter
/// than its seal says, or failing its checksum — is an error: silence there
/// would decode garbage as history.  A torn tail on the unsealed segment is
/// expected (`kill -9` mid-append) and truncated instead.
pub fn recover_round(dir: &Path) -> io::Result<RecoveredRound> {
    let mut indices: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(rest) = name.strip_prefix("segment-") {
            if let Some(digits) = rest.strip_suffix(".tmh") {
                if let Ok(index) = digits.parse::<u64>() {
                    indices.push(index);
                }
            }
        }
    }
    indices.sort_unstable();
    if indices.is_empty() {
        return Err(corrupt(format!("{}: no WAL segments found", dir.display())));
    }
    for (expect, &got) in indices.iter().enumerate() {
        if got != expect as u64 {
            return Err(corrupt(format!(
                "{}: segment {got} found where segment {expect} was expected \
                 (segments must be contiguous from 0)",
                dir.display()
            )));
        }
    }
    let complete = dir.join("complete.json").exists();
    let last = *indices.last().expect("non-empty");
    let mut text = String::new();
    let mut segments = Vec::new();
    for index in indices {
        let path = dir.join(segment_name(index));
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let seal_path = dir.join(seal_name(index));
        if seal_path.exists() {
            let seal = fs::read_to_string(&seal_path)?;
            let len = seal_field(&seal, "len", &seal_path)?;
            let crc = seal_field(&seal, "crc", &seal_path)? as u32;
            if (bytes.len() as u64) < len {
                return Err(corrupt(format!(
                    "{}: sealed as {len} bytes but only {} on disk",
                    path.display(),
                    bytes.len()
                )));
            }
            // Bytes past the sealed length can only be a write that raced
            // the crash after sealing; the seal wins.
            bytes.truncate(len as usize);
            let actual = crc32(&bytes);
            if actual != crc {
                return Err(corrupt(format!(
                    "{}: checksum mismatch (sealed {crc}, found {actual})",
                    path.display()
                )));
            }
            segments.push(RecoveredSegment {
                index,
                sealed: true,
                kept_bytes: bytes.len() as u64,
                torn_bytes: 0,
            });
        } else {
            if index != last {
                return Err(corrupt(format!(
                    "{}: unsealed segment {index} is followed by later segments \
                     (only the tail segment may lack a seal)",
                    dir.display()
                )));
            }
            // The torn-tail rule: a record either ends in a newline or it
            // never happened.
            let keep = match bytes.iter().rposition(|&b| b == b'\n') {
                Some(pos) => pos + 1,
                None => 0,
            };
            let torn = (bytes.len() - keep) as u64;
            bytes.truncate(keep);
            if torn > 0 {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(keep as u64)?;
                file.sync_all()?;
            }
            segments.push(RecoveredSegment {
                index,
                sealed: false,
                kept_bytes: keep as u64,
                torn_bytes: torn,
            });
        }
        text.push_str(
            std::str::from_utf8(&bytes)
                .map_err(|_| corrupt(format!("{}: segment is not UTF-8", path.display())))?,
        );
    }
    Ok(RecoveredRound { text, segments, complete })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sealed_segments_round_trip_and_concatenate() {
        let dir = tempdir("roundtrip");
        let mut sink = WalSink::create(&dir, 2, 4, 0).expect("create");
        sink.append_txn(0, 0, 0, &[(0, 0)], &[(0, 7)]).unwrap();
        sink.append_txn(1, 0, 1, &[(0, 7)], &[(1, 9), (2, -3)]).unwrap();
        assert_eq!(sink.seal_segment().unwrap(), 0);
        sink.append_txn(0, 1, 2, &[(1, 9)], &[]).unwrap();
        sink.finish().unwrap();

        let round = recover_round(&dir).expect("recover");
        assert!(round.complete);
        assert_eq!(round.torn_bytes(), 0);
        assert_eq!(round.segments.len(), 2);
        assert!(round.segments.iter().all(|s| s.sealed));
        assert_eq!(
            round.text,
            "{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}\n\
             {\"s\":0,\"q\":0,\"h\":0,\"r\":[[0,0]],\"w\":[[0,7]]}\n\
             {\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,7]],\"w\":[[1,9],[2,-3]]}\n\
             {\"s\":0,\"q\":1,\"h\":2,\"r\":[[1,9]],\"w\":[]}\n"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_are_truncated_to_the_last_complete_line() {
        let dir = tempdir("torn");
        let mut sink = WalSink::create(&dir, 1, 2, 0).expect("create");
        sink.append_txn(0, 0, 0, &[], &[(0, 5)]).unwrap();
        sink.seal_segment().unwrap();
        sink.append_txn(0, 1, 1, &[], &[(1, 6)]).unwrap();
        drop(sink); // crash: no seal, no finish

        // Simulate the torn write: append half a record to the tail segment.
        let tail = dir.join(segment_name(1));
        let mut f = OpenOptions::new().append(true).open(&tail).unwrap();
        f.write_all(b"{\"s\":0,\"q\":2,\"h\":2,\"r\":[],\"w\":[[0,").unwrap();
        drop(f);

        let round = recover_round(&dir).expect("recover");
        assert!(!round.complete);
        assert!(round.torn_bytes() > 0);
        assert!(round.text.ends_with("{\"s\":0,\"q\":1,\"h\":1,\"r\":[],\"w\":[[1,6]]}\n"));
        // The truncation is physical: a second recovery sees a clean tail.
        let again = recover_round(&dir).expect("recover again");
        assert_eq!(again.torn_bytes(), 0);
        assert_eq!(again.text, round.text);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_corruption_is_an_error_not_a_truncation() {
        let dir = tempdir("corrupt");
        let mut sink = WalSink::create(&dir, 1, 1, 0).expect("create");
        sink.append_txn(0, 0, 0, &[], &[(0, 3)]).unwrap();
        sink.seal_segment().unwrap();
        drop(sink);

        // Flip a byte inside the sealed segment.
        let path = dir.join(segment_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();

        let err = recover_round(&dir).expect_err("checksum must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gapped_or_missing_segments_are_rejected() {
        let dir = tempdir("gap");
        let err = recover_round(&dir).expect_err("empty round");
        assert!(err.to_string().contains("no WAL segments"), "{err}");

        let mut sink = WalSink::create(&dir, 1, 1, 0).expect("create");
        sink.append_txn(0, 0, 0, &[], &[(0, 3)]).unwrap();
        sink.seal_segment().unwrap();
        sink.append_txn(0, 1, 1, &[], &[(0, 4)]).unwrap();
        sink.finish().unwrap();
        fs::remove_file(dir.join(segment_name(0))).unwrap();
        let err = recover_round(&dir).expect_err("gap");
        assert!(err.to_string().contains("must be contiguous"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
