//! # stm-runtime — a real, multi-threaded word STM with swappable backends
//!
//! While `tm-model` / `tm-algorithms` reproduce the paper's *formal* model inside a
//! deterministic simulator, this crate is the artifact a downstream user would
//! actually link against: a shared-memory software transactional memory for `i64`
//! variables (`word STM`), runnable on real threads, with one backend per corner of
//! the P/C/L triangle:
//!
//! | Backend | P (disjoint-access) | C | L | Simulator counterpart |
//! |---|---|---|---|---|
//! | [`BackendKind::Tl2Blocking`]   | per-var metadata only | serializable | blocking commit (spins on locks) | `tl-locking` |
//! | [`BackendKind::ObstructionFree`] | per-var metadata only | serializable | never blocks, aborts under contention | `of-dap-candidate`/`dstm` family |
//! | [`BackendKind::PramLocal`]     | no shared memory at all | PRAM only | wait-free | `pram-tm` |
//!
//! The API is deliberately small: allocate variables with [`Stm::alloc`], then run
//! closures with [`Stm::run`] (retry-until-commit) or [`Stm::try_run`] (single
//! attempt).  Per-backend statistics ([`Stm::stats`]) expose commits, aborts and
//! retries so the benchmark harness can regenerate the liveness/contention trade-off
//! experiments of EXPERIMENTS.md.
//!
//! ```
//! use stm_runtime::{BackendKind, Stm, StmError};
//!
//! let stm = Stm::new(BackendKind::Tl2Blocking);
//! let account_a = stm.alloc(100);
//! let account_b = stm.alloc(0);
//! let moved = stm.run(|tx| {
//!     let a = tx.read(account_a)?;
//!     let transfer = a.min(40);
//!     tx.write(account_a, a - transfer)?;
//!     let b = tx.read(account_b)?;
//!     tx.write(account_b, b + transfer)?;
//!     Ok(transfer)
//! });
//! assert_eq!(moved, 40);
//! assert_eq!(stm.read_now(account_a) + stm.read_now(account_b), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod ofree;
pub mod pramlocal;
pub mod recorder;
pub mod stats;
pub mod tl2;
pub mod txn;

pub use backend::{Backend, BackendKind, VarId};
pub use recorder::{
    CommitBatch, CommitRecord, OwnedCommitRecord, Recorder, StreamConsumer, StreamingRecorder,
};
pub use stats::StmStats;
pub use txn::{StmError, Txn, TxnData};

use std::sync::Arc;

/// The front-end: a transactional memory instance with a chosen backend.
pub struct Stm {
    backend: Arc<dyn Backend>,
    kind: BackendKind,
    stats: Arc<StmStats>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl Stm {
    /// Create an STM instance with the given backend.
    pub fn new(kind: BackendKind) -> Self {
        let backend: Arc<dyn Backend> = match kind {
            BackendKind::Tl2Blocking => Arc::new(tl2::Tl2Backend::new()),
            BackendKind::ObstructionFree => Arc::new(ofree::OFreeBackend::new()),
            BackendKind::PramLocal => Arc::new(pramlocal::PramLocalBackend::new()),
        };
        Stm { backend, kind, stats: Arc::new(StmStats::default()), recorder: None }
    }

    /// Create an instrumented STM instance whose successful commits are
    /// reported to `recorder` (see [`recorder`] for what is captured).
    pub fn with_recorder(kind: BackendKind, recorder: Arc<dyn Recorder>) -> Self {
        let mut stm = Stm::new(kind);
        stm.recorder = Some(recorder);
        stm
    }

    /// Which backend this instance uses.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Allocate a new transactional variable with the given initial value.
    pub fn alloc(&self, initial: i64) -> VarId {
        self.backend.alloc(initial)
    }

    /// Cumulative statistics (commits, aborts, retries).
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// Run a transaction once; `Err(StmError::Aborted)` means the attempt failed and
    /// the caller may retry.
    pub fn try_run<T>(
        &self,
        body: impl Fn(&mut Txn<'_>) -> Result<T, StmError>,
    ) -> Result<T, StmError> {
        let mut data = TxnData::default();
        self.backend.begin(&mut data);
        let mut txn = Txn::new(self.backend.as_ref(), &mut data);
        match body(&mut txn) {
            Ok(value) => match self.backend.commit(&mut data) {
                Ok(()) => {
                    self.stats.record_commit();
                    if let Some(rec) = &self.recorder {
                        rec.on_commit(CommitRecord {
                            session: recorder::current_session(),
                            reads: &data.read_cache,
                            writes: &data.write_set,
                        });
                    }
                    Ok(value)
                }
                Err(_) => {
                    self.backend.cleanup(&mut data);
                    self.stats.record_abort();
                    Err(StmError::Aborted)
                }
            },
            Err(e) => {
                self.backend.cleanup(&mut data);
                self.stats.record_abort();
                Err(e)
            }
        }
    }

    /// Run a transaction until it commits (retrying on aborts) and return its result.
    pub fn run<T>(&self, body: impl Fn(&mut Txn<'_>) -> Result<T, StmError>) -> T {
        loop {
            match self.try_run(&body) {
                Ok(v) => return v,
                Err(_) => {
                    self.stats.record_retry();
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Read a variable outside of any transaction (a single-read transaction).
    pub fn read_now(&self, var: VarId) -> i64 {
        self.run(|tx| tx.read(var))
    }

    /// Write a variable outside of any transaction (a single-write transaction).
    pub fn write_now(&self, var: VarId, value: i64) {
        self.run(|tx| tx.write(var, value));
    }
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm").field("kind", &self.kind).field("stats", &self.stats).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn all_kinds() -> [BackendKind; 3] {
        [BackendKind::Tl2Blocking, BackendKind::ObstructionFree, BackendKind::PramLocal]
    }

    #[test]
    fn single_threaded_read_write_round_trip_on_every_backend() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let x = stm.alloc(7);
            assert_eq!(stm.read_now(x), 7, "{kind:?}");
            stm.write_now(x, 42);
            assert_eq!(stm.read_now(x), 42, "{kind:?}");
            assert!(stm.stats().commits() >= 3);
        }
    }

    #[test]
    fn transactions_are_atomic_within_a_thread() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let a = stm.alloc(10);
            let b = stm.alloc(20);
            let sum = stm.run(|tx| {
                let va = tx.read(a)?;
                let vb = tx.read(b)?;
                tx.write(a, va + 1)?;
                tx.write(b, vb - 1)?;
                Ok(va + vb)
            });
            assert_eq!(sum, 30);
            assert_eq!(stm.read_now(a), 11, "{kind:?}");
            assert_eq!(stm.read_now(b), 19, "{kind:?}");
        }
    }

    #[test]
    fn explicit_user_aborts_leave_no_trace() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let x = stm.alloc(1);
            let result: Result<(), StmError> = stm.try_run(|tx| {
                tx.write(x, 99)?;
                Err(StmError::Aborted)
            });
            assert!(result.is_err());
            assert_eq!(stm.read_now(x), 1, "{kind:?}");
            assert!(stm.stats().aborts() >= 1);
        }
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost_on_consistent_backends() {
        for kind in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let stm = Arc::new(Stm::new(kind));
            let counter = stm.alloc(0);
            let threads = 4;
            let per_thread = 200;
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        for _ in 0..per_thread {
                            stm.run(|tx| {
                                let v = tx.read(counter)?;
                                tx.write(counter, v + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(stm.read_now(counter), threads * per_thread, "{kind:?}");
        }
    }

    #[test]
    fn recorder_sees_external_reads_and_writes_of_successful_commits_only() {
        use parking_lot::Mutex;

        type VarValues = Vec<(VarId, i64)>;
        #[derive(Default)]
        struct Capture {
            records: Mutex<Vec<(Option<usize>, VarValues, VarValues)>>,
        }
        impl Recorder for Capture {
            fn on_commit(&self, record: CommitRecord<'_>) {
                self.records.lock().push((
                    record.session,
                    record.reads.iter().map(|(v, x)| (*v, *x)).collect(),
                    record.writes.iter().map(|(v, x)| (*v, *x)).collect(),
                ));
            }
        }

        for kind in all_kinds() {
            let capture = Arc::new(Capture::default());
            let stm = Stm::with_recorder(kind, Arc::clone(&capture) as Arc<dyn Recorder>);
            recorder::set_session(5);
            let x = stm.alloc(10);
            let y = stm.alloc(0);
            // Read-modify-write: x is an external read then a write; y is
            // write-then-read, so it must NOT appear in the read set.
            stm.run(|tx| {
                let vx = tx.read(x)?;
                tx.write(y, vx + 1)?;
                let vy = tx.read(y)?;
                tx.write(x, vy)?;
                Ok(())
            });
            // An aborted attempt must record nothing.
            let _ = stm.try_run(|tx| {
                tx.write(x, 99)?;
                tx.abort::<()>()
            });
            recorder::clear_session();

            let records = capture.records.lock();
            assert_eq!(records.len(), 1, "{kind:?}");
            let (session, reads, writes) = &records[0];
            assert_eq!(*session, Some(5), "{kind:?}");
            assert_eq!(reads.as_slice(), &[(x, 10)], "{kind:?}");
            assert_eq!(writes.as_slice(), &[(x, 11), (y, 11)], "{kind:?}");
        }
    }

    #[test]
    fn pram_backend_loses_cross_thread_updates_by_design() {
        let stm = Arc::new(Stm::new(BackendKind::PramLocal));
        let x = stm.alloc(0);
        std::thread::scope(|s| {
            let stm2 = Arc::clone(&stm);
            s.spawn(move || {
                stm2.write_now(x, 5);
                assert_eq!(stm2.read_now(x), 5);
            });
        });
        // The writer thread saw its own write, but this thread still sees the initial
        // value: PRAM consistency, and nothing stronger.
        assert_eq!(stm.read_now(x), 0);
    }

    #[test]
    fn disjoint_threads_scale_without_aborts_on_dap_backends() {
        for kind in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let stm = Arc::new(Stm::new(kind));
            let vars: Vec<VarId> = (0..4).map(|_| stm.alloc(0)).collect();
            std::thread::scope(|s| {
                for (i, var) in vars.iter().enumerate() {
                    let stm = Arc::clone(&stm);
                    let var = *var;
                    s.spawn(move || {
                        for _ in 0..100 {
                            stm.run(|tx| {
                                let v = tx.read(var)?;
                                tx.write(var, v + i as i64 + 1)
                            });
                        }
                    });
                }
            });
            // No conflicts → no aborts on either consistent backend.
            assert_eq!(stm.stats().aborts(), 0, "{kind:?}");
        }
    }
}
