//! # stm-runtime — a typed, multi-threaded word STM with an open backend registry
//!
//! While `tm-model` / `tm-algorithms` reproduce the paper's *formal* model inside a
//! deterministic simulator, this crate is the artifact a downstream user would
//! actually link against: a shared-memory software transactional memory runnable on
//! real threads.  The public API has three layers, each pluggable:
//!
//! 1. **Typed variables** — [`TVar<T>`] handles over the word STM.  Any
//!    [`TxnValue`] (ints, `bool`, fixed arrays, tuples) encodes to one or
//!    more consecutive words and is read/written atomically inside a
//!    transaction.  The old `VarId`-based word calls survive as deprecated
//!    shims ([`Stm::alloc_var`], [`Txn::read_var`], [`Txn::write_var`]).
//! 2. **Open backends** — [`Stm::new`] takes anything `Into<BackendId>` and
//!    resolves it through the [`registry`]: a [`registry::BackendSpec`] names
//!    a backend, declares its P/C/L triangle position and constructs it.
//!    Five designs ship built in — the three corners plus two interior
//!    points that populate the consistency and parallelism axes — and other
//!    crates add more (the `workloads` crate registers a coarse-global-lock
//!    "give up P" backend through the same public API):
//!
//!    | Backend | P (disjoint-access) | C | L |
//!    |---|---|---|---|
//!    | `tl2-blocking`     | per-var metadata only | serializable | blocking commit (spins on locks) |
//!    | `obstruction-free` | per-var metadata only | serializable | never blocks, aborts under contention |
//!    | `pram-local`       | no shared memory at all | PRAM only | wait-free |
//!    | `mvcc`             | per-var version chains | **snapshot isolation** (admits write skew) | reads never block; first committer wins |
//!    | `shard-lock`       | 16 hash bands (band-grain DAP only) | serializable | blocking on shard locks |
//! 3. **Pluggable retry** — the retry-until-commit loop consults a
//!    [`RetryPolicy`] ([`policy::ImmediateRetry`] by default;
//!    [`policy::BoundedRetry`] and [`policy::ExponentialBackoff`] ship too),
//!    and [`StmStats`] keeps an attempts-per-transaction histogram
//!    (p50/p99) so policies are measurable, not just selectable.
//!
//! ```
//! use stm_runtime::{BackendKind, Stm, StmError, TVar};
//!
//! let stm = Stm::new(BackendKind::Tl2Blocking);
//! let account_a: TVar<i64> = stm.alloc(100);
//! let account_b: TVar<i64> = stm.alloc(0);
//! let moved = stm.run(|tx| {
//!     let a = tx.read(account_a)?;
//!     let transfer = a.min(40);
//!     tx.write(account_a, a - transfer)?;
//!     let b = tx.read(account_b)?;
//!     tx.write(account_b, b + transfer)?;
//!     Ok(transfer)
//! });
//! assert_eq!(moved, 40);
//! assert_eq!(stm.read_now(account_a) + stm.read_now(account_b), 100);
//!
//! // Typed variables beyond i64: a (balance, flag) pair, updated atomically.
//! let pair: TVar<(i64, bool)> = stm.alloc((7, false));
//! stm.run(|tx| {
//!     let (balance, _) = tx.read(pair)?;
//!     tx.write(pair, (balance + 1, true))
//! });
//! assert_eq!(stm.read_now(pair), (8, true));
//! ```
//!
//! ## Migrating from the `VarId` API
//!
//! | Old (deprecated) | New |
//! |---|---|
//! | `let v: VarId = stm.alloc(0)` | `let v: TVar<i64> = stm.alloc(0i64)` |
//! | `tx.read(v)?` on `VarId` | `tx.read(v)?` on `TVar<i64>` (or `tx.read_var(v)?`) |
//! | `tx.write(v, x)?` on `VarId` | `tx.write(v, x)?` on `TVar<i64>` (or `tx.write_var(v, x)?`) |
//! | `Stm::new(BackendKind::X)` | unchanged (`BackendKind` converts into [`BackendId`]) |
//! | `"tl2".to_string()` matching | `"tl2".parse::<BackendId>()?` via the [`registry`] |
//! | hand-rolled retry loops | `Stm::run` + [`RetryPolicy`] / [`Stm::run_policy`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod mvcc;
pub mod ofree;
pub mod policy;
pub mod pramlocal;
pub mod recorder;
pub mod registry;
pub mod shardlock;
pub mod stats;
pub mod telemetry;
pub mod tl2;
pub mod tvar;
pub mod txn;
pub mod value;
pub mod vartable;
pub mod wal;

pub use backend::{Backend, BackendKind, VarId};
pub use policy::{RetryDecision, RetryPolicy};
pub use recorder::{
    footprint_of, route_band, CommitBatch, CommitRecord, OwnedCommitRecord, Recorder,
    StreamConsumer, StreamingRecorder, TeeRecorder, ROUTE_BANDS,
};
pub use registry::{BackendId, BackendSpec};
pub use stats::StmStats;
pub use telemetry::{LivenessWatchdog, StmTelemetry};
pub use tvar::TVar;
pub use txn::{AbortReason, StmError, Txn, TxnData, VarMap};
pub use value::TxnValue;
pub use vartable::VarTable;

use policy::{ImmediateRetry, PolicyScratch, RetryCtx, RetryDecision as Decision};
use std::sync::Arc;
use std::time::Instant;

/// The front-end: a transactional memory instance with a chosen backend and
/// retry policy.
pub struct Stm {
    backend: Arc<dyn Backend>,
    id: BackendId,
    stats: Arc<StmStats>,
    recorder: Option<Arc<dyn Recorder>>,
    policy: Arc<dyn RetryPolicy>,
    /// `Some` only when metrics are on: the metrics-off commit path pays
    /// exactly one never-taken branch on this option.
    tele: Option<Arc<StmTelemetry>>,
}

impl Stm {
    /// Create an STM instance with the given backend (a [`BackendKind`], a
    /// [`BackendId`] parsed from a name, or the id returned by
    /// [`registry::register`]).
    pub fn new(backend: impl Into<BackendId>) -> Self {
        let id = backend.into();
        let spec = id.spec();
        Stm {
            backend: (spec.constructor)(),
            id,
            stats: Arc::new(StmStats::default()),
            recorder: None,
            policy: Arc::new(ImmediateRetry),
            tele: tm_telemetry::enabled()
                .then(|| Arc::new(StmTelemetry::from_registry(tm_telemetry::global(), id.name()))),
        }
    }

    /// Create an instrumented STM instance whose successful commits are
    /// reported to `recorder` (see [`recorder`] for what is captured).
    pub fn with_recorder(backend: impl Into<BackendId>, recorder: Arc<dyn Recorder>) -> Self {
        let mut stm = Stm::new(backend);
        stm.recorder = Some(recorder);
        stm
    }

    /// Detach the recorder, if any: subsequent commits are no longer
    /// reported.  Used by audited runners to fence off post-run
    /// verification transactions from the recorded history.
    pub fn take_recorder(&mut self) -> Option<Arc<dyn Recorder>> {
        self.recorder.take()
    }

    /// Replace the retry policy (builder style).  The default is
    /// [`policy::ImmediateRetry`], the historical retry-until-commit loop.
    pub fn with_policy(mut self, policy: Arc<dyn RetryPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a telemetry handle (builder style), regardless of the global
    /// [`tm_telemetry::enabled`] flag.  Tests bind one to a private
    /// [`tm_telemetry::Registry`] so metric-invariant assertions are exact.
    pub fn with_telemetry(mut self, tele: StmTelemetry) -> Self {
        self.tele = Some(Arc::new(tele));
        self
    }

    /// The telemetry handle, when metrics are on for this instance.
    pub fn telemetry(&self) -> Option<&StmTelemetry> {
        self.tele.as_deref()
    }

    /// The retry policy in effect.
    pub fn policy(&self) -> &dyn RetryPolicy {
        self.policy.as_ref()
    }

    /// Which backend this instance uses.
    pub fn backend_id(&self) -> BackendId {
        self.id
    }

    /// The built-in [`BackendKind`] of this instance, if it uses one of the
    /// three built-in backends.
    pub fn kind(&self) -> Option<BackendKind> {
        [BackendKind::Tl2Blocking, BackendKind::ObstructionFree, BackendKind::PramLocal]
            .into_iter()
            .find(|k| k.id() == self.id)
    }

    /// Allocate a typed transactional variable: `T::WORDS` consecutive words
    /// initialized from `initial`.
    pub fn alloc<T: TxnValue>(&self, initial: T) -> TVar<T> {
        let words = value::encode_to_words(&initial);
        TVar::from_base(self.backend.alloc_words(&words))
    }

    /// Allocate a raw word variable (pre-`TVar` API).
    #[deprecated(since = "0.1.0", note = "migrate to `Stm::alloc` returning a typed `TVar<T>`")]
    pub fn alloc_var(&self, initial: i64) -> VarId {
        self.backend.alloc_words(&[initial])
    }

    /// Cumulative statistics (commits, aborts, retries, attempt histogram).
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// Run one attempt of a transaction (no retries, no policy).
    /// `Err(StmError::Aborted)` means the attempt failed and the caller may
    /// retry.
    pub fn try_run<T>(
        &self,
        body: impl Fn(&mut Txn<'_>) -> Result<T, StmError>,
    ) -> Result<T, StmError> {
        let mut data = TxnData::default();
        match self.attempt(&mut data, &body) {
            Ok(v) => {
                self.stats.record_attempts(1);
                Ok(v)
            }
            Err(_) => Err(StmError::Aborted),
        }
    }

    /// Record an abort in the stats (and the telemetry mirror, when on) and
    /// surface its classified reason to the retry loop.
    fn record_abort(&self, data: &mut TxnData) -> AbortReason {
        let reason = data.abort_reason.take().unwrap_or(AbortReason::Explicit);
        self.stats.record_abort(reason);
        if let Some(tele) = &self.tele {
            tele.on_abort(reason);
        }
        reason
    }

    /// One raw attempt: begin, run the body, commit or clean up.  `Err`
    /// carries the abort's classified reason (already recorded); callers
    /// surface it to users as [`StmError::Aborted`].  `data` is caller-owned
    /// so the retry loops reuse one allocation (read/write-set capacity)
    /// across every attempt of a transaction; `begin` resets it.
    fn attempt<T>(
        &self,
        data: &mut TxnData,
        body: &impl Fn(&mut Txn<'_>) -> Result<T, StmError>,
    ) -> Result<T, AbortReason> {
        self.backend.begin(data);
        // The one metrics branch on the hot path: with telemetry off,
        // `timing` stays false and every stamp below is skipped.  With it
        // on, only 1 in `telemetry::PHASE_SAMPLE_EVERY` attempts is
        // wall-clock timed — counters stay exact, clock reads amortize.
        let t_begin = self.tele.as_ref().and_then(|_| {
            telemetry::phase_sample_tick().then(|| {
                data.timing = true;
                Instant::now()
            })
        });
        let mut txn = Txn::new(self.backend.as_ref(), data);
        match body(&mut txn) {
            Ok(value) => {
                let t_body_ok = t_begin.map(|_| Instant::now());
                match self.backend.commit(data) {
                    Ok(()) => {
                        self.stats.record_commit();
                        if let Some(tele) = &self.tele {
                            match t_begin {
                                Some(t_begin) => tele.on_commit(
                                    self.id.name(),
                                    t_begin,
                                    t_body_ok.expect("timing on"),
                                    data.validated_at,
                                    Instant::now(),
                                ),
                                None => tele.on_commit_untimed(),
                            }
                        }
                        if let Some(rec) = &self.recorder {
                            rec.on_commit(CommitRecord {
                                session: recorder::current_session(),
                                reads: &data.read_cache,
                                writes: &data.write_set,
                            });
                        }
                        Ok(value)
                    }
                    Err(_) => {
                        self.backend.cleanup(data);
                        Err(self.record_abort(data))
                    }
                }
            }
            Err(_) => {
                self.backend.cleanup(data);
                Err(self.record_abort(data))
            }
        }
    }

    /// Run a transaction until it commits and return its result.  Failed
    /// attempts consult the [`RetryPolicy`] for pacing; because `run`
    /// promises a value, a [`RetryDecision::GiveUp`] is treated as an
    /// immediate retry here — use [`Stm::run_policy`] to let the policy
    /// actually stop the loop.
    pub fn run<T>(&self, body: impl Fn(&mut Txn<'_>) -> Result<T, StmError>) -> T {
        let mut attempts = 1u32;
        let mut data = TxnData::default();
        let mut scratch = PolicyScratch::default();
        loop {
            match self.attempt(&mut data, &body) {
                Ok(v) => {
                    self.stats.record_attempts(attempts);
                    self.policy.on_commit(&mut scratch);
                    return v;
                }
                Err(reason) => {
                    self.stats.record_retry();
                    let ctx = RetryCtx {
                        attempt: attempts,
                        reason,
                        stats: &self.stats,
                        scratch: &mut scratch,
                    };
                    match self.policy.decide_ctx(ctx) {
                        Decision::RetryNow | Decision::GiveUp => std::hint::spin_loop(),
                        Decision::SpinThen(spins) => policy::spin_wait(spins),
                    }
                    attempts = attempts.saturating_add(1);
                }
            }
        }
    }

    /// Run a transaction until it commits **or the retry policy gives up**,
    /// in which case the last abort is returned.  Attempt counts land in the
    /// [`StmStats`] histogram either way.
    pub fn run_policy<T>(
        &self,
        body: impl Fn(&mut Txn<'_>) -> Result<T, StmError>,
    ) -> Result<T, StmError> {
        let mut attempts = 1u32;
        let mut data = TxnData::default();
        let mut scratch = PolicyScratch::default();
        loop {
            match self.attempt(&mut data, &body) {
                Ok(v) => {
                    self.stats.record_attempts(attempts);
                    self.policy.on_commit(&mut scratch);
                    return Ok(v);
                }
                Err(reason) => match self.policy.decide_ctx(RetryCtx {
                    attempt: attempts,
                    reason,
                    stats: &self.stats,
                    scratch: &mut scratch,
                }) {
                    Decision::GiveUp => {
                        self.stats.record_attempts(attempts);
                        // The final attempt's abort was recorded under its
                        // conflict reason; the policy stopping the loop is
                        // what makes it a give-up, so reclassify it.
                        self.stats.reclassify_abort(reason, AbortReason::Giveup);
                        if let Some(tele) = &self.tele {
                            tele.on_giveup(reason);
                        }
                        return Err(StmError::Aborted);
                    }
                    decision => {
                        self.stats.record_retry();
                        match decision {
                            Decision::SpinThen(spins) => policy::spin_wait(spins),
                            _ => std::hint::spin_loop(),
                        }
                        attempts = attempts.saturating_add(1);
                    }
                },
            }
        }
    }

    /// Read a variable outside of any transaction (a single-read transaction).
    pub fn read_now<T: TxnValue>(&self, var: TVar<T>) -> T {
        self.run(|tx| tx.read(var))
    }

    /// Write a variable outside of any transaction (a single-write transaction).
    pub fn write_now<T: TxnValue + Clone>(&self, var: TVar<T>, value: T) {
        self.run(|tx| tx.write(var, value.clone()));
    }
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("backend", &self.id)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn all_kinds() -> [BackendKind; 3] {
        [BackendKind::Tl2Blocking, BackendKind::ObstructionFree, BackendKind::PramLocal]
    }

    #[test]
    fn single_threaded_read_write_round_trip_on_every_backend() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let x = stm.alloc(7i64);
            assert_eq!(stm.read_now(x), 7, "{kind:?}");
            stm.write_now(x, 42);
            assert_eq!(stm.read_now(x), 42, "{kind:?}");
            assert!(stm.stats().commits() >= 3);
            assert_eq!(stm.kind(), Some(kind));
            assert_eq!(stm.backend_id(), kind.id());
        }
    }

    #[test]
    fn transactions_are_atomic_within_a_thread() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let a = stm.alloc(10i64);
            let b = stm.alloc(20i64);
            let sum = stm.run(|tx| {
                let va = tx.read(a)?;
                let vb = tx.read(b)?;
                tx.write(a, va + 1)?;
                tx.write(b, vb - 1)?;
                Ok(va + vb)
            });
            assert_eq!(sum, 30);
            assert_eq!(stm.read_now(a), 11, "{kind:?}");
            assert_eq!(stm.read_now(b), 19, "{kind:?}");
        }
    }

    #[test]
    fn typed_variables_round_trip_every_provided_impl() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let flag = stm.alloc(false);
            let small = stm.alloc(-3i32);
            let wide = stm.alloc(u64::MAX);
            let tuple = stm.alloc((1i64, true));
            let array = stm.alloc([1i64, 2, 3]);
            stm.run(|tx| {
                tx.write(flag, true)?;
                tx.write(small, 9i32)?;
                tx.write(wide, 7u64)?;
                let (n, b) = tx.read(tuple)?;
                tx.write(tuple, (n + 41, !b))?;
                tx.update(array, |[x, y, z]| [z, y, x])?;
                Ok(())
            });
            assert!(stm.read_now(flag), "{kind:?}");
            assert_eq!(stm.read_now(small), 9, "{kind:?}");
            assert_eq!(stm.read_now(wide), 7, "{kind:?}");
            assert_eq!(stm.read_now(tuple), (42, false), "{kind:?}");
            assert_eq!(stm.read_now(array), [3, 2, 1], "{kind:?}");
        }
    }

    #[test]
    fn multi_word_variables_are_read_atomically_under_contention() {
        // Writers keep the two words of a pair equal inside one transaction;
        // readers must never observe them differ on a consistent backend.
        for kind in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let stm = Arc::new(Stm::new(kind));
            let pair: TVar<(i64, i64)> = stm.alloc((0, 0));
            std::thread::scope(|s| {
                let writer = Arc::clone(&stm);
                s.spawn(move || {
                    for i in 1..=500i64 {
                        writer.run(|tx| tx.write(pair, (i, -i)));
                    }
                });
                let reader = Arc::clone(&stm);
                s.spawn(move || {
                    for _ in 0..500 {
                        let (a, b) = reader.run(|tx| tx.read(pair));
                        assert_eq!(a, -b, "{kind:?}: torn read ({a}, {b})");
                    }
                });
            });
        }
    }

    #[test]
    fn deprecated_var_id_shims_still_work() {
        #![allow(deprecated)]
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let v = stm.alloc_var(5);
            let doubled = stm.run(|tx| {
                let x = tx.read_var(v)?;
                tx.write_var(v, x * 2)?;
                tx.read_var(v)
            });
            assert_eq!(doubled, 10, "{kind:?}");
        }
    }

    #[test]
    fn explicit_user_aborts_leave_no_trace() {
        for kind in all_kinds() {
            let stm = Stm::new(kind);
            let x = stm.alloc(1i64);
            let result: Result<(), StmError> = stm.try_run(|tx| {
                tx.write(x, 99)?;
                Err(StmError::Aborted)
            });
            assert!(result.is_err());
            assert_eq!(stm.read_now(x), 1, "{kind:?}");
            assert!(stm.stats().aborts() >= 1);
        }
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost_on_consistent_backends() {
        for kind in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let stm = Arc::new(Stm::new(kind));
            let counter = stm.alloc(0i64);
            let threads = 4;
            let per_thread = 200;
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        for _ in 0..per_thread {
                            stm.run(|tx| {
                                let v = tx.read(counter)?;
                                tx.write(counter, v + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(stm.read_now(counter), threads * per_thread, "{kind:?}");
            // Every committed transaction recorded an attempt count.
            assert_eq!(stm.stats().attempts_recorded(), stm.stats().commits());
            assert!(stm.stats().attempts_p99() >= stm.stats().attempts_p50());
        }
    }

    #[test]
    fn bounded_policies_give_up_through_run_policy() {
        use crate::policy::BoundedRetry;
        let stm = Stm::new(BackendKind::ObstructionFree)
            .with_policy(Arc::new(BoundedRetry { max_attempts: 3 }));
        assert_eq!(stm.policy().name(), "bounded");
        let x = stm.alloc(0i64);
        // A body that always asks to abort: run_policy must stop after 3 attempts.
        let result: Result<(), StmError> = stm.run_policy(|tx| {
            tx.write(x, 1)?;
            Err(StmError::Aborted)
        });
        assert_eq!(result, Err(StmError::Aborted));
        assert_eq!(stm.stats().aborts(), 3);
        // The taxonomy classifies the first two aborts as explicit (the body
        // asked) and reclassifies the final one as the policy's give-up.
        assert_eq!(stm.stats().aborts_by(AbortReason::Explicit), 2);
        assert_eq!(stm.stats().aborts_by(AbortReason::Giveup), 1);
        let sum: u64 = stm.stats().abort_reason_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(sum, stm.stats().aborts());
        // The give-up landed in the attempts histogram at 3 attempts.
        assert_eq!(stm.stats().attempts_p50(), 3);
        // A committing body still succeeds.
        assert_eq!(stm.run_policy(|tx| tx.update(x, |v| v + 1)), Ok(1));
    }

    #[test]
    fn backoff_policies_still_commit_under_contention() {
        use crate::policy::ExponentialBackoff;
        let stm = Arc::new(Stm::new(BackendKind::ObstructionFree).with_policy(Arc::new(
            ExponentialBackoff { base_spins: 4, max_spins: 64, ..Default::default() },
        )));
        let counter = stm.alloc(0i64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                s.spawn(move || {
                    for _ in 0..100 {
                        stm.run(|tx| tx.update(counter, |v| v + 1));
                    }
                });
            }
        });
        assert_eq!(stm.read_now(counter), 400);
    }

    #[test]
    fn recorder_sees_external_reads_and_writes_of_successful_commits_only() {
        use parking_lot::Mutex;

        type VarValues = Vec<(VarId, i64)>;
        #[derive(Default)]
        struct Capture {
            records: Mutex<Vec<(Option<usize>, VarValues, VarValues)>>,
        }
        impl Recorder for Capture {
            fn on_commit(&self, record: CommitRecord<'_>) {
                self.records.lock().push((
                    record.session,
                    record.reads.iter().map(|(v, x)| (*v, *x)).collect(),
                    record.writes.iter().map(|(v, x)| (*v, *x)).collect(),
                ));
            }
        }

        for kind in all_kinds() {
            let capture = Arc::new(Capture::default());
            let stm = Stm::with_recorder(kind, Arc::clone(&capture) as Arc<dyn Recorder>);
            recorder::set_session(5);
            let x = stm.alloc(10i64);
            let y = stm.alloc(0i64);
            // Read-modify-write: x is an external read then a write; y is
            // write-then-read, so it must NOT appear in the read set.
            stm.run(|tx| {
                let vx = tx.read(x)?;
                tx.write(y, vx + 1)?;
                let vy = tx.read(y)?;
                tx.write(x, vy)?;
                Ok(())
            });
            // An aborted attempt must record nothing.
            let _ = stm.try_run(|tx| {
                tx.write(x, 99)?;
                tx.abort::<()>()
            });
            recorder::clear_session();

            let records = capture.records.lock();
            assert_eq!(records.len(), 1, "{kind:?}");
            let (session, reads, writes) = &records[0];
            assert_eq!(*session, Some(5), "{kind:?}");
            assert_eq!(reads.as_slice(), &[(x.base(), 10)], "{kind:?}");
            assert_eq!(writes.as_slice(), &[(x.base(), 11), (y.base(), 11)], "{kind:?}");
        }
    }

    #[test]
    fn interior_backends_run_the_full_typed_front_end() {
        // The two non-corner built-ins (mvcc, shard-lock) behave like any
        // other backend through the typed API: atomic multi-word reads under
        // contention and no lost counter increments (mvcc's
        // first-committer-wins forbids lost updates even though it admits
        // write skew).
        for id in [registry::MVCC, registry::SHARD_LOCK] {
            let stm = Arc::new(Stm::new(id));
            assert_eq!(stm.kind(), None, "interior designs have no legacy BackendKind");
            let pair: TVar<(i64, i64)> = stm.alloc((0, 0));
            let counter = stm.alloc(0i64);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        for i in 1..=200i64 {
                            stm.run(|tx| tx.update(counter, |v| v + 1));
                            stm.run(|tx| tx.write(pair, (i, -i)));
                            let (a, b) = stm.run(|tx| tx.read(pair));
                            assert_eq!(a, -b, "{id}: torn read ({a}, {b})");
                        }
                    });
                }
            });
            assert_eq!(stm.read_now(counter), 800, "{id}: increments must not be lost");
        }
    }

    #[test]
    fn abort_reason_taxonomy_sums_to_total_aborts_under_contention() {
        // Metric invariant: every abort carries exactly one classified
        // reason, and conflict aborts never fall through to `Explicit`.
        for kind in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let stm = Arc::new(Stm::new(kind));
            let counter = stm.alloc(0i64);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        for _ in 0..200 {
                            stm.run(|tx| tx.update(counter, |v| v + 1));
                        }
                    });
                }
            });
            let stats = stm.stats();
            let sum: u64 = stats.abort_reason_counts().iter().map(|(_, n)| n).sum();
            assert_eq!(sum, stats.aborts(), "{kind:?}");
            assert_eq!(stats.aborts_by(AbortReason::Explicit), 0, "{kind:?}: no unclassified");
            assert_eq!(stats.aborts_by(AbortReason::Giveup), 0, "{kind:?}: nothing gave up");
        }
    }

    #[test]
    fn mvcc_conflict_aborts_classify_as_first_committer_wins() {
        let stm = Arc::new(Stm::new(registry::MVCC));
        let counter = stm.alloc(0i64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                s.spawn(move || {
                    for _ in 0..200 {
                        stm.run(|tx| tx.update(counter, |v| v + 1));
                    }
                });
            }
        });
        let stats = stm.stats();
        assert_eq!(stats.aborts_by(AbortReason::FirstCommitterWins), stats.aborts());
        let sum: u64 = stats.abort_reason_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(sum, stats.aborts());
    }

    #[test]
    fn phase_histograms_sample_commits_and_counters_stay_exact() {
        // Metric invariant: with telemetry attached, the commit counter
        // mirrors `StmStats` *exactly*, while the phase histograms sample
        // 1 in `telemetry::PHASE_SAMPLE_EVERY` attempts — every sampled
        // commit lands one sample in each of the three phases, and each
        // thread's first attempt is always sampled — exercised from 4
        // threads so concurrent recording loses nothing.
        let registry = tm_telemetry::Registry::new();
        for kind in all_kinds() {
            let stm = Arc::new(
                Stm::new(kind)
                    .with_telemetry(StmTelemetry::from_registry(&registry, kind.id().name())),
            );
            let counter = stm.alloc(0i64);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        for _ in 0..100 {
                            stm.run(|tx| tx.update(counter, |v| v + 1));
                        }
                    });
                }
            });
            let commits = stm.stats().commits();
            assert!(commits >= 400, "{kind:?}");
            let tele = stm.telemetry().expect("telemetry attached");
            assert_eq!(tele.commits.get(), commits, "{kind:?}: counters are exact");
            let sampled = tele.phase_read.count();
            assert!(sampled >= 1, "{kind:?}: first attempts are always sampled");
            assert!(sampled <= commits, "{kind:?}: sampling never over-counts");
            // The phase spans nest: a sampled commit lands one sample in
            // each phase, and bucket sums account for every sample.
            assert_eq!(tele.phase_validate.count(), sampled, "{kind:?}");
            assert_eq!(tele.phase_publish.count(), sampled, "{kind:?}");
            let bucket_total: u64 = tele.phase_read.buckets().iter().sum();
            assert_eq!(bucket_total, sampled, "{kind:?}: no lost histogram samples");
            let mirrored: u64 = tele.aborts.iter().map(|c| c.get()).sum();
            assert_eq!(mirrored, stm.stats().aborts(), "{kind:?}");
        }
    }

    #[test]
    fn pram_backend_loses_cross_thread_updates_by_design() {
        let stm = Arc::new(Stm::new(BackendKind::PramLocal));
        let x = stm.alloc(0i64);
        std::thread::scope(|s| {
            let stm2 = Arc::clone(&stm);
            s.spawn(move || {
                stm2.write_now(x, 5);
                assert_eq!(stm2.read_now(x), 5);
            });
        });
        // The writer thread saw its own write, but this thread still sees the initial
        // value: PRAM consistency, and nothing stronger.
        assert_eq!(stm.read_now(x), 0);
    }

    #[test]
    fn disjoint_threads_scale_without_aborts_on_dap_backends() {
        for kind in [BackendKind::Tl2Blocking, BackendKind::ObstructionFree] {
            let stm = Arc::new(Stm::new(kind));
            let vars: Vec<TVar<i64>> = (0..4).map(|_| stm.alloc(0i64)).collect();
            std::thread::scope(|s| {
                for (i, var) in vars.iter().enumerate() {
                    let stm = Arc::clone(&stm);
                    let var = *var;
                    s.spawn(move || {
                        for _ in 0..100 {
                            stm.run(|tx| {
                                let v = tx.read(var)?;
                                tx.write(var, v + i as i64 + 1)
                            });
                        }
                    });
                }
            });
            // No conflicts → no aborts on either consistent backend.
            assert_eq!(stm.stats().aborts(), 0, "{kind:?}");
        }
    }
}
