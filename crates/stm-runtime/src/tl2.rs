//! The blocking, eager-locking backend (the "give up Liveness" corner, TL-style).
//!
//! * **Writes acquire the variable's exclusive lock at encounter time** and hold it
//!   until commit or abort (two-phase locking), spinning while the lock is busy.  A
//!   transaction that stalls after writing therefore stalls every reader and writer
//!   of that variable — the blocking behaviour the PCL theorem trades against
//!   consistency and parallelism.
//! * **Reads are optimistic**: they snapshot `(version, value)` of an unlocked
//!   variable and are re-validated at commit time, which gives serializability
//!   without read locks.
//! * All metadata is **per variable** (a lock bit, a version and the value): two
//!   transactions accessing disjoint variables never touch a common atomic — the
//!   runtime analogue of strict disjoint-access-parallelism.
//!
//! To keep the test-suite and benchmarks hang-free the spin loops are *bounded*
//! ([`SPIN_LIMIT`] iterations) and give up with an abort once exhausted; this models
//! "practically blocking" behaviour (victims burn their budget spinning, then retry)
//! while remaining safe to run unattended.

use crate::backend::{Backend, VarId};
use crate::txn::{AbortReason, StmError, TxnData};
use crate::vartable::VarTable;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// How long a transaction spins on a busy lock before giving up with an abort.
pub const SPIN_LIMIT: usize = 50_000;

#[derive(Default)]
struct Cell {
    locked: AtomicBool,
    version: AtomicU64,
    value: AtomicI64,
}

impl Cell {
    /// Consistent unlocked snapshot of (version, value); `None` if the cell stayed
    /// locked or changed under us for the whole spin budget.
    fn snapshot(&self, spin_limit: usize) -> Option<(u64, i64)> {
        for _ in 0..spin_limit {
            if self.locked.load(Ordering::Acquire) {
                std::hint::spin_loop();
                continue;
            }
            let v1 = self.version.load(Ordering::Acquire);
            let value = self.value.load(Ordering::Acquire);
            let v2 = self.version.load(Ordering::Acquire);
            if v1 == v2 && !self.locked.load(Ordering::Acquire) {
                return Some((v1, value));
            }
            std::hint::spin_loop();
        }
        None
    }

    fn try_lock(&self) -> bool {
        self.locked.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// The eager-locking (blocking) backend.
pub struct Tl2Backend {
    cells: VarTable<Cell>,
    spin_limit: usize,
}

impl Tl2Backend {
    /// Create an empty backend.
    pub fn new() -> Self {
        Tl2Backend { cells: VarTable::new(), spin_limit: SPIN_LIMIT }
    }

    /// Create a backend with a custom spin budget (used by tests).
    pub fn with_spin_limit(spin_limit: usize) -> Self {
        Tl2Backend { cells: VarTable::new(), spin_limit }
    }

    fn cell(&self, var: VarId) -> &Cell {
        self.cells.get(var.index())
    }

    fn release_all(&self, data: &mut TxnData) {
        for var in std::mem::take(&mut data.held_locks) {
            self.cell(var).unlock();
        }
    }
}

impl Default for Tl2Backend {
    fn default() -> Self {
        Tl2Backend::new()
    }
}

impl Backend for Tl2Backend {
    fn alloc_words(&self, initials: &[i64]) -> VarId {
        VarId(self.cells.alloc_init(initials.len(), |k, cell| {
            cell.value.store(initials[k], Ordering::Relaxed);
        }))
    }

    fn begin(&self, data: &mut TxnData) {
        data.reset();
    }

    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, StmError> {
        if let Some(v) = data.write_set.get(&var) {
            return Ok(*v);
        }
        if let Some(v) = data.read_cache.get(&var) {
            return Ok(*v);
        }
        let cell = self.cell(var);
        // If we already hold the lock (possible after write-then-read of a var that is
        // not yet in the write set — cannot happen, but stay safe), or the variable is
        // locked by someone else, spin within the budget.
        let (version, value) = match cell.snapshot(self.spin_limit) {
            Some(s) => s,
            None => {
                data.set_abort_reason(AbortReason::LockConflict);
                return Err(StmError::Aborted);
            }
        };
        data.read_versions.insert(var, version);
        data.read_cache.insert(var, value);
        Ok(value)
    }

    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), StmError> {
        if !data.held_locks.contains(&var) {
            let cell = self.cell(var);
            let mut acquired = false;
            for _ in 0..self.spin_limit {
                if cell.try_lock() {
                    acquired = true;
                    break;
                }
                std::hint::spin_loop();
            }
            if !acquired {
                data.set_abort_reason(AbortReason::LockConflict);
                return Err(StmError::Aborted);
            }
            data.held_locks.push(var);
        }
        data.write_set.insert(var, value);
        Ok(())
    }

    fn commit(&self, data: &mut TxnData) -> Result<(), StmError> {
        // Validate the read set: every read version must still be current, and the
        // variable must not be locked by another transaction.
        for (var, recorded) in &data.read_versions {
            let cell = self.cell(*var);
            let we_hold_it = data.held_locks.contains(var);
            // If another transaction committed to this variable between our read and
            // our lock acquisition (or still holds its lock), the snapshot is stale.
            if (!we_hold_it && cell.locked.load(Ordering::Acquire))
                || cell.version.load(Ordering::Acquire) != *recorded
            {
                self.release_all(data);
                data.set_abort_reason(AbortReason::ReadValidation);
                return Err(StmError::Aborted);
            }
        }
        data.mark_validated();
        // Install the writes and release the locks.
        for (&var, &value) in &data.write_set {
            let cell = self.cell(var);
            cell.value.store(value, Ordering::Release);
            cell.version.fetch_add(1, Ordering::AcqRel);
        }
        self.release_all(data);
        Ok(())
    }

    fn cleanup(&self, data: &mut TxnData) {
        self.release_all(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn snapshot_reads_are_consistent() {
        let backend = Tl2Backend::new();
        let v = backend.alloc(3);
        let mut data = TxnData::default();
        backend.begin(&mut data);
        assert_eq!(backend.read(&mut data, v).unwrap(), 3);
        // Cached on the second read.
        assert_eq!(backend.read(&mut data, v).unwrap(), 3);
        assert!(backend.commit(&mut data).is_ok());
    }

    #[test]
    fn writers_hold_the_lock_until_commit_blocking_other_writers() {
        let backend = Arc::new(Tl2Backend::with_spin_limit(200));
        let v = backend.alloc(0);

        let mut writer = TxnData::default();
        backend.begin(&mut writer);
        backend.write(&mut writer, v, 1).unwrap();

        // A second writer cannot acquire the lock and eventually gives up.
        let b2 = Arc::clone(&backend);
        let handle = std::thread::spawn(move || {
            let mut other = TxnData::default();
            b2.begin(&mut other);
            let res = b2.write(&mut other, v, 2);
            b2.cleanup(&mut other);
            res
        });
        let res = handle.join().unwrap();
        assert_eq!(res, Err(StmError::Aborted));

        // Once the first writer commits, the value is visible.
        backend.commit(&mut writer).unwrap();
        let mut reader = TxnData::default();
        backend.begin(&mut reader);
        assert_eq!(backend.read(&mut reader, v).unwrap(), 1);
    }

    #[test]
    fn readers_wait_for_a_stalled_writer_then_give_up() {
        let backend = Arc::new(Tl2Backend::with_spin_limit(500));
        let v = backend.alloc(0);
        let mut writer = TxnData::default();
        backend.begin(&mut writer);
        backend.write(&mut writer, v, 9).unwrap();

        // While the writer holds the lock, a reader spins and ultimately aborts.
        let b2 = Arc::clone(&backend);
        let reader = std::thread::spawn(move || {
            let mut data = TxnData::default();
            b2.begin(&mut data);
            b2.read(&mut data, v)
        });
        std::thread::sleep(Duration::from_millis(10));
        let res = reader.join().unwrap();
        assert_eq!(res, Err(StmError::Aborted));
        backend.cleanup(&mut writer);
    }

    #[test]
    fn stale_read_sets_fail_validation() {
        let backend = Tl2Backend::new();
        let v = backend.alloc(0);
        let mut t1 = TxnData::default();
        backend.begin(&mut t1);
        assert_eq!(backend.read(&mut t1, v).unwrap(), 0);

        // Another transaction commits a new value in between.
        let mut t2 = TxnData::default();
        backend.begin(&mut t2);
        backend.write(&mut t2, v, 5).unwrap();
        backend.commit(&mut t2).unwrap();

        // t1 now writes something else and must fail validation at commit.
        let other = backend.alloc(0);
        backend.write(&mut t1, other, 1).unwrap();
        assert_eq!(backend.commit(&mut t1), Err(StmError::Aborted));
        // The aborted commit released its lock.
        let mut t3 = TxnData::default();
        backend.begin(&mut t3);
        backend.write(&mut t3, other, 2).unwrap();
        assert!(backend.commit(&mut t3).is_ok());
    }
}
