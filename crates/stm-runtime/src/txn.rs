//! Per-transaction state and the handle user code sees inside a transaction.

use crate::backend::{Backend, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// Why a transaction attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// The attempt must be abandoned (conflict, failed validation, busy lock on a
    /// non-blocking backend, or an explicit user abort).  The caller may retry.
    Aborted,
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("transaction aborted")
    }
}

impl std::error::Error for StmError {}

/// The bookkeeping every backend shares for one transaction attempt.
#[derive(Debug, Default)]
pub struct TxnData {
    /// Snapshot timestamp (read of the global clock at begin), where applicable.
    pub start_ts: u64,
    /// Read set: variable → version observed at first read.
    pub read_versions: BTreeMap<VarId, u64>,
    /// Write set: variable → value to install at commit (also serves as the
    /// read-your-own-writes cache).
    pub write_set: BTreeMap<VarId, i64>,
    /// Values read so far (cache, so repeated reads are stable within the attempt).
    pub read_cache: BTreeMap<VarId, i64>,
    /// Locks currently held (populated only during commit, used by `cleanup`).
    pub held_locks: Vec<VarId>,
}

impl TxnData {
    /// Reset the state for a fresh attempt.
    pub fn reset(&mut self) {
        self.start_ts = 0;
        self.read_versions.clear();
        self.write_set.clear();
        self.read_cache.clear();
        self.held_locks.clear();
    }
}

/// The handle passed to transaction closures.
pub struct Txn<'a> {
    backend: &'a dyn Backend,
    data: &'a mut TxnData,
}

impl<'a> Txn<'a> {
    /// Create a transaction handle (used by [`crate::Stm`]).
    pub fn new(backend: &'a dyn Backend, data: &'a mut TxnData) -> Self {
        Txn { backend, data }
    }

    /// Read a transactional variable.
    pub fn read(&mut self, var: VarId) -> Result<i64, StmError> {
        self.backend.read(self.data, var)
    }

    /// Write a transactional variable.
    pub fn write(&mut self, var: VarId, value: i64) -> Result<(), StmError> {
        self.backend.write(self.data, var, value)
    }

    /// Read–modify–write helper.
    pub fn update(&mut self, var: VarId, f: impl FnOnce(i64) -> i64) -> Result<i64, StmError> {
        let old = self.read(var)?;
        let new = f(old);
        self.write(var, new)?;
        Ok(new)
    }

    /// Abort the current attempt explicitly.
    pub fn abort<T>(&mut self) -> Result<T, StmError> {
        Err(StmError::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_data_reset_clears_everything() {
        let mut d = TxnData { start_ts: 9, ..TxnData::default() };
        d.read_versions.insert(VarId(0), 1);
        d.write_set.insert(VarId(0), 5);
        d.read_cache.insert(VarId(1), 2);
        d.held_locks.push(VarId(0));
        d.reset();
        assert_eq!(d.start_ts, 0);
        assert!(d.read_versions.is_empty());
        assert!(d.write_set.is_empty());
        assert!(d.read_cache.is_empty());
        assert!(d.held_locks.is_empty());
    }

    #[test]
    fn stm_error_displays() {
        assert_eq!(StmError::Aborted.to_string(), "transaction aborted");
    }
}
