//! Per-transaction state and the handle user code sees inside a transaction.

use crate::backend::{Backend, VarId};
use crate::tvar::TVar;
use crate::value::TxnValue;
use std::fmt;

/// A sorted-vector map from [`VarId`] to a per-variable value — the hot-path
/// replacement for the `BTreeMap`s transaction attempts used to allocate.
///
/// Transactions touch a handful of variables, so a sorted `Vec` beats a tree:
/// lookups are a binary search over one contiguous allocation, iteration is
/// cache-linear and **`clear` retains capacity**, which is the point — one
/// [`TxnData`] now lives across every attempt of a retry loop, so after the
/// first attempt the per-attempt allocation count drops to zero.
///
/// The API mirrors the `BTreeMap` subset the backends use (`get` / `insert` /
/// `keys` / `values` / sorted iteration), so call sites read the same.
#[derive(Debug, Default, Clone)]
pub struct VarMap<V> {
    entries: Vec<(VarId, V)>,
}

impl<V> VarMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        VarMap { entries: Vec::new() }
    }

    fn position(&self, var: VarId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&var, |&(v, _)| v)
    }

    /// The value recorded for `var`, if any.
    pub fn get(&self, var: &VarId) -> Option<&V> {
        self.position(*var).ok().map(|i| &self.entries[i].1)
    }

    /// `true` if `var` has an entry.
    pub fn contains_key(&self, var: &VarId) -> bool {
        self.position(*var).is_ok()
    }

    /// Insert or replace, returning the previous value if any.
    pub fn insert(&mut self, var: VarId, value: V) -> Option<V> {
        match self.position(var) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (var, value));
                None
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry, **keeping the allocation** for the next attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The entries in ascending [`VarId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &V)> {
        self.entries.iter().map(|(v, x)| (v, x))
    }

    /// The keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &VarId> {
        self.entries.iter().map(|(v, _)| v)
    }

    /// The values, in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, x)| x)
    }

    /// The key at sorted position `i` (for index-based loops that also need
    /// to mutate sibling [`TxnData`] fields while walking the map).
    pub fn key_at(&self, i: usize) -> VarId {
        self.entries[i].0
    }
}

impl<'a, V> IntoIterator for &'a VarMap<V> {
    type Item = (&'a VarId, &'a V);
    type IntoIter =
        std::iter::Map<std::slice::Iter<'a, (VarId, V)>, fn(&'a (VarId, V)) -> (&'a VarId, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(v, x)| (v, x))
    }
}

/// Why a transaction attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// The attempt must be abandoned (conflict, failed validation, busy lock on a
    /// non-blocking backend, or an explicit user abort).  The caller may retry.
    Aborted,
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("transaction aborted")
    }
}

impl std::error::Error for StmError {}

/// Why an attempt aborted — the taxonomy every backend's commit path reports
/// through [`TxnData::abort_reason`].  [`StmError`] stays a single variant
/// (callers only need "retryable"); the reason travels out-of-band so the
/// per-reason counters in [`crate::StmStats`] can show *which* defence each
/// backend mounted: validation aborts are consistency being defended,
/// lock/band conflicts are parallelism being rationed, give-ups are liveness
/// being bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Commit-time read-set validation failed (a concurrent commit changed
    /// something this attempt read).
    ReadValidation,
    /// A lock, ownership record or shard band was contended past the spin
    /// budget (blocking and obstruction-free conflict aborts).
    LockConflict,
    /// A snapshot-isolation first-committer-wins check lost (mvcc).
    FirstCommitterWins,
    /// A bounded retry policy stopped the transaction: the *final* attempt's
    /// abort is reclassified to this so give-ups are visible in the taxonomy.
    Giveup,
    /// The transaction body itself asked to abort (user code).
    Explicit,
}

impl AbortReason {
    /// Every reason, in reporting order.
    pub const ALL: [AbortReason; 5] = [
        AbortReason::ReadValidation,
        AbortReason::LockConflict,
        AbortReason::FirstCommitterWins,
        AbortReason::Giveup,
        AbortReason::Explicit,
    ];

    /// Stable kebab-case name (used as a metric label and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::ReadValidation => "read-validation",
            AbortReason::LockConflict => "lock-conflict",
            AbortReason::FirstCommitterWins => "first-committer-wins",
            AbortReason::Giveup => "giveup",
            AbortReason::Explicit => "explicit",
        }
    }

    /// Index into [`AbortReason::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        match self {
            AbortReason::ReadValidation => 0,
            AbortReason::LockConflict => 1,
            AbortReason::FirstCommitterWins => 2,
            AbortReason::Giveup => 3,
            AbortReason::Explicit => 4,
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The bookkeeping every backend shares for one transaction attempt.
#[derive(Debug, Default)]
pub struct TxnData {
    /// Snapshot timestamp (read of the global clock at begin), where applicable.
    pub start_ts: u64,
    /// Read set: variable → version observed at first read.
    pub read_versions: VarMap<u64>,
    /// Write set: variable → value to install at commit (also serves as the
    /// read-your-own-writes cache).
    pub write_set: VarMap<i64>,
    /// Values read so far (cache, so repeated reads are stable within the attempt).
    pub read_cache: VarMap<i64>,
    /// Locks currently held (populated only during commit, used by `cleanup`).
    pub held_locks: Vec<VarId>,
    /// Set by the backend immediately before it returns
    /// [`StmError::Aborted`]; taken by the front-end when it records the
    /// abort.  `None` on an abort means the body aborted explicitly.
    pub abort_reason: Option<AbortReason>,
    /// Set by the front-end when phase-latency telemetry is on.  Backends
    /// that split commit into validate-then-publish stamp
    /// [`TxnData::validated_at`] when this is set — one never-taken branch
    /// on the commit path otherwise.
    pub timing: bool,
    /// The instant the backend finished validation and began publishing
    /// (only stamped when [`TxnData::timing`] is set).
    pub validated_at: Option<std::time::Instant>,
}

impl TxnData {
    /// Reset the state for a fresh attempt.
    pub fn reset(&mut self) {
        self.start_ts = 0;
        self.read_versions.clear();
        self.write_set.clear();
        self.read_cache.clear();
        self.held_locks.clear();
        self.abort_reason = None;
        self.timing = false;
        self.validated_at = None;
    }

    /// Record why the current attempt is about to abort (backend commit
    /// paths call this just before returning [`StmError::Aborted`]).
    pub fn set_abort_reason(&mut self, reason: AbortReason) {
        self.abort_reason = Some(reason);
    }

    /// Stamp the validate→publish boundary if phase timing is on (one
    /// branch; never taken with metrics off).
    pub fn mark_validated(&mut self) {
        if self.timing {
            self.validated_at = Some(std::time::Instant::now());
        }
    }
}

/// The handle passed to transaction closures.
pub struct Txn<'a> {
    backend: &'a dyn Backend,
    data: &'a mut TxnData,
}

impl<'a> Txn<'a> {
    /// Create a transaction handle (used by [`crate::Stm`]).
    pub fn new(backend: &'a dyn Backend, data: &'a mut TxnData) -> Self {
        Txn { backend, data }
    }

    /// Read a typed transactional variable.
    ///
    /// Multi-word values are decoded word-by-word from consecutive
    /// [`VarId`] slots within this transaction, so the value is observed
    /// atomically (all words from the same snapshot or the attempt aborts).
    pub fn read<T: TxnValue>(&mut self, var: TVar<T>) -> Result<T, StmError> {
        let backend = self.backend;
        let data = &mut *self.data;
        let mut k = 0usize;
        T::decode(&mut || {
            let word = backend.read(data, var.word(k))?;
            k += 1;
            Ok(word)
        })
    }

    /// Write a typed transactional variable (buffered until commit on most
    /// backends).
    pub fn write<T: TxnValue>(&mut self, var: TVar<T>, value: T) -> Result<(), StmError> {
        let backend = self.backend;
        let data = &mut *self.data;
        let mut k = 0usize;
        value.encode(&mut |word| {
            backend.write(data, var.word(k), word)?;
            k += 1;
            Ok(())
        })
    }

    /// Read–modify–write helper.
    pub fn update<T: TxnValue + Clone>(
        &mut self,
        var: TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, StmError> {
        let old = self.read(var)?;
        let new = f(old);
        self.write(var, new.clone())?;
        Ok(new)
    }

    /// Read a raw word by [`VarId`] (pre-`TVar` API).
    #[deprecated(since = "0.1.0", note = "migrate to `Txn::read` with a typed `TVar<T>`")]
    pub fn read_var(&mut self, var: VarId) -> Result<i64, StmError> {
        self.backend.read(self.data, var)
    }

    /// Write a raw word by [`VarId`] (pre-`TVar` API).
    #[deprecated(since = "0.1.0", note = "migrate to `Txn::write` with a typed `TVar<T>`")]
    pub fn write_var(&mut self, var: VarId, value: i64) -> Result<(), StmError> {
        self.backend.write(self.data, var, value)
    }

    /// Abort the current attempt explicitly.
    pub fn abort<T>(&mut self) -> Result<T, StmError> {
        Err(StmError::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_data_reset_clears_everything() {
        let mut d = TxnData { start_ts: 9, ..TxnData::default() };
        d.read_versions.insert(VarId(0), 1);
        d.write_set.insert(VarId(0), 5);
        d.read_cache.insert(VarId(1), 2);
        d.held_locks.push(VarId(0));
        d.set_abort_reason(AbortReason::LockConflict);
        d.timing = true;
        d.mark_validated();
        assert!(d.validated_at.is_some());
        d.reset();
        assert_eq!(d.start_ts, 0);
        assert!(d.read_versions.is_empty());
        assert!(d.write_set.is_empty());
        assert!(d.read_cache.is_empty());
        assert!(d.held_locks.is_empty());
        assert_eq!(d.abort_reason, None);
        assert!(!d.timing);
        assert!(d.validated_at.is_none());
    }

    #[test]
    fn var_map_behaves_like_a_sorted_map() {
        let mut m: VarMap<i64> = VarMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(VarId(5), 50), None);
        assert_eq!(m.insert(VarId(1), 10), None);
        assert_eq!(m.insert(VarId(3), 30), None);
        assert_eq!(m.insert(VarId(3), 31), Some(30), "insert replaces");
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&VarId(1)), Some(&10));
        assert_eq!(m.get(&VarId(2)), None);
        assert!(m.contains_key(&VarId(5)));
        // Iteration is ascending by VarId — the property the sorted-order
        // lock acquisition in the backends and the recorder both rely on.
        let pairs: Vec<(VarId, i64)> = m.iter().map(|(v, x)| (*v, *x)).collect();
        assert_eq!(pairs, vec![(VarId(1), 10), (VarId(3), 31), (VarId(5), 50)]);
        let keys: Vec<VarId> = m.keys().copied().collect();
        assert_eq!(keys, vec![VarId(1), VarId(3), VarId(5)]);
        assert_eq!(m.key_at(1), VarId(3));
        let values: Vec<i64> = m.values().copied().collect();
        assert_eq!(values, vec![10, 31, 50]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&VarId(1)), None);
    }

    #[test]
    fn abort_reason_names_and_indices_are_stable() {
        for (i, reason) in AbortReason::ALL.into_iter().enumerate() {
            assert_eq!(reason.index(), i);
            assert_eq!(reason.to_string(), reason.name());
        }
        assert_eq!(AbortReason::FirstCommitterWins.name(), "first-committer-wins");
        // Timing off → mark_validated is the never-taken branch.
        let mut d = TxnData::default();
        d.mark_validated();
        assert!(d.validated_at.is_none());
    }

    #[test]
    fn stm_error_displays() {
        assert_eq!(StmError::Aborted.to_string(), "transaction aborted");
    }
}
