//! The open backend registry: backends are *data*, not a closed enum.
//!
//! The PCL theorem is about the space of TM designs — every implementation
//! gives up one of Parallelism, Consistency or Liveness — so the runtime must
//! not hard-code three corners.  A [`BackendSpec`] names a backend, declares
//! where it sits on the P/C/L triangle and how to construct it; [`register`]
//! adds it to a process-wide registry that [`crate::Stm::new`], the CLI, the
//! benchmarks and the examples all resolve through.  The three built-in
//! backends are pre-registered; anything else (see `workloads::glock` for a
//! coarse-global-lock "give up P" backend registered from another crate
//! entirely) joins through the same public API.
//!
//! Names parse and print through one place: [`BackendId`] implements
//! [`std::str::FromStr`] (accepting canonical names and aliases) and
//! [`std::fmt::Display`], so no caller ever stringly-matches backend names
//! again.

use crate::backend::{Backend, BackendKind};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// One corner of the P/C/L triangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Strict disjoint-access-parallelism.
    Parallelism,
    /// (Weak adaptive) consistency.
    Consistency,
    /// Non-blocking liveness.
    Liveness,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Parallelism => "parallelism",
            Axis::Consistency => "consistency",
            Axis::Liveness => "liveness",
        })
    }
}

/// Where a backend sits on the P/C/L triangle: which axis it sacrifices and a
/// one-line description of what it provides on each.
#[derive(Debug, Clone, Copy)]
pub struct Triangle {
    /// The axis the backend gives up (the PCL theorem says there is one).
    pub sacrificed: Axis,
    /// What it offers on the parallelism axis.
    pub parallelism: &'static str,
    /// What it offers on the consistency axis.
    pub consistency: &'static str,
    /// What it offers on the liveness axis.
    pub liveness: &'static str,
}

/// Everything the runtime needs to know about a backend.
#[derive(Clone)]
pub struct BackendSpec {
    /// Canonical name (what [`BackendId`] displays and [`FromStr`] prefers).
    pub name: &'static str,
    /// Accepted short names for parsing (e.g. `"tl2"` for `"tl2-blocking"`).
    pub aliases: &'static [&'static str],
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// Declared P/C/L position.
    pub triangle: Triangle,
    /// How to build a fresh instance.
    pub constructor: fn() -> Arc<dyn Backend>,
}

impl fmt::Debug for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendSpec")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("triangle", &self.triangle)
            .finish()
    }
}

/// A cheap, copyable handle to a registered backend (its canonical name).
///
/// Obtained from [`register`], [`BackendId::from_str`], the built-in
/// constants ([`TL2_BLOCKING`], [`OBSTRUCTION_FREE`], [`PRAM_LOCAL`]) or a
/// [`BackendKind`] conversion — every route guarantees the registry can
/// resolve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(&'static str);

impl BackendId {
    /// The canonical backend name.
    pub fn name(self) -> &'static str {
        self.0
    }

    /// The full spec this id resolves to.
    pub fn spec(self) -> BackendSpec {
        lookup(self.0).unwrap_or_else(|| {
            panic!("backend {:?} disappeared from the registry (ids only come from it)", self.0)
        })
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The built-in blocking TL2-style backend ("give up Liveness").
pub const TL2_BLOCKING: BackendId = BackendId("tl2-blocking");
/// The built-in obstruction-free backend (gives up *strict* liveness
/// guarantees under contention while never blocking).
pub const OBSTRUCTION_FREE: BackendId = BackendId("obstruction-free");
/// The built-in thread-local-replica backend ("give up Consistency").
pub const PRAM_LOCAL: BackendId = BackendId("pram-local");
/// The built-in multi-version snapshot-isolation backend ("give up
/// serializability": admits write skew, never an SI anomaly).
pub const MVCC: BackendId = BackendId("mvcc");
/// The built-in sharded reader-writer-lock backend (gives up *full*
/// disjoint-access-parallelism: per-band metadata between `global-lock` and
/// TL2).
pub const SHARD_LOCK: BackendId = BackendId("shard-lock");

impl From<BackendKind> for BackendId {
    fn from(kind: BackendKind) -> BackendId {
        kind.id()
    }
}

impl BackendKind {
    /// The registry id of this built-in backend.
    pub fn id(self) -> BackendId {
        match self {
            BackendKind::Tl2Blocking => TL2_BLOCKING,
            BackendKind::ObstructionFree => OBSTRUCTION_FREE,
            BackendKind::PramLocal => PRAM_LOCAL,
        }
    }
}

/// Parsing failed: the name matches no registered backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// What the caller asked for.
    pub requested: String,
    /// Every name the registry would have accepted (canonical names only).
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown backend {:?} (registered: {})", self.requested, self.known.join(", "))
    }
}

impl std::error::Error for UnknownBackend {}

impl std::str::FromStr for BackendId {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> Result<BackendId, UnknownBackend> {
        with_registry(|specs| {
            specs
                .iter()
                .find(|spec| spec.name == s || spec.aliases.contains(&s))
                .map(|spec| BackendId(spec.name))
                .ok_or_else(|| UnknownBackend {
                    requested: s.to_string(),
                    known: specs.iter().map(|spec| spec.name).collect(),
                })
        })
    }
}

/// Registering failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Another backend already claimed this name or one of these aliases.
    NameTaken {
        /// The contested name.
        name: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NameTaken { name } => {
                write!(f, "backend name {name:?} is already registered to a different backend")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

fn builtin_specs() -> Vec<BackendSpec> {
    vec![
        BackendSpec {
            name: TL2_BLOCKING.0,
            aliases: &["tl2", "tl2blocking"],
            summary: "TL2-style commit-time validation with eager write locks; \
                      spins on busy locks",
            triangle: Triangle {
                sacrificed: Axis::Liveness,
                parallelism: "per-var metadata only (strict DAP)",
                consistency: "serializable",
                liveness: "blocking (bounded spin, then abort)",
            },
            constructor: || Arc::new(crate::tl2::Tl2Backend::new()),
        },
        BackendSpec {
            name: OBSTRUCTION_FREE.0,
            aliases: &["ofree", "of", "obstruction"],
            summary: "same versioned-lock layout as tl2-blocking, but aborts instead \
                      of ever waiting",
            triangle: Triangle {
                sacrificed: Axis::Liveness,
                parallelism: "per-var metadata only (strict DAP)",
                consistency: "serializable",
                liveness: "obstruction-free (aborts under contention)",
            },
            constructor: || Arc::new(crate::ofree::OFreeBackend::new()),
        },
        BackendSpec {
            name: PRAM_LOCAL.0,
            aliases: &["pram", "pramlocal", "local"],
            summary: "thread-local replicas, no shared memory at all",
            triangle: Triangle {
                sacrificed: Axis::Consistency,
                parallelism: "no shared memory (vacuously strict DAP)",
                consistency: "PRAM only — cross-thread writes are never observed",
                liveness: "wait-free",
            },
            constructor: || Arc::new(crate::pramlocal::PramLocalBackend::new()),
        },
        BackendSpec {
            name: MVCC.0,
            aliases: &["si", "snapshot", "multiversion"],
            summary: "multi-version snapshot isolation: begin-timestamp snapshots, \
                      first-committer-wins commits, GC'd version chains",
            triangle: Triangle {
                sacrificed: Axis::Consistency,
                parallelism: "per-var version chains (strict DAP); commit locks written vars only",
                consistency: "snapshot isolation — admits write skew, never an SI anomaly",
                liveness: "reads never block or abort; commits lock briefly, first committer wins",
            },
            constructor: || Arc::new(crate::mvcc::MvccBackend::new()),
        },
        BackendSpec {
            name: SHARD_LOCK.0,
            aliases: &["shardlock", "sharded", "slock"],
            summary: "per-shard reader-writer locks (16 hash bands) with sorted \
                      two-phase commit acquisition",
            triangle: Triangle {
                sacrificed: Axis::Parallelism,
                parallelism: "shard-band metadata: disjoint vars in one band still conflict",
                consistency: "serializable (commit-time shard validation under 2PL)",
                liveness: "blocking on shard locks (bounded spin, then abort)",
            },
            constructor: || Arc::new(crate::shardlock::ShardLockBackend::new()),
        },
    ]
}

fn with_registry<R>(f: impl FnOnce(&mut Vec<BackendSpec>) -> R) -> R {
    static REGISTRY: OnceLock<Mutex<Vec<BackendSpec>>> = OnceLock::new();
    let mut guard = REGISTRY
        .get_or_init(|| Mutex::new(builtin_specs()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    f(&mut guard)
}

/// Register a backend.  Idempotent: re-registering under the same canonical
/// name with the same constructor returns its id and **updates** the stored
/// aliases/summary/triangle (so a spec revision takes effect); claiming a
/// name or alias already owned by a *different* backend is an error.
pub fn register(spec: BackendSpec) -> Result<BackendId, RegistryError> {
    with_registry(|specs| {
        let same_backend = |existing: &BackendSpec| {
            existing.name == spec.name
                && std::ptr::fn_addr_eq(existing.constructor, spec.constructor)
        };
        let mut names = std::iter::once(spec.name).chain(spec.aliases.iter().copied());
        if let Some(taken) = names.find(|candidate| {
            specs.iter().any(|existing| {
                (existing.name == *candidate || existing.aliases.contains(candidate))
                    && !same_backend(existing)
            })
        }) {
            return Err(RegistryError::NameTaken { name: taken.to_string() });
        }
        match specs.iter_mut().find(|existing| existing.name == spec.name) {
            // Same backend re-registered: adopt the (possibly revised) spec.
            Some(existing) => *existing = spec.clone(),
            None => specs.push(spec.clone()),
        }
        Ok(BackendId(spec.name))
    })
}

/// The spec registered under `name` (canonical name or alias), if any.
pub fn lookup(name: &str) -> Option<BackendSpec> {
    with_registry(|specs| {
        specs.iter().find(|spec| spec.name == name || spec.aliases.contains(&name)).cloned()
    })
}

/// A snapshot of every registered backend, **sorted by canonical name** so
/// listings, CI matrices and docs are deterministic regardless of
/// registration timing.
pub fn all() -> Vec<BackendSpec> {
    with_registry(|specs| {
        let mut specs = specs.clone();
        specs.sort_by_key(|spec| spec.name);
        specs
    })
}

/// The canonical ids of every registered backend, sorted by name (same
/// determinism contract as [`all`]).
pub fn all_ids() -> Vec<BackendId> {
    with_registry(|specs| {
        let mut ids: Vec<BackendId> = specs.iter().map(|spec| BackendId(spec.name)).collect();
        ids.sort();
        ids
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn builtins_are_registered_and_parse_by_name_and_alias() {
        for (id, alias) in [
            (TL2_BLOCKING, "tl2"),
            (OBSTRUCTION_FREE, "ofree"),
            (PRAM_LOCAL, "pram"),
            (MVCC, "si"),
            (SHARD_LOCK, "shardlock"),
        ] {
            assert_eq!(BackendId::from_str(id.name()).unwrap(), id);
            assert_eq!(BackendId::from_str(alias).unwrap(), id);
            assert_eq!(id.spec().name, id.name());
            assert_eq!(id.to_string(), id.name());
        }
        assert!(all_ids().len() >= 5);
    }

    #[test]
    fn registry_iteration_is_sorted_by_name() {
        let ids = all_ids();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "all_ids must be deterministic (sorted by name)");
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        let mut sorted_names = names.clone();
        sorted_names.sort_unstable();
        assert_eq!(names, sorted_names, "all() must be deterministic (sorted by name)");
        // Both new built-ins declare honest triangle positions.
        assert_eq!(MVCC.spec().triangle.sacrificed, Axis::Consistency);
        assert_eq!(SHARD_LOCK.spec().triangle.sacrificed, Axis::Parallelism);
    }

    #[test]
    fn unknown_names_error_with_the_known_list() {
        let err = BackendId::from_str("does-not-exist").unwrap_err();
        assert_eq!(err.requested, "does-not-exist");
        assert!(err.known.contains(&"tl2-blocking"));
        let msg = err.to_string();
        assert!(msg.contains("unknown backend"), "{msg}");
        assert!(msg.contains("tl2-blocking"), "{msg}");
    }

    #[test]
    fn backend_kind_converts_to_ids() {
        assert_eq!(BackendId::from(BackendKind::Tl2Blocking), TL2_BLOCKING);
        assert_eq!(BackendKind::ObstructionFree.id(), OBSTRUCTION_FREE);
        assert_eq!(BackendKind::PramLocal.id(), PRAM_LOCAL);
    }

    #[test]
    fn registration_is_idempotent_but_name_squatting_is_rejected() {
        fn ctor() -> Arc<dyn Backend> {
            Arc::new(crate::ofree::OFreeBackend::new())
        }
        let spec = BackendSpec {
            name: "test-registry-backend",
            aliases: &["trb"],
            summary: "test",
            triangle: Triangle {
                sacrificed: Axis::Liveness,
                parallelism: "-",
                consistency: "-",
                liveness: "-",
            },
            constructor: ctor,
        };
        let id = register(spec.clone()).unwrap();
        assert_eq!(id.name(), "test-registry-backend");
        // Same spec again: fine.
        assert_eq!(register(spec.clone()).unwrap(), id);
        // A spec revision (new alias) from the same backend takes effect.
        let revised = BackendSpec { aliases: &["trb", "trb2"], ..spec.clone() };
        assert_eq!(register(revised).unwrap(), id);
        assert_eq!("trb2".parse::<BackendId>().unwrap(), id);
        // A different backend claiming the same name (different ctor): rejected.
        fn other_ctor() -> Arc<dyn Backend> {
            Arc::new(crate::tl2::Tl2Backend::new())
        }
        let squatter = BackendSpec { constructor: other_ctor, ..spec.clone() };
        assert!(matches!(register(squatter), Err(RegistryError::NameTaken { .. })));
        // Claiming a built-in alias is also rejected.
        let alias_squatter = BackendSpec { name: "fresh-name", aliases: &["tl2"], ..spec };
        assert!(matches!(register(alias_squatter), Err(RegistryError::NameTaken { .. })));
        // The registered backend constructs and runs.
        let stm = crate::Stm::new(id);
        let x = stm.alloc(4i64);
        assert_eq!(stm.read_now(x), 4);
    }
}
