//! `TVar<T>` — a typed handle over one or more STM words.
//!
//! A `TVar<T>` remembers the first [`VarId`] of the `T::WORDS` consecutive
//! words its value occupies, plus the type `T` at compile time.  It is `Copy`
//! and trivially cheap: the typed front-end is a zero-cost veneer over the
//! word STM — no wrapper allocation, no runtime type tags, and reads/writes
//! stream words straight through [`crate::TxnValue::encode`]/`decode`.
//!
//! Allocate with [`crate::Stm::alloc`], access with [`crate::Txn::read`] /
//! [`crate::Txn::write`].  Handles are only meaningful on the [`crate::Stm`]
//! instance that allocated them (same rule the raw [`VarId`]s always had).

use crate::backend::VarId;
use crate::value::TxnValue;
use std::fmt;
use std::marker::PhantomData;

/// A typed transactional variable: `T::WORDS` consecutive words starting at
/// [`TVar::base`].
pub struct TVar<T: TxnValue> {
    base: VarId,
    _type: PhantomData<fn(T) -> T>,
}

impl<T: TxnValue> TVar<T> {
    /// Wrap the base word of an already-allocated `T::WORDS`-word block.
    ///
    /// Normally produced by [`crate::Stm::alloc`]; exposed so adapters that
    /// interoperate with the raw word API can rebuild typed handles.
    pub fn from_base(base: VarId) -> Self {
        TVar { base, _type: PhantomData }
    }

    /// The first word of this variable.
    pub fn base(self) -> VarId {
        self.base
    }

    /// How many consecutive words the variable occupies.
    pub fn words(self) -> usize {
        T::WORDS
    }

    /// The `k`-th word of this variable (`k < T::WORDS`).
    pub(crate) fn word(self, k: usize) -> VarId {
        debug_assert!(k < T::WORDS);
        VarId(self.base.0 + k)
    }
}

// Manual impls: `derive` would bound them on `T: Copy` etc., but the handle
// is always copyable regardless of `T`.
impl<T: TxnValue> Clone for TVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: TxnValue> Copy for TVar<T> {}

impl<T: TxnValue> PartialEq for TVar<T> {
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base
    }
}

impl<T: TxnValue> Eq for TVar<T> {}

impl<T: TxnValue> PartialOrd for TVar<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: TxnValue> Ord for TVar<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.base.cmp(&other.base)
    }
}

impl<T: TxnValue> std::hash::Hash for TVar<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.base.hash(state);
    }
}

impl<T: TxnValue> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TVar<{}>({})", std::any::type_name::<T>(), self.base)
    }
}

impl<T: TxnValue> fmt::Display for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.base, f)
    }
}

/// A single-word `i64` handle converts to its raw word id (migration aid for
/// code still on the deprecated [`VarId`] API).
impl From<TVar<i64>> for VarId {
    fn from(var: TVar<i64>) -> VarId {
        var.base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_eq_ord_hash_and_display() {
        let a: TVar<i64> = TVar::from_base(VarId(3));
        let b = a; // Copy
        assert_eq!(a, b);
        assert!(a <= b);
        let c: TVar<i64> = TVar::from_base(VarId(4));
        assert!(a < c);
        assert_eq!(a.to_string(), "v3");
        assert_eq!(format!("{a:?}"), "TVar<i64>(v3)");
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn words_follow_the_base() {
        let pair: TVar<(i64, i64)> = TVar::from_base(VarId(10));
        assert_eq!(pair.words(), 2);
        assert_eq!(pair.word(0), VarId(10));
        assert_eq!(pair.word(1), VarId(11));
        assert_eq!(VarId::from(TVar::<i64>::from_base(VarId(7))), VarId(7));
    }
}
