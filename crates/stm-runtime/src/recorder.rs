//! The history-recording hook: how an auditor observes what the runtime does.
//!
//! A [`Recorder`] receives one [`CommitRecord`] per *successful* commit, on the
//! committing thread, after the backend has made the transaction's effects
//! durable.  The record exposes exactly the information a dbcop-style
//! consistency audit needs to reconstruct the `(T, so, wr)` structure of the
//! run:
//!
//! * the transaction's **external read set** — for every variable the
//!   transaction read *before* writing it, the value observed by the first such
//!   read (reads satisfied from the transaction's own write set are internal
//!   and deliberately excluded);
//! * the transaction's **write set** — the values installed at commit;
//! * the calling thread's **session id**, if the thread registered one with
//!   [`set_session`] (the auditor falls back to per-thread identity otherwise).
//!
//! Session order then falls out of per-thread sequence numbers (each thread's
//! records arrive in its program order), and write-read edges are recovered
//! from unique write values — the recorded analogue of unique write versions.
//!
//! # Cost when disabled
//!
//! `Stm` stores the recorder as `Option<Arc<dyn Recorder>>`.  An instance built
//! with [`crate::Stm::new`] carries `None`, so the only cost on the
//! uninstrumented hot path is one never-taken branch per commit — no
//! allocation, no atomics, no extra cache traffic.

use crate::backend::VarId;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Everything a recorder learns about one committed transaction.
#[derive(Debug, Clone, Copy)]
pub struct CommitRecord<'a> {
    /// The session id the committing thread registered via [`set_session`],
    /// if any.
    pub session: Option<usize>,
    /// Externally-read variables and the value the first read observed.
    pub reads: &'a BTreeMap<VarId, i64>,
    /// Variables written and the values installed at commit.
    pub writes: &'a BTreeMap<VarId, i64>,
}

/// A sink for commit records (implemented by `tm-audit`'s history recorder).
pub trait Recorder: Send + Sync {
    /// Called once per successful commit, on the committing thread, after the
    /// backend's commit completed.
    fn on_commit(&self, record: CommitRecord<'_>);
}

thread_local! {
    static SESSION: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Register the calling thread's audit session id (its index in the recorded
/// history).  Worker threads of an audited run call this once at startup.
pub fn set_session(id: usize) {
    SESSION.with(|s| s.set(Some(id)));
}

/// Clear the calling thread's audit session id.
pub fn clear_session() {
    SESSION.with(|s| s.set(None));
}

/// The session id the calling thread registered, if any.
pub fn current_session() -> Option<usize> {
    SESSION.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_registration_is_per_thread() {
        assert_eq!(current_session(), None);
        set_session(3);
        assert_eq!(current_session(), Some(3));
        std::thread::spawn(|| {
            assert_eq!(current_session(), None);
            set_session(9);
            assert_eq!(current_session(), Some(9));
        })
        .join()
        .unwrap();
        assert_eq!(current_session(), Some(3));
        clear_session();
        assert_eq!(current_session(), None);
    }
}
