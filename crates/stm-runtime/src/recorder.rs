//! The history-recording hook: how an auditor observes what the runtime does.
//!
//! A [`Recorder`] receives one [`CommitRecord`] per *successful* commit, on the
//! committing thread, after the backend has made the transaction's effects
//! durable.  The record exposes exactly the information a dbcop-style
//! consistency audit needs to reconstruct the `(T, so, wr)` structure of the
//! run:
//!
//! * the transaction's **external read set** — for every variable the
//!   transaction read *before* writing it, the value observed by the first such
//!   read (reads satisfied from the transaction's own write set are internal
//!   and deliberately excluded);
//! * the transaction's **write set** — the values installed at commit;
//! * the calling thread's **session id**, if the thread registered one with
//!   [`set_session`] (the auditor falls back to per-thread identity otherwise).
//!
//! Session order then falls out of per-thread sequence numbers (each thread's
//! records arrive in its program order), and write-read edges are recovered
//! from unique write values — the recorded analogue of unique write versions.
//!
//! # Cost when disabled
//!
//! `Stm` stores the recorder as `Option<Arc<dyn Recorder>>`.  An instance built
//! with [`crate::Stm::new`] carries `None`, so the only cost on the
//! uninstrumented hot path is one never-taken branch per commit — no
//! allocation, no atomics, no extra cache traffic.
//!
//! # Streaming
//!
//! For runs too large to buffer whole, [`StreamingRecorder`] is a sharded,
//! per-session buffered channel: each commit lands in its session's private
//! shard (one uncontended mutex push plus one relaxed fetch-add for the
//! global recording index), and a full shard flushes one [`CommitBatch`] to
//! a bounded queue that a consumer thread — the streaming auditor — drains
//! *while the workload is still running*.  The queue applies backpressure
//! (producers wait when the consumer falls `capacity` batches behind) so
//! end-to-end memory stays bounded no matter how long the run is.

use crate::backend::VarId;
use crate::txn::VarMap;
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything a recorder learns about one committed transaction.
#[derive(Debug, Clone, Copy)]
pub struct CommitRecord<'a> {
    /// The session id the committing thread registered via [`set_session`],
    /// if any.
    pub session: Option<usize>,
    /// Externally-read variables and the value the first read observed.
    pub reads: &'a VarMap<i64>,
    /// Variables written and the values installed at commit.
    pub writes: &'a VarMap<i64>,
}

/// A sink for commit records (implemented by `tm-audit`'s history recorder).
pub trait Recorder: Send + Sync {
    /// Called once per successful commit, on the committing thread, after the
    /// backend's commit completed.
    fn on_commit(&self, record: CommitRecord<'_>);
}

/// Number of hash bands variables are grouped into for audit routing.
///
/// A sharded audit pipeline with `K` partitions owns `ROUTE_BANDS / K`
/// contiguous runs of bands (so any `K ≤ 64` divides the variable space
/// without re-hashing), and the [`OwnedCommitRecord::footprint`] bitmask —
/// one bit per band — lets a router decide which partitions a record touches
/// without re-walking its read/write sets.
pub const ROUTE_BANDS: usize = 64;

/// The routing band a variable belongs to.
///
/// Word indices are pair-aligned before hashing, so the two words of a
/// two-word object (`TVar<(i64, i64)>` and friends, allocated contiguously
/// by `Backend::alloc_words`) share a band *when the object starts at an
/// even word index* — which holds whenever multi-word objects are allocated
/// before (or without) odd runs of single words, as every built-in scenario
/// does, but is not enforced by the allocators: an odd allocation base
/// shifts the pairing and such an object's transactions then straddle bands
/// (still audited soundly, via the escalation lane, just less cheaply).
/// The pair index is mixed (splitmix64 finalizer) so adjacent pairs still
/// spread across bands.
pub fn route_band(var_index: usize) -> usize {
    let mut z = ((var_index >> 1) as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % ROUTE_BANDS as u64) as usize
}

/// The band bitmask of a variable set: bit [`route_band`]`(v)` is set for
/// every `v` in `vars`.
pub fn footprint_of(vars: impl IntoIterator<Item = usize>) -> u64 {
    vars.into_iter().fold(0u64, |mask, v| mask | 1u64 << route_band(v))
}

/// One committed transaction, owned (detached from the committing thread's
/// transaction data) so it can cross the channel to the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedCommitRecord {
    /// The committing thread's registered session.
    pub session: usize,
    /// The commit's position within its session (session order).
    pub seq: u64,
    /// Global recording index (a cheap commit-order hint, never correctness).
    pub hint: u64,
    /// Externally-read variables and the value the first read observed.
    pub reads: Vec<(VarId, i64)>,
    /// Variables written and the values installed at commit.
    pub writes: Vec<(VarId, i64)>,
    /// Band bitmask of every variable touched (reads ∪ writes), precomputed
    /// on the committing thread so a sharded audit router never re-walks the
    /// sets: bit [`route_band`]`(v)` is set for each touched `v`.
    pub footprint: u64,
}

/// A flushed shard: one session's consecutive commits, in session order.
#[derive(Debug, Clone)]
pub struct CommitBatch {
    /// The session every record in this batch belongs to.
    pub session: usize,
    /// The records, in session (commit) order.
    pub records: Vec<OwnedCommitRecord>,
}

#[derive(Default)]
struct QueueState {
    batches: VecDeque<CommitBatch>,
    closed: bool,
}

/// The bounded hand-off between committing threads and the audit consumer.
struct BatchQueue {
    state: Mutex<QueueState>,
    /// Signalled when a batch arrives or the queue closes.
    ready: Condvar,
    /// Signalled when the consumer makes room or the queue closes.
    space: Condvar,
    capacity: usize,
}

impl BatchQueue {
    fn push(&self, batch: CommitBatch) {
        let mut state = self.state.lock();
        while state.batches.len() >= self.capacity && !state.closed {
            self.space.wait(&mut state);
        }
        if state.closed {
            return; // the run is over; late flushes are dropped
        }
        state.batches.push_back(batch);
        self.ready.notify_one();
    }

    fn recv(&self) -> Option<CommitBatch> {
        let mut state = self.state.lock();
        loop {
            if let Some(batch) = state.batches.pop_front() {
                self.space.notify_one();
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            self.ready.wait(&mut state);
        }
    }

    fn try_recv(&self) -> Option<CommitBatch> {
        let mut state = self.state.lock();
        let batch = state.batches.pop_front();
        if batch.is_some() {
            self.space.notify_one();
        }
        batch
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

struct ShardBuf {
    records: Vec<OwnedCommitRecord>,
    next_seq: u64,
}

/// The streaming [`Recorder`]: sharded per-session buffers feeding a bounded
/// batch queue (see the module docs).  Committing threads **must** register
/// their session with [`set_session`] — streamed audits have no safe way to
/// auto-assign sessions after the fact.
pub struct StreamingRecorder {
    shards: Vec<Mutex<ShardBuf>>,
    queue: Arc<BatchQueue>,
    batch_size: usize,
    next_hint: AtomicU64,
}

impl StreamingRecorder {
    /// Batches a bounded queue may hold before producers wait.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 1_024;

    /// A recorder for `n_sessions` sessions flushing every `batch_size`
    /// commits, with the default queue capacity.
    pub fn new(n_sessions: usize, batch_size: usize) -> Self {
        Self::with_capacity(n_sessions, batch_size, Self::DEFAULT_QUEUE_CAPACITY)
    }

    /// A recorder with an explicit queue capacity (in batches).
    pub fn with_capacity(n_sessions: usize, batch_size: usize, capacity: usize) -> Self {
        StreamingRecorder {
            shards: (0..n_sessions)
                .map(|_| Mutex::new(ShardBuf { records: Vec::new(), next_seq: 0 }))
                .collect(),
            queue: Arc::new(BatchQueue {
                state: Mutex::new(QueueState::default()),
                ready: Condvar::new(),
                space: Condvar::new(),
                capacity: capacity.max(1),
            }),
            batch_size: batch_size.max(1),
            next_hint: AtomicU64::new(0),
        }
    }

    /// A handle the audit thread drains batches from.
    pub fn consumer(&self) -> StreamConsumer {
        StreamConsumer { queue: Arc::clone(&self.queue) }
    }

    /// Commits recorded so far.
    pub fn recorded(&self) -> u64 {
        self.next_hint.load(Ordering::Relaxed)
    }

    /// Flush every shard's partial buffer and close the queue: the consumer's
    /// [`StreamConsumer::recv`] drains what remains, then returns `None`.
    /// Call after the worker threads have joined.
    pub fn finish(&self) {
        for (session, shard) in self.shards.iter().enumerate() {
            let records = std::mem::take(&mut shard.lock().records);
            if !records.is_empty() {
                self.queue.push(CommitBatch { session, records });
            }
        }
        self.queue.close();
    }
}

impl Recorder for StreamingRecorder {
    fn on_commit(&self, record: CommitRecord<'_>) {
        let session = record
            .session
            .expect("StreamingRecorder requires every worker to call recorder::set_session");
        assert!(
            session < self.shards.len(),
            "session {session} out of range (streaming recorder has {})",
            self.shards.len()
        );
        let hint = self.next_hint.fetch_add(1, Ordering::Relaxed);
        let footprint =
            footprint_of(record.reads.keys().chain(record.writes.keys()).map(|v| v.index()));
        let flushed = {
            let mut shard = self.shards[session].lock();
            let seq = shard.next_seq;
            shard.next_seq += 1;
            shard.records.push(OwnedCommitRecord {
                session,
                seq,
                hint,
                reads: record.reads.iter().map(|(v, x)| (*v, *x)).collect(),
                writes: record.writes.iter().map(|(v, x)| (*v, *x)).collect(),
                footprint,
            });
            if shard.records.len() >= self.batch_size {
                Some(std::mem::take(&mut shard.records))
            } else {
                None
            }
        };
        if let Some(records) = flushed {
            // Off the shard lock: the queue may apply backpressure.
            self.queue.push(CommitBatch { session, records });
        }
    }
}

/// Fans every commit record out to two recorders — the export hook that
/// lets a secondary observer (a metrics counter, an on-disk spill, a second
/// auditor) ride along with the primary recorder without touching the
/// runtime's single `Option<Arc<dyn Recorder>>` slot.
///
/// Both recorders see the same [`CommitRecord`], on the committing thread,
/// in the same per-thread order.  **Caveat**: recorders that assign global
/// recording indices (hints) each count independently, so under concurrency
/// the two sides may number the same commit differently.  Hint-exact history
/// capture therefore tees *after* the merge stage instead — see
/// `tm_audit::TeeSink` — and this recorder-level hook is for observers that
/// only need the per-commit payload.
pub struct TeeRecorder {
    first: Arc<dyn Recorder>,
    second: Arc<dyn Recorder>,
}

impl TeeRecorder {
    /// Fan commits out to `first` then `second` (synchronously, in that
    /// order, on the committing thread).
    pub fn new(first: Arc<dyn Recorder>, second: Arc<dyn Recorder>) -> Self {
        TeeRecorder { first, second }
    }
}

impl Recorder for TeeRecorder {
    fn on_commit(&self, record: CommitRecord<'_>) {
        self.first.on_commit(record);
        self.second.on_commit(record);
    }
}

/// The consuming end of a [`StreamingRecorder`].
pub struct StreamConsumer {
    queue: Arc<BatchQueue>,
}

impl StreamConsumer {
    /// Block until a batch is available; `None` once the recorder finished
    /// and the queue drained.
    pub fn recv(&self) -> Option<CommitBatch> {
        self.queue.recv()
    }

    /// A batch if one is immediately available.
    pub fn try_recv(&self) -> Option<CommitBatch> {
        self.queue.try_recv()
    }
}

impl Drop for StreamConsumer {
    /// A dying consumer (including one unwinding from a panic) closes the
    /// queue, so producers blocked on backpressure wake up and late commits
    /// are dropped instead of wedging the workload forever.
    fn drop(&mut self) {
        self.queue.close();
    }
}

thread_local! {
    static SESSION: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Register the calling thread's audit session id (its index in the recorded
/// history).  Worker threads of an audited run call this once at startup.
pub fn set_session(id: usize) {
    SESSION.with(|s| s.set(Some(id)));
}

/// Clear the calling thread's audit session id.
pub fn clear_session() {
    SESSION.with(|s| s.set(None));
}

/// The session id the calling thread registered, if any.
pub fn current_session() -> Option<usize> {
    SESSION.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_recorder_batches_per_session_in_order() {
        let rec = Arc::new(StreamingRecorder::new(2, 3));
        let consumer = rec.consumer();
        let stm = crate::Stm::with_recorder(crate::BackendKind::Tl2Blocking, Arc::clone(&rec) as _);
        let x = stm.alloc(0);
        std::thread::scope(|scope| {
            let stm = &stm;
            for s in 0..2usize {
                scope.spawn(move || {
                    set_session(s);
                    for i in 0..7i64 {
                        let value = ((s as i64 + 1) << 32) + i;
                        stm.run(|tx| {
                            let _ = tx.read(x)?;
                            tx.write(x, value)
                        });
                    }
                    clear_session();
                });
            }
        });
        assert_eq!(rec.recorded(), 14);
        rec.finish();
        let mut per_session: Vec<Vec<OwnedCommitRecord>> = vec![Vec::new(); 2];
        let mut batches = 0;
        while let Some(batch) = consumer.recv() {
            batches += 1;
            assert!(batch.records.len() <= 3, "batch size respected");
            assert!(batch.records.iter().all(|r| r.session == batch.session));
            per_session[batch.session].extend(batch.records);
        }
        // 7 commits per session at batch size 3: two full batches plus the
        // final flush each.
        assert!(batches >= 6, "batches: {batches}");
        for (s, records) in per_session.iter().enumerate() {
            assert_eq!(records.len(), 7, "session {s}");
            // Session order is preserved end to end.
            assert!(records.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
            assert!(records.windows(2).all(|w| w[0].hint < w[1].hint));
            assert!(records.iter().all(|r| r.writes.len() == 1));
        }
        // Hints are globally unique.
        let mut hints: Vec<u64> = per_session.iter().flatten().map(|r| r.hint).collect();
        hints.sort_unstable();
        assert_eq!(hints, (0..14).collect::<Vec<_>>());
        // Queue is drained and closed.
        assert!(consumer.try_recv().is_none());
        assert!(consumer.recv().is_none());
    }

    #[test]
    fn streaming_recorder_drains_concurrently_with_the_workload() {
        let rec = Arc::new(StreamingRecorder::with_capacity(1, 2, 4));
        let consumer = rec.consumer();
        let stm =
            crate::Stm::with_recorder(crate::BackendKind::ObstructionFree, Arc::clone(&rec) as _);
        let x = stm.alloc(0);
        let drained = std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let mut total = 0usize;
                while let Some(batch) = consumer.recv() {
                    total += batch.records.len();
                }
                total
            });
            let stm = &stm;
            scope
                .spawn(move || {
                    set_session(0);
                    for i in 1..=50i64 {
                        stm.run(|tx| tx.write(x, i));
                    }
                    clear_session();
                })
                .join()
                .unwrap();
            rec.finish();
            handle.join().unwrap()
        });
        assert_eq!(drained, 50);
    }

    #[test]
    #[should_panic(expected = "requires every worker to call recorder::set_session")]
    fn streaming_recorder_rejects_unregistered_threads() {
        let rec = Arc::new(StreamingRecorder::new(1, 8));
        let stm = crate::Stm::with_recorder(crate::BackendKind::Tl2Blocking, rec as _);
        let x = stm.alloc(0);
        clear_session();
        stm.run(|tx| tx.write(x, 1));
    }

    #[test]
    fn route_bands_pair_align_and_spread() {
        // The two words of a pair-aligned object share a band…
        for pair in 0..256usize {
            assert_eq!(route_band(2 * pair), route_band(2 * pair + 1), "pair {pair}");
        }
        // …and the bands of distinct pairs actually spread (no degenerate
        // constant hash): 64 vars must hit well over a handful of bands.
        let distinct: std::collections::HashSet<usize> = (0..64).map(route_band).collect();
        assert!(distinct.len() > 8, "only {} distinct bands", distinct.len());
        for v in 0..1024 {
            assert!(route_band(v) < ROUTE_BANDS);
        }
    }

    #[test]
    fn footprints_are_band_bitmasks() {
        assert_eq!(footprint_of([]), 0);
        let mask = footprint_of([0usize, 1, 17]);
        assert_ne!(mask, 0);
        assert_eq!(mask & (1 << route_band(0)), 1 << route_band(0));
        assert_eq!(mask & (1 << route_band(17)), 1 << route_band(17));
        // Pair-aligned words contribute the same bit.
        assert_eq!(footprint_of([6usize]), footprint_of([7usize]));
    }

    #[test]
    fn streamed_records_carry_their_footprint() {
        let rec = Arc::new(StreamingRecorder::new(1, 64));
        let consumer = rec.consumer();
        let stm = crate::Stm::with_recorder(crate::BackendKind::Tl2Blocking, Arc::clone(&rec) as _);
        let x = stm.alloc(0);
        let y = stm.alloc(0);
        set_session(0);
        stm.run(|tx| {
            let _ = tx.read(x)?;
            tx.write(y, 5)
        });
        clear_session();
        rec.finish();
        let batch = consumer.recv().expect("one batch");
        let record = &batch.records[0];
        let expected =
            footprint_of(record.reads.iter().chain(&record.writes).map(|&(v, _)| v.index()));
        assert_eq!(record.footprint, expected);
        assert_ne!(record.footprint, 0);
    }

    #[test]
    fn tee_recorder_delivers_every_commit_to_both_sides() {
        struct Counting {
            commits: AtomicU64,
            writes: AtomicU64,
        }
        impl Recorder for Counting {
            fn on_commit(&self, record: CommitRecord<'_>) {
                self.commits.fetch_add(1, Ordering::Relaxed);
                self.writes.fetch_add(record.writes.len() as u64, Ordering::Relaxed);
            }
        }
        let a = Arc::new(Counting { commits: AtomicU64::new(0), writes: AtomicU64::new(0) });
        let b = Arc::new(Counting { commits: AtomicU64::new(0), writes: AtomicU64::new(0) });
        let tee = Arc::new(TeeRecorder::new(Arc::clone(&a) as _, Arc::clone(&b) as _));
        let stm = crate::Stm::with_recorder(crate::BackendKind::Tl2Blocking, tee as _);
        let x = stm.alloc(0);
        let y = stm.alloc(0);
        for i in 1..=9i64 {
            stm.run(|tx| {
                tx.write(x, i)?;
                tx.write(y, -i)
            });
        }
        for side in [&a, &b] {
            assert_eq!(side.commits.load(Ordering::Relaxed), 9);
            assert_eq!(side.writes.load(Ordering::Relaxed), 18);
        }
    }

    #[test]
    fn session_registration_is_per_thread() {
        assert_eq!(current_session(), None);
        set_session(3);
        assert_eq!(current_session(), Some(3));
        std::thread::spawn(|| {
            assert_eq!(current_session(), None);
            set_session(9);
            assert_eq!(current_session(), Some(9));
        })
        .join()
        .unwrap();
        assert_eq!(current_session(), Some(3));
        clear_session();
        assert_eq!(current_session(), None);
    }
}
