//! Lightweight, thread-safe statistics counters, including the
//! per-transaction attempt histogram that makes retry policies measurable
//! and the per-reason abort taxonomy that makes each backend's sacrifice
//! visible.
//!
//! The counters are **striped**: each thread writes its own cache-line-padded
//! stripe (assigned round-robin on first use) and readers sum across stripes.
//! Counts stay exact — a read sums whatever every stripe holds at that moment
//! — but the hot path never bounces a shared cache line between committing
//! threads, which used to serialize disjoint transactions through the stats
//! block even with telemetry off.

use crate::txn::AbortReason;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// log2-spaced attempt buckets: bucket 0 holds exactly 1 attempt, bucket
/// `i >= 1` holds `[2^(i-1) + 1, 2^i]` attempts.  33 buckets cover the whole
/// `u32` attempt range, so p99/mean no longer flatten at a "17+" overflow
/// bucket the way the old 17 linear buckets did.
const ATTEMPT_BUCKETS: usize = 33;

/// How many cache-line-padded counter stripes a [`StmStats`] carries (power
/// of two so the stripe pick is a mask).
const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's stable stripe index (assigned round-robin on first
/// use, shared by every striped structure in the crate).
pub(crate) fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|s| {
        let mut id = s.get();
        if id == usize::MAX {
            id = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
            s.set(id);
        }
        id
    })
}

fn attempt_bucket(attempts: u32) -> usize {
    // 1 → 0, 2 → 1, 3..4 → 2, 5..8 → 3, …, (2^31+1).. → 32.
    32 - (attempts.max(1) - 1).leading_zeros() as usize
}

/// Lower bound (in attempts) of bucket `i` — the value quantiles and the
/// mean report for that bucket, so tails keep their "at least" semantics.
fn attempt_bucket_lower_bound(i: usize) -> u32 {
    match i {
        0 => 1,
        _ => (1u32 << (i - 1)) + 1,
    }
}

/// One thread-stripe of counters, padded out to its own cache lines so
/// commits on different threads never write the same line.
#[repr(align(128))]
#[derive(Debug)]
struct StatStripe {
    commits: AtomicU64,
    aborts: AtomicU64,
    retries: AtomicU64,
    abort_reasons: [AtomicU64; AbortReason::ALL.len()],
    attempts: [AtomicU64; ATTEMPT_BUCKETS],
}

impl Default for StatStripe {
    fn default() -> Self {
        StatStripe {
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            abort_reasons: std::array::from_fn(|_| AtomicU64::new(0)),
            attempts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Commit / abort / retry counters, the per-reason abort taxonomy, and the
/// attempts-per-transaction histogram for one [`crate::Stm`] instance.
#[derive(Debug)]
pub struct StmStats {
    stripes: Box<[StatStripe; STRIPES]>,
}

impl Default for StmStats {
    fn default() -> Self {
        StmStats { stripes: Box::new(std::array::from_fn(|_| StatStripe::default())) }
    }
}

impl StmStats {
    #[inline]
    fn local(&self) -> &StatStripe {
        &self.stripes[thread_stripe() & (STRIPES - 1)]
    }

    fn sum(&self, field: impl Fn(&StatStripe) -> &AtomicU64) -> u64 {
        self.stripes.iter().map(|s| field(s).load(Ordering::Relaxed)).sum()
    }

    /// Record a successful commit.
    pub fn record_commit(&self) {
        self.local().commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an aborted attempt and why it aborted.
    pub fn record_abort(&self, reason: AbortReason) {
        let stripe = self.local();
        stripe.aborts.fetch_add(1, Ordering::Relaxed);
        stripe.abort_reasons[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Move one recorded abort from one reason to another (the front-end
    /// reclassifies a bounded-retry transaction's final abort as
    /// [`AbortReason::Giveup`] once the policy stops it).  The total abort
    /// count is untouched, so `sum(reasons) == aborts()` holds at rest.
    /// Must run on the thread that recorded the abort (the retry loop does),
    /// so the decrement lands on the stripe that holds the count.
    pub fn reclassify_abort(&self, from: AbortReason, to: AbortReason) {
        if from != to {
            let stripe = self.local();
            stripe.abort_reasons[from.index()].fetch_sub(1, Ordering::Relaxed);
            stripe.abort_reasons[to.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a retry (an abort followed by another attempt).
    pub fn record_retry(&self) {
        self.local().retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record how many attempts one transaction took to finish (commit or
    /// give up).  `attempts` is 1-based; 0 is treated as 1.
    pub fn record_attempts(&self, attempts: u32) {
        self.local().attempts[attempt_bucket(attempts)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of commits so far.
    pub fn commits(&self) -> u64 {
        self.sum(|s| &s.commits)
    }

    /// Number of aborted attempts so far.
    pub fn aborts(&self) -> u64 {
        self.sum(|s| &s.aborts)
    }

    /// Aborts recorded for one specific reason.
    pub fn aborts_by(&self, reason: AbortReason) -> u64 {
        self.sum(|s| &s.abort_reasons[reason.index()])
    }

    /// The whole abort taxonomy, in [`AbortReason::ALL`] order.
    pub fn abort_reason_counts(&self) -> [(AbortReason, u64); AbortReason::ALL.len()] {
        std::array::from_fn(|i| (AbortReason::ALL[i], self.aborts_by(AbortReason::ALL[i])))
    }

    /// Number of retries so far.
    pub fn retries(&self) -> u64 {
        self.sum(|s| &s.retries)
    }

    /// Abort ratio: aborts / (commits + aborts); 0.0 when nothing ran.
    pub fn abort_ratio(&self) -> f64 {
        let c = self.commits() as f64;
        let a = self.aborts() as f64;
        if c + a == 0.0 {
            0.0
        } else {
            a / (c + a)
        }
    }

    /// A snapshot of the attempts histogram: `snapshot[i]` transactions
    /// finished within bucket `i`'s log2-spaced attempt range (bucket 0 is
    /// exactly 1 attempt, bucket `i >= 1` spans `2^(i-1)+1 ..= 2^i`).
    pub fn attempts_histogram(&self) -> [u64; ATTEMPT_BUCKETS] {
        std::array::from_fn(|i| self.sum(|s| &s.attempts[i]))
    }

    /// Transactions with a recorded attempt count.
    pub fn attempts_recorded(&self) -> u64 {
        self.attempts_histogram().iter().sum()
    }

    /// The `q`-quantile (0.0..=1.0) of attempts-per-transaction, or 0 when
    /// nothing was recorded.  Buckets report their lower bound, so extreme
    /// tails read "at least".
    pub fn attempts_quantile(&self, q: f64) -> u32 {
        let histogram = self.attempts_histogram();
        let total: u64 = histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return attempt_bucket_lower_bound(i);
            }
        }
        attempt_bucket_lower_bound(ATTEMPT_BUCKETS - 1)
    }

    /// Median attempts per transaction.
    pub fn attempts_p50(&self) -> u32 {
        self.attempts_quantile(0.50)
    }

    /// 99th-percentile attempts per transaction.
    pub fn attempts_p99(&self) -> u32 {
        self.attempts_quantile(0.99)
    }

    /// Mean attempts per transaction (each bucket counted at its lower
    /// bound), or 0.0 when nothing was recorded.
    pub fn attempts_mean(&self) -> f64 {
        let histogram = self.attempts_histogram();
        let total: u64 = histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = histogram
            .iter()
            .enumerate()
            .map(|(i, count)| attempt_bucket_lower_bound(i) as u64 * count)
            .sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_ratio_is_computed() {
        let s = StmStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
        s.record_commit();
        s.record_commit();
        s.record_abort(AbortReason::LockConflict);
        s.record_retry();
        assert_eq!(s.commits(), 2);
        assert_eq!(s.aborts(), 1);
        assert_eq!(s.retries(), 1);
        assert!((s.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn abort_reason_counts_sum_to_total_aborts() {
        let s = StmStats::default();
        s.record_abort(AbortReason::ReadValidation);
        s.record_abort(AbortReason::ReadValidation);
        s.record_abort(AbortReason::LockConflict);
        s.record_abort(AbortReason::FirstCommitterWins);
        s.record_abort(AbortReason::Explicit);
        assert_eq!(s.aborts_by(AbortReason::ReadValidation), 2);
        let sum: u64 = s.abort_reason_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(sum, s.aborts());
        // Reclassification moves one abort without changing the total.
        s.reclassify_abort(AbortReason::Explicit, AbortReason::Giveup);
        assert_eq!(s.aborts_by(AbortReason::Explicit), 0);
        assert_eq!(s.aborts_by(AbortReason::Giveup), 1);
        let sum: u64 = s.abort_reason_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(sum, s.aborts());
    }

    #[test]
    fn striped_counters_stay_exact_across_threads() {
        let s = std::sync::Arc::new(StmStats::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        s.record_commit();
                        s.record_abort(AbortReason::LockConflict);
                        s.record_retry();
                        s.record_attempts(2);
                    }
                });
            }
        });
        assert_eq!(s.commits(), 8_000);
        assert_eq!(s.aborts(), 8_000);
        assert_eq!(s.aborts_by(AbortReason::LockConflict), 8_000);
        assert_eq!(s.retries(), 8_000);
        assert_eq!(s.attempts_recorded(), 8_000);
        assert_eq!(s.attempts_p50(), 2);
    }

    #[test]
    fn attempt_buckets_are_log2_spaced() {
        assert_eq!(attempt_bucket(1), 0);
        assert_eq!(attempt_bucket(2), 1);
        assert_eq!(attempt_bucket(3), 2);
        assert_eq!(attempt_bucket(4), 2);
        assert_eq!(attempt_bucket(5), 3);
        assert_eq!(attempt_bucket(8), 3);
        assert_eq!(attempt_bucket(9), 4);
        assert_eq!(attempt_bucket(u32::MAX), 32);
        for i in 1..ATTEMPT_BUCKETS - 1 {
            let lo = attempt_bucket_lower_bound(i);
            assert_eq!(attempt_bucket(lo), i);
            assert_eq!(attempt_bucket(1 << i), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn attempt_quantiles_come_from_the_histogram() {
        let s = StmStats::default();
        assert_eq!(s.attempts_p50(), 0);
        assert_eq!(s.attempts_mean(), 0.0);
        // 90 one-shot transactions, 9 that took 3 attempts, 1 that took 40.
        for _ in 0..90 {
            s.record_attempts(1);
        }
        for _ in 0..9 {
            s.record_attempts(3);
        }
        s.record_attempts(40);
        assert_eq!(s.attempts_recorded(), 100);
        assert_eq!(s.attempts_p50(), 1);
        assert_eq!(s.attempts_p99(), 3, "3 lands in [3,4], whose lower bound is 3");
        // 40 lands in [33,64]: the tail reads "at least 33" instead of the
        // old linear histogram's flattened "17+".
        assert_eq!(s.attempts_quantile(1.0), 33);
        let mean = s.attempts_mean();
        assert!((mean - (90.0 + 27.0 + 33.0) / 100.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn attempt_zero_counts_as_one() {
        let s = StmStats::default();
        s.record_attempts(0);
        assert_eq!(s.attempts_p50(), 1);
    }
}
