//! Lightweight, thread-safe statistics counters, including the
//! per-transaction attempt histogram that makes retry policies measurable.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exact buckets for 1..=16 attempts; the last bucket collects 17+.
const ATTEMPT_BUCKETS: usize = 17;

/// Commit / abort / retry counters plus the attempts-per-transaction
/// histogram for one [`crate::Stm`] instance.
#[derive(Debug)]
pub struct StmStats {
    commits: AtomicU64,
    aborts: AtomicU64,
    retries: AtomicU64,
    /// `attempts[i]` counts transactions that finished (committed or gave
    /// up) after exactly `i + 1` attempts; the final bucket is an overflow
    /// bucket for `>= ATTEMPT_BUCKETS` attempts.
    attempts: [AtomicU64; ATTEMPT_BUCKETS],
}

impl Default for StmStats {
    fn default() -> Self {
        StmStats {
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            attempts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StmStats {
    /// Record a successful commit.
    pub fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an aborted attempt.
    pub fn record_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a retry (an abort followed by another attempt).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record how many attempts one transaction took to finish (commit or
    /// give up).  `attempts` is 1-based; 0 is treated as 1.
    pub fn record_attempts(&self, attempts: u32) {
        let bucket = (attempts.max(1) as usize - 1).min(ATTEMPT_BUCKETS - 1);
        self.attempts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of commits so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Number of aborted attempts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Number of retries so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Abort ratio: aborts / (commits + aborts); 0.0 when nothing ran.
    pub fn abort_ratio(&self) -> f64 {
        let c = self.commits() as f64;
        let a = self.aborts() as f64;
        if c + a == 0.0 {
            0.0
        } else {
            a / (c + a)
        }
    }

    /// A snapshot of the attempts histogram: `snapshot[i]` transactions took
    /// `i + 1` attempts (last bucket: 17 or more).
    pub fn attempts_histogram(&self) -> [u64; ATTEMPT_BUCKETS] {
        std::array::from_fn(|i| self.attempts[i].load(Ordering::Relaxed))
    }

    /// Transactions with a recorded attempt count.
    pub fn attempts_recorded(&self) -> u64 {
        self.attempts_histogram().iter().sum()
    }

    /// The `q`-quantile (0.0..=1.0) of attempts-per-transaction, or 0 when
    /// nothing was recorded.  The overflow bucket reports its lower bound
    /// (17), so extreme tails read "at least".
    pub fn attempts_quantile(&self, q: f64) -> u32 {
        let histogram = self.attempts_histogram();
        let total: u64 = histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return i as u32 + 1;
            }
        }
        ATTEMPT_BUCKETS as u32
    }

    /// Median attempts per transaction.
    pub fn attempts_p50(&self) -> u32 {
        self.attempts_quantile(0.50)
    }

    /// 99th-percentile attempts per transaction.
    pub fn attempts_p99(&self) -> u32 {
        self.attempts_quantile(0.99)
    }

    /// Mean attempts per transaction (overflow bucket counted at its lower
    /// bound), or 0.0 when nothing was recorded.
    pub fn attempts_mean(&self) -> f64 {
        let histogram = self.attempts_histogram();
        let total: u64 = histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 =
            histogram.iter().enumerate().map(|(i, count)| (i as u64 + 1) * count).sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_ratio_is_computed() {
        let s = StmStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
        s.record_commit();
        s.record_commit();
        s.record_abort();
        s.record_retry();
        assert_eq!(s.commits(), 2);
        assert_eq!(s.aborts(), 1);
        assert_eq!(s.retries(), 1);
        assert!((s.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn attempt_quantiles_come_from_the_histogram() {
        let s = StmStats::default();
        assert_eq!(s.attempts_p50(), 0);
        assert_eq!(s.attempts_mean(), 0.0);
        // 90 one-shot transactions, 9 that took 3 attempts, 1 that took 40.
        for _ in 0..90 {
            s.record_attempts(1);
        }
        for _ in 0..9 {
            s.record_attempts(3);
        }
        s.record_attempts(40);
        assert_eq!(s.attempts_recorded(), 100);
        assert_eq!(s.attempts_p50(), 1);
        assert_eq!(s.attempts_p99(), 3);
        assert_eq!(s.attempts_quantile(1.0), 17, "overflow bucket reports its lower bound");
        let mean = s.attempts_mean();
        assert!((mean - (90.0 + 27.0 + 17.0) / 100.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn attempt_zero_counts_as_one() {
        let s = StmStats::default();
        s.record_attempts(0);
        assert_eq!(s.attempts_p50(), 1);
    }
}
