//! Lightweight, thread-safe statistics counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Commit / abort / retry counters for one [`crate::Stm`] instance.
#[derive(Debug, Default)]
pub struct StmStats {
    commits: AtomicU64,
    aborts: AtomicU64,
    retries: AtomicU64,
}

impl StmStats {
    /// Record a successful commit.
    pub fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an aborted attempt.
    pub fn record_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a retry (an abort followed by another attempt).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of commits so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Number of aborted attempts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Number of retries so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Abort ratio: aborts / (commits + aborts); 0.0 when nothing ran.
    pub fn abort_ratio(&self) -> f64 {
        let c = self.commits() as f64;
        let a = self.aborts() as f64;
        if c + a == 0.0 {
            0.0
        } else {
            a / (c + a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_ratio_is_computed() {
        let s = StmStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
        s.record_commit();
        s.record_commit();
        s.record_abort();
        s.record_retry();
        assert_eq!(s.commits(), 2);
        assert_eq!(s.aborts(), 1);
        assert_eq!(s.retries(), 1);
        assert!((s.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }
}
