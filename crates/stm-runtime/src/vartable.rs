//! Lock-free growable storage for per-variable backend metadata.
//!
//! Every backend used to keep its per-variable state in a
//! `RwLock<Vec<…>>`, which put one shared reader-writer lock on **every
//! transactional read and write**: even transactions over disjoint
//! variables met in that lock's cache line, and an allocation write-locked
//! the whole table against the data path.  `VarTable` removes that rendezvous:
//!
//! * **Reads are lock-free.**  Storage is a ladder of chunks whose sizes
//!   double ([`FIRST_CHUNK`], then `2×`, `4×`, …).  A chunk, once created,
//!   is never moved or freed, so `get` is two shifts, one `OnceLock` load
//!   and an index — no lock, no `Arc` clone, no contention with allocators.
//! * **Allocation only synchronizes allocators with allocators.**  A short
//!   mutex serializes growth (bump the length, materialize at most one new
//!   chunk); the data path never observes it.  This is the sharded
//!   [`crate::Backend::alloc_words`] story: allocating a variable no longer
//!   funnels every concurrent reader through a writer lock.
//!
//! Slots must be `Default` and carry interior mutability (atomics, mutexes)
//! — exactly what backend metadata already looks like.  Initial values are
//! written through [`VarTable::alloc_init`] *before* the new length is
//! published, so a reader holding a valid index never sees an
//! uninitialized slot.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Capacity of chunk 0; chunk `c` holds `FIRST_CHUNK << c` slots.
const FIRST_CHUNK: usize = 1 << 10;

/// Enough doubling chunks to cover any realistic variable count
/// (`FIRST_CHUNK * (2^CHUNKS - 1)` slots ≈ 4×10¹² at 33 chunks).
const CHUNKS: usize = 33;

/// Which chunk a slot index lives in, and its offset within that chunk.
fn locate(index: usize) -> (usize, usize) {
    let slot = index + FIRST_CHUNK;
    let chunk =
        (usize::BITS - 1 - slot.leading_zeros()) as usize - FIRST_CHUNK.trailing_zeros() as usize;
    (chunk, slot - (FIRST_CHUNK << chunk))
}

/// Append-only, chunked, lock-free-to-read storage (see the module docs).
pub struct VarTable<T> {
    chunks: [OnceLock<Box<[T]>>; CHUNKS],
    len: AtomicUsize,
    grow: Mutex<()>,
}

impl<T: Default> VarTable<T> {
    /// An empty table.  No chunk is materialized until the first `alloc`.
    pub fn new() -> Self {
        VarTable {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            grow: Mutex::new(()),
        }
    }

    /// Slots allocated so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if nothing was allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot at `index` (which must have been allocated).  Lock-free:
    /// two shifts, one atomic load, one bounds-checked index.
    pub fn get(&self, index: usize) -> &T {
        let (chunk, offset) = locate(index);
        &self.chunks[chunk].get().expect("VarTable index out of allocated range")[offset]
    }

    /// Allocate `n` consecutive slots and return the base index.  `init` is
    /// called once per new slot (in order, with its table-relative offset
    /// `0..n`) **before** the new length is published, so concurrent readers
    /// holding valid indices never observe a default-initialized slot.
    pub fn alloc_init(&self, n: usize, init: impl Fn(usize, &T)) -> usize {
        let _guard = self.grow.lock();
        let base = self.len.load(Ordering::Relaxed);
        if n == 0 {
            return base;
        }
        let (last_chunk, _) = locate(base + n - 1);
        for chunk in 0..=last_chunk {
            self.chunks[chunk]
                .get_or_init(|| (0..FIRST_CHUNK << chunk).map(|_| T::default()).collect());
        }
        for k in 0..n {
            let (chunk, offset) = locate(base + k);
            init(k, &self.chunks[chunk].get().expect("just initialized")[offset]);
        }
        self.len.store(base + n, Ordering::Release);
        base
    }

    /// Allocate `n` default-initialized consecutive slots.
    pub fn alloc(&self, n: usize) -> usize {
        self.alloc_init(n, |_, _| {})
    }
}

impl<T: Default> Default for VarTable<T> {
    fn default() -> Self {
        VarTable::new()
    }
}

impl<T> std::fmt::Debug for VarTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VarTable").field("len", &self.len.load(Ordering::Relaxed)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn locate_covers_the_chunk_ladder_without_gaps() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(FIRST_CHUNK - 1), (0, FIRST_CHUNK - 1));
        assert_eq!(locate(FIRST_CHUNK), (1, 0));
        assert_eq!(locate(3 * FIRST_CHUNK - 1), (1, 2 * FIRST_CHUNK - 1));
        assert_eq!(locate(3 * FIRST_CHUNK), (2, 0));
        // Every index maps into its chunk's bounds and consecutive indices
        // never skip a slot.
        let mut prev = locate(0);
        for i in 1..100_000 {
            let (c, off) = locate(i);
            assert!(off < FIRST_CHUNK << c, "index {i}");
            assert!(
                (c == prev.0 && off == prev.1 + 1) || (c == prev.0 + 1 && off == 0),
                "index {i} jumped from {prev:?} to {:?}",
                (c, off)
            );
            prev = (c, off);
        }
    }

    #[test]
    fn alloc_init_publishes_initialized_slots() {
        let t: VarTable<AtomicI64> = VarTable::new();
        assert!(t.is_empty());
        let base = t.alloc_init(3, |k, slot| slot.store(10 + k as i64, Ordering::Relaxed));
        assert_eq!(base, 0);
        assert_eq!(t.len(), 3);
        for k in 0..3 {
            assert_eq!(t.get(base + k).load(Ordering::Relaxed), 10 + k as i64);
        }
        let base2 = t.alloc(2);
        assert_eq!(base2, 3);
        assert_eq!(t.get(4).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn growth_crosses_chunk_boundaries_and_references_stay_valid() {
        let t: VarTable<AtomicI64> = VarTable::new();
        let base =
            t.alloc_init(FIRST_CHUNK + 10, |k, slot| slot.store(k as i64, Ordering::Relaxed));
        // Hold a reference into chunk 0 across further growth.
        let early = t.get(base + 7);
        let more =
            t.alloc_init(5 * FIRST_CHUNK, |k, slot| slot.store(-(k as i64), Ordering::Relaxed));
        assert_eq!(early.load(Ordering::Relaxed), 7, "chunk 0 never moved");
        assert_eq!(t.get(base + FIRST_CHUNK + 3).load(Ordering::Relaxed), (FIRST_CHUNK + 3) as i64);
        assert_eq!(
            t.get(more + 5 * FIRST_CHUNK - 1).load(Ordering::Relaxed),
            -((5 * FIRST_CHUNK - 1) as i64)
        );
        assert_eq!(t.len(), 6 * FIRST_CHUNK + 10);
    }

    #[test]
    fn concurrent_allocation_hands_out_disjoint_ranges() {
        let t = std::sync::Arc::new(VarTable::<AtomicI64>::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..200 {
                        let base =
                            t.alloc_init(3, |k, slot| slot.store(1 + k as i64, Ordering::Relaxed));
                        // Readers of our freshly returned range see our values.
                        for k in 0..3 {
                            assert_eq!(t.get(base + k).load(Ordering::Relaxed), 1 + k as i64);
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 200 * 3);
        for i in 0..t.len() {
            assert_ne!(t.get(i).load(Ordering::Relaxed), 0, "every slot was initialized");
        }
    }
}
