//! The backend interface shared by every STM implementation.

use crate::txn::TxnData;
use std::fmt;

/// Identifier of a transactional variable within one [`crate::Stm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl VarId {
    /// Numeric index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The three built-in backends, as a convenience enum.
///
/// Historically this closed enum *was* the backend space; the runtime now
/// resolves backends through the open [`crate::registry`], and `BackendKind`
/// survives as ergonomic sugar for the built-ins: anything accepting
/// `impl Into<crate::BackendId>` takes a `BackendKind` directly.  Backends
/// added through [`crate::registry::register`] have no `BackendKind` — use
/// their [`crate::BackendId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// TL2-style commit-time locking with a global version clock; commits **spin** on
    /// busy locks (blocking liveness, serializable, per-var metadata only).
    Tl2Blocking,
    /// Obstruction-free variant: same versioned-lock layout, but instead of spinning
    /// it aborts on any lock it cannot take immediately (never blocks).
    ObstructionFree,
    /// Thread-local replicas, no shared memory at all: wait-free, strict DAP
    /// (vacuously) and only PRAM-consistent.
    PramLocal,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Tl2Blocking => f.write_str("tl2-blocking"),
            BackendKind::ObstructionFree => f.write_str("obstruction-free"),
            BackendKind::PramLocal => f.write_str("pram-local"),
        }
    }
}

/// The operations a backend must provide.  `TxnData` carries the per-transaction
/// bookkeeping (read set, write set, snapshot timestamp) that all backends share.
pub trait Backend: Send + Sync {
    /// Allocate `initials.len()` **consecutive** variables in one atomic step
    /// (returns the first id).  Multi-word [`crate::TVar`]s rely on the ids
    /// being consecutive even when threads allocate concurrently.
    fn alloc_words(&self, initials: &[i64]) -> VarId;

    /// Allocate a single variable with an initial value.
    fn alloc(&self, initial: i64) -> VarId {
        self.alloc_words(&[initial])
    }
    /// Initialize per-transaction state.
    fn begin(&self, data: &mut TxnData);
    /// Transactional read.
    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, crate::StmError>;
    /// Transactional write (buffered until commit on most backends).
    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), crate::StmError>;
    /// Attempt to commit.
    fn commit(&self, data: &mut TxnData) -> Result<(), crate::StmError>;
    /// Release any resources after an abort (locks, ownership records).
    fn cleanup(&self, data: &mut TxnData);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_ids_are_ordered_and_displayable() {
        assert!(VarId(0) < VarId(1));
        assert_eq!(VarId(3).index(), 3);
        assert_eq!(VarId(3).to_string(), "v3");
    }

    #[test]
    fn backend_kinds_have_distinct_names() {
        let names: Vec<String> =
            [BackendKind::Tl2Blocking, BackendKind::ObstructionFree, BackendKind::PramLocal]
                .iter()
                .map(|k| k.to_string())
                .collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"tl2-blocking".to_string()));
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}
