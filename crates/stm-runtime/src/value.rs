//! `TxnValue` — how typed values map onto the word STM.
//!
//! The STM core moves `i64` *words*; the typed front-end ([`crate::TVar`])
//! lets user code traffic in richer types by encoding each value into a fixed
//! number of consecutive words.  A [`TxnValue`] says how many words a type
//! occupies ([`TxnValue::WORDS`]) and how to stream it word-by-word in and out
//! of a transaction — the streaming shape (`&mut dyn FnMut`) keeps the hot
//! path allocation-free even for multi-word values.
//!
//! Provided implementations: `i64`, `i32`, `u32`, `u64`, `bool`, fixed-size
//! arrays `[i64; N]`, and the tuple forms `(A, B)` / `(A, B, C)` of any
//! implementors.  A multi-word value is read and written **atomically**: its
//! words live in consecutive [`crate::VarId`] slots allocated in one
//! [`crate::Backend::alloc_words`] call, and every transactional access
//! touches all of them inside the same transaction.

use crate::txn::StmError;

/// A word-by-word sink for encoded values (each call stores one word).
pub type WordSink<'a> = dyn FnMut(i64) -> Result<(), StmError> + 'a;

/// A word-by-word source for decoded values (each call reads one word).
pub type WordSource<'a> = dyn FnMut() -> Result<i64, StmError> + 'a;

/// A value that can live in transactional variables.
///
/// `encode` must emit exactly [`TxnValue::WORDS`] words and `decode` must
/// consume exactly as many, in the same order — the front-end maps the k-th
/// word to the k-th consecutive [`crate::VarId`] of the variable.
pub trait TxnValue: Sized + 'static {
    /// How many STM words this type occupies.
    const WORDS: usize;

    /// Emit the value as `WORDS` words, in order.
    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError>;

    /// Rebuild the value from `WORDS` words, in the order `encode` emitted
    /// them.
    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError>;
}

impl TxnValue for i64 {
    const WORDS: usize = 1;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        put(*self)
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        next()
    }
}

impl TxnValue for i32 {
    const WORDS: usize = 1;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        put(i64::from(*self))
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        Ok(next()? as i32)
    }
}

impl TxnValue for u32 {
    const WORDS: usize = 1;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        put(i64::from(*self))
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        Ok(next()? as u32)
    }
}

impl TxnValue for u64 {
    const WORDS: usize = 1;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        // Bit-cast: the full u64 range round-trips through the i64 word.
        put(*self as i64)
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        Ok(next()? as u64)
    }
}

impl TxnValue for bool {
    const WORDS: usize = 1;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        put(i64::from(*self))
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        Ok(next()? != 0)
    }
}

impl<const N: usize> TxnValue for [i64; N] {
    const WORDS: usize = N;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        for word in self {
            put(*word)?;
        }
        Ok(())
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        let mut out = [0i64; N];
        for slot in &mut out {
            *slot = next()?;
        }
        Ok(out)
    }
}

impl<A: TxnValue, B: TxnValue> TxnValue for (A, B) {
    const WORDS: usize = A::WORDS + B::WORDS;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        self.0.encode(put)?;
        self.1.encode(put)
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        Ok((A::decode(next)?, B::decode(next)?))
    }
}

impl<A: TxnValue, B: TxnValue, C: TxnValue> TxnValue for (A, B, C) {
    const WORDS: usize = A::WORDS + B::WORDS + C::WORDS;

    fn encode(&self, put: &mut WordSink<'_>) -> Result<(), StmError> {
        self.0.encode(put)?;
        self.1.encode(put)?;
        self.2.encode(put)
    }

    fn decode(next: &mut WordSource<'_>) -> Result<Self, StmError> {
        Ok((A::decode(next)?, B::decode(next)?, C::decode(next)?))
    }
}

/// Encode a value into a fresh word vector (used on cold paths like
/// allocation, where a heap buffer is fine).
pub(crate) fn encode_to_words<T: TxnValue>(value: &T) -> Vec<i64> {
    let mut words = Vec::with_capacity(T::WORDS);
    value
        .encode(&mut |w| {
            words.push(w);
            Ok(())
        })
        .expect("infallible sink");
    debug_assert_eq!(words.len(), T::WORDS, "encode must emit exactly WORDS words");
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: TxnValue + PartialEq + std::fmt::Debug + Clone>(value: T) {
        let words = encode_to_words(&value);
        assert_eq!(words.len(), T::WORDS);
        let mut it = words.iter();
        let mut next = move || Ok(*it.next().expect("decode consumed too many words"));
        let back = T::decode(&mut next).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0i64);
        round_trip(i64::MIN);
        round_trip(i64::MAX);
        round_trip(-7i32);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        round_trip([1i64, -2, 3]);
        round_trip([0i64; 0]);
        round_trip((5i64, true));
        round_trip((1i32, 2u64, [9i64, 8]));
        assert_eq!(<(i32, u64, [i64; 2])>::WORDS, 4);
    }

    #[test]
    fn word_counts_compose() {
        assert_eq!(<[i64; 5]>::WORDS, 5);
        assert_eq!(<(i64, i64)>::WORDS, 2);
        assert_eq!(<((i64, bool), u32)>::WORDS, 3);
    }
}
