//! Pluggable retry policies: what happens *between* transaction attempts.
//!
//! The old front-end baked one loop into [`crate::Stm::run`]: retry
//! immediately, forever.  That is one point in a design space the PCL
//! trade-offs care about — under contention, *when* you retry decides how
//! much work the abort storm burns.  A [`RetryPolicy`] makes the loop a
//! strategy:
//!
//! * [`ImmediateRetry`] — the historical behaviour (one spin hint, retry);
//! * [`BoundedRetry`] — give up after N attempts (surfaced by
//!   [`crate::Stm::run_policy`] as an error instead of looping forever);
//! * [`ExponentialBackoff`] — spin-wait `base · 2^attempt` (capped both
//!   per-attempt and in total) before retrying, the classic
//!   contention-management answer;
//! * [`Karma`] — priority by cumulative work: the loser that has burned the
//!   most attempts proceeds immediately, everyone else waits proportionally
//!   to their priority deficit (ties broken by ticket so exactly one
//!   contender is "top" at a time — the symmetric-livelock breaker);
//! * [`Timestamp`] — oldest-transaction-wins: the transaction holding the
//!   oldest live ticket retries immediately, younger ones pace themselves
//!   by their distance from it;
//! * [`Adaptive`] — exponential backoff whose gain is steered live by the
//!   attempts-p99 of the [`crate::StmStats`] attempt histogram: near-zero
//!   pacing on quiet workloads, deep backoff once the tail grows.
//!
//! Contention-aware policies see more than the attempt counter: the
//! front-end threads a [`RetryCtx`] (abort reason, live stats, per-
//! transaction [`PolicyScratch`]) through [`RetryPolicy::decide_ctx`], and
//! tells the policy when a transaction finally commits via
//! [`RetryPolicy::on_commit`] so priority state can be released.  Policies
//! are measurable, not just selectable: the per-transaction attempt
//! histogram in [`crate::StmStats`] (p50/p99 attempts) shows what a policy
//! actually did to the retry distribution.

use crate::stats::StmStats;
use crate::txn::AbortReason;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// What to do after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry right away.
    RetryNow,
    /// Spin-wait this many iterations, then retry.
    SpinThen(u32),
    /// Stop retrying ([`crate::Stm::run_policy`] returns the abort;
    /// [`crate::Stm::run`], which promises a result, ignores this and
    /// retries anyway).
    GiveUp,
}

/// Per-transaction scratch state a policy may use across the attempts of
/// **one** `run` call.  The front-end zeroes it per transaction and hands it
/// back to the policy on every [`RetryPolicy::decide_ctx`] and the final
/// [`RetryPolicy::on_commit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyScratch {
    /// Total spin iterations this transaction has been told to burn so far
    /// (maintained by [`ExponentialBackoff`] to cap total, not just
    /// per-attempt, spin time).
    pub spun: u64,
    /// A policy-assigned ticket (0 = none drawn yet).  [`Karma`] and
    /// [`Timestamp`] draw one on the first failure and release it on commit.
    pub ticket: u64,
}

/// Everything a contention-aware policy can consult after a failed attempt.
pub struct RetryCtx<'a> {
    /// Failed attempts so far in this transaction (first call sees `1`).
    pub attempt: u32,
    /// Why the last attempt aborted.
    pub reason: AbortReason,
    /// Live counters for the whole `Stm` instance (the attempts histogram
    /// drives [`Adaptive`]).
    pub stats: &'a StmStats,
    /// This transaction's scratch state.
    pub scratch: &'a mut PolicyScratch,
}

/// A retry strategy consulted once per failed attempt.
///
/// `attempt` is the number of attempts that have failed so far (so the first
/// call receives `1`).  Implementations must be cheap and thread-safe: the
/// same policy instance is consulted concurrently from every worker thread.
pub trait RetryPolicy: Send + Sync {
    /// Short machine-readable name (appears in reports).
    fn name(&self) -> &'static str;

    /// Decide what to do after the `attempt`-th consecutive failure.
    fn decide(&self, attempt: u32) -> RetryDecision;

    /// Context-aware variant the front-end actually calls; the default
    /// delegates to [`RetryPolicy::decide`] so attempt-count-only policies
    /// need not implement it.
    fn decide_ctx(&self, ctx: RetryCtx<'_>) -> RetryDecision {
        self.decide(ctx.attempt)
    }

    /// Called once when the transaction finally commits, so policies can
    /// release any shared priority state tied to `scratch`.
    fn on_commit(&self, _scratch: &mut PolicyScratch) {}
}

impl fmt::Debug for dyn RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RetryPolicy({})", self.name())
    }
}

/// Retry immediately, forever (the historical default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImmediateRetry;

impl RetryPolicy for ImmediateRetry {
    fn name(&self) -> &'static str {
        "immediate"
    }

    fn decide(&self, _attempt: u32) -> RetryDecision {
        RetryDecision::RetryNow
    }
}

/// Retry immediately up to `max_attempts` total attempts, then give up.
#[derive(Debug, Clone, Copy)]
pub struct BoundedRetry {
    /// Total attempts allowed (must be ≥ 1).
    pub max_attempts: u32,
}

impl RetryPolicy for BoundedRetry {
    fn name(&self) -> &'static str {
        "bounded"
    }

    fn decide(&self, attempt: u32) -> RetryDecision {
        if attempt >= self.max_attempts.max(1) {
            RetryDecision::GiveUp
        } else {
            RetryDecision::RetryNow
        }
    }
}

/// Exponential backoff: spin `base_spins · 2^(attempt-1)` iterations (capped
/// at `max_spins` per attempt and `max_total_spins` across the whole
/// transaction) before each retry.  Once the total budget is spent, further
/// retries are immediate — backoff stops adding latency instead of spinning
/// unboundedly on a long conflict chain.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialBackoff {
    /// Spin iterations before the second attempt.
    pub base_spins: u32,
    /// Upper bound on any single attempt's spin count.
    pub max_spins: u32,
    /// Upper bound on the transaction's *cumulative* spin count.
    pub max_total_spins: u64,
}

impl Default for ExponentialBackoff {
    fn default() -> Self {
        ExponentialBackoff { base_spins: 32, max_spins: 16_384, max_total_spins: 1 << 20 }
    }
}

impl ExponentialBackoff {
    fn per_attempt_spins(&self, attempt: u32) -> u32 {
        let exponent = attempt.saturating_sub(1).min(24);
        self.base_spins.saturating_mul(1u32 << exponent).min(self.max_spins.max(1))
    }
}

impl RetryPolicy for ExponentialBackoff {
    fn name(&self) -> &'static str {
        "backoff"
    }

    fn decide(&self, attempt: u32) -> RetryDecision {
        RetryDecision::SpinThen(self.per_attempt_spins(attempt))
    }

    fn decide_ctx(&self, ctx: RetryCtx<'_>) -> RetryDecision {
        let remaining = self.max_total_spins.saturating_sub(ctx.scratch.spun);
        let spins = (self.per_attempt_spins(ctx.attempt) as u64).min(remaining) as u32;
        if spins == 0 {
            return RetryDecision::RetryNow;
        }
        ctx.scratch.spun += spins as u64;
        RetryDecision::SpinThen(spins)
    }
}

/// How many bits of a [`Karma`] priority word hold the ticket tie-breaker.
const KARMA_TICKET_BITS: u32 = 24;
const KARMA_TICKET_MASK: u64 = (1 << KARMA_TICKET_BITS) - 1;

/// Karma: priority by cumulative work.  Each transaction's priority is the
/// number of attempts it has already burned; the highest-priority contender
/// retries immediately while everyone else spins proportionally to their
/// priority *deficit*.  Ties (equal attempts — the symmetric-livelock case)
/// are broken by a per-transaction ticket folded into the low bits of the
/// priority word, so exactly one contender is "top" at any moment.
#[derive(Debug)]
pub struct Karma {
    /// Spin iterations per point of priority deficit.
    pub base_spins: u32,
    /// Highest encoded priority currently contending (0 = nobody waiting).
    top: AtomicU64,
    /// Ticket source for the tie-breaker.
    next_ticket: AtomicU64,
}

impl Karma {
    /// A karma manager pacing losers by `base_spins` per deficit point.
    pub fn new(base_spins: u32) -> Self {
        Karma { base_spins, top: AtomicU64::new(0), next_ticket: AtomicU64::new(0) }
    }

    fn encode(attempts: u32, ticket: u64) -> u64 {
        // Earlier tickets (smaller values) must win ties, so fold the ticket
        // in complemented: same attempts ⇒ the older transaction encodes
        // higher and fetch_max keeps it on top.
        ((attempts as u64) << KARMA_TICKET_BITS)
            | (KARMA_TICKET_MASK - (ticket & KARMA_TICKET_MASK))
    }
}

impl Default for Karma {
    fn default() -> Self {
        Karma::new(64)
    }
}

impl RetryPolicy for Karma {
    fn name(&self) -> &'static str {
        "karma"
    }

    fn decide(&self, _attempt: u32) -> RetryDecision {
        RetryDecision::RetryNow
    }

    fn decide_ctx(&self, ctx: RetryCtx<'_>) -> RetryDecision {
        if ctx.scratch.ticket == 0 {
            ctx.scratch.ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed) + 1;
        }
        let mine = Karma::encode(ctx.attempt, ctx.scratch.ticket);
        let top = self.top.fetch_max(mine, Ordering::Relaxed).max(mine);
        if mine >= top {
            return RetryDecision::RetryNow;
        }
        let deficit = ((top >> KARMA_TICKET_BITS) as u32).saturating_sub(ctx.attempt).max(1);
        RetryDecision::SpinThen(self.base_spins.saturating_mul(deficit.min(1024)))
    }

    fn on_commit(&self, scratch: &mut PolicyScratch) {
        if scratch.ticket != 0 {
            // Clear the leaderboard; surviving contenders re-assert their
            // priority on their next decide via fetch_max.
            self.top.store(0, Ordering::Relaxed);
            scratch.ticket = 0;
        }
    }
}

/// Timestamp (oldest-transaction-wins): transactions draw monotonically
/// increasing tickets on their first failure; the holder of the oldest live
/// ticket retries immediately, younger transactions spin proportionally to
/// their distance behind it.  A committing transaction releases its ticket,
/// promoting the next-oldest.
#[derive(Debug)]
pub struct Timestamp {
    /// Spin iterations per ticket of age distance.
    pub base_spins: u32,
    next_ticket: AtomicU64,
    /// Oldest live (not yet committed) ticket; `u64::MAX` when none.
    oldest: AtomicU64,
}

impl Timestamp {
    /// An oldest-wins manager pacing younger transactions by `base_spins`
    /// per ticket of distance.
    pub fn new(base_spins: u32) -> Self {
        Timestamp { base_spins, next_ticket: AtomicU64::new(0), oldest: AtomicU64::new(u64::MAX) }
    }
}

impl Default for Timestamp {
    fn default() -> Self {
        Timestamp::new(64)
    }
}

impl RetryPolicy for Timestamp {
    fn name(&self) -> &'static str {
        "timestamp"
    }

    fn decide(&self, _attempt: u32) -> RetryDecision {
        RetryDecision::RetryNow
    }

    fn decide_ctx(&self, ctx: RetryCtx<'_>) -> RetryDecision {
        if ctx.scratch.ticket == 0 {
            ctx.scratch.ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed) + 1;
        }
        let oldest =
            self.oldest.fetch_min(ctx.scratch.ticket, Ordering::Relaxed).min(ctx.scratch.ticket);
        if ctx.scratch.ticket <= oldest {
            return RetryDecision::RetryNow;
        }
        let distance = (ctx.scratch.ticket - oldest).min(1024) as u32;
        RetryDecision::SpinThen(self.base_spins.saturating_mul(distance))
    }

    fn on_commit(&self, scratch: &mut PolicyScratch) {
        if scratch.ticket != 0 {
            // Release the ticket if we were the oldest; the next-oldest
            // re-installs itself via fetch_min on its next decide.
            let _ = self.oldest.compare_exchange(
                scratch.ticket,
                u64::MAX,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            scratch.ticket = 0;
        }
    }
}

/// How many `decide_ctx` calls [`Adaptive`] waits between gain recomputes.
const ADAPTIVE_REFRESH: u32 = 256;

/// Adaptive backoff: exponential pacing whose depth (gain) is steered live
/// by the attempts-p99 of the shared [`StmStats`] histogram.  A quiet
/// workload (p99 ≤ 1) pays nothing — every decision is an immediate retry —
/// while a growing retry tail deepens the backoff curve toward
/// `base · 2^gain`, capped at `max_spins`.
#[derive(Debug)]
pub struct Adaptive {
    /// Spin iterations before the second attempt once backoff engages.
    pub base_spins: u32,
    /// Upper bound on any single attempt's spin count.
    pub max_spins: u32,
    gain: AtomicU32,
    decides: AtomicU32,
}

impl Adaptive {
    /// An adaptive manager with the given pacing bounds.
    pub fn new(base_spins: u32, max_spins: u32) -> Self {
        Adaptive { base_spins, max_spins, gain: AtomicU32::new(0), decides: AtomicU32::new(0) }
    }

    /// The current backoff gain (exposed for tests and reports).
    pub fn gain(&self) -> u32 {
        self.gain.load(Ordering::Relaxed)
    }

    fn refresh_gain(&self, stats: &StmStats) {
        // gain = bit-length(p99) − 1: p99 ≤ 1 ⇒ 0 (no backoff),
        // p99 ∈ [2,3] ⇒ 1, [4,7] ⇒ 2, …, clamped so spins stay sane.
        let p99 = stats.attempts_p99();
        let gain = (32 - p99.leading_zeros()).saturating_sub(1).min(12);
        self.gain.store(gain, Ordering::Relaxed);
    }
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive::new(32, 16_384)
    }
}

impl RetryPolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn decide(&self, attempt: u32) -> RetryDecision {
        let gain = self.gain.load(Ordering::Relaxed);
        if gain == 0 {
            return RetryDecision::RetryNow;
        }
        let exponent = attempt.saturating_sub(1).min(gain);
        let spins =
            self.base_spins.saturating_mul(1u32 << exponent.min(24)).min(self.max_spins.max(1));
        RetryDecision::SpinThen(spins)
    }

    fn decide_ctx(&self, ctx: RetryCtx<'_>) -> RetryDecision {
        let n = self.decides.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(ADAPTIVE_REFRESH) {
            self.refresh_gain(ctx.stats);
        }
        self.decide(ctx.attempt)
    }
}

/// How many pure spin iterations [`spin_wait`] burns before ceding the
/// timeslice.  Short waits (one cache-miss-ish) never reach it.
const SPIN_YIELD_EVERY: u32 = 1 << 10;

/// Wait `spins` iterations (what [`RetryDecision::SpinThen`] asks for).
///
/// Short waits busy-spin; long waits yield to the scheduler every
/// [`SPIN_YIELD_EVERY`] iterations.  The yield is what makes pacing
/// policies *win throughput* — not just bound attempts — when threads
/// outnumber cores: the conflicting transaction (often a preempted
/// encounter-lock holder) can only finish on a core a paced waiter gives
/// up, and a pure busy-spin burns the exact timeslice it needs.
pub fn spin_wait(spins: u32) {
    let mut remaining = spins;
    while remaining > 0 {
        let chunk = remaining.min(SPIN_YIELD_EVERY);
        for _ in 0..chunk {
            std::hint::spin_loop();
        }
        remaining -= chunk;
        if remaining > 0 {
            std::thread::yield_now();
        }
    }
}

/// Every registered policy spelling, exercised by the round-trip test and
/// listed in CLI help (`NAME` or `NAME:args` forms).
pub const POLICY_SPECS: &[(&str, &str)] = &[
    ("immediate", "immediate"),
    ("bounded:3", "bounded"),
    ("backoff", "backoff"),
    ("backoff:4:64", "backoff"),
    ("backoff:4:64:4096", "backoff"),
    ("karma", "karma"),
    ("karma:16", "karma"),
    ("timestamp", "timestamp"),
    ("timestamp:16", "timestamp"),
    ("adaptive", "adaptive"),
    ("adaptive:8:512", "adaptive"),
];

/// Parse a policy description shared by the CLI, benches and examples:
/// `immediate`, `bounded:N` (N total attempts), `backoff[:BASE:MAX[:TOTAL]]`,
/// `karma[:BASE]`, `timestamp[:BASE]` or `adaptive[:BASE:MAX]`.
pub fn parse_policy(s: &str) -> Result<Arc<dyn RetryPolicy>, String> {
    fn num<T: std::str::FromStr>(what: &str, raw: &str) -> Result<T, String>
    where
        T::Err: fmt::Display,
    {
        raw.parse().map_err(|e| format!("{what}: {e}"))
    }
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    match (head, args.as_slice()) {
        ("immediate", []) => Ok(Arc::new(ImmediateRetry)),
        ("bounded", [n]) => {
            let max_attempts: u32 = num("bounded:N needs an attempt count", n)?;
            if max_attempts == 0 {
                return Err("bounded:N needs N ≥ 1".into());
            }
            Ok(Arc::new(BoundedRetry { max_attempts }))
        }
        ("backoff", []) => Ok(Arc::new(ExponentialBackoff::default())),
        ("backoff", [base, max]) => Ok(Arc::new(ExponentialBackoff {
            base_spins: num("backoff base", base)?,
            max_spins: num("backoff max", max)?,
            ..ExponentialBackoff::default()
        })),
        ("backoff", [base, max, total]) => Ok(Arc::new(ExponentialBackoff {
            base_spins: num("backoff base", base)?,
            max_spins: num("backoff max", max)?,
            max_total_spins: num("backoff total", total)?,
        })),
        ("karma", []) => Ok(Arc::new(Karma::default())),
        ("karma", [base]) => Ok(Arc::new(Karma::new(num("karma base", base)?))),
        ("timestamp", []) => Ok(Arc::new(Timestamp::default())),
        ("timestamp", [base]) => Ok(Arc::new(Timestamp::new(num("timestamp base", base)?))),
        ("adaptive", []) => Ok(Arc::new(Adaptive::default())),
        ("adaptive", [base, max]) => {
            Ok(Arc::new(Adaptive::new(num("adaptive base", base)?, num("adaptive max", max)?)))
        }
        _ => Err(format!(
            "unknown retry policy {s:?} (use immediate | bounded:N | backoff[:BASE:MAX[:TOTAL]] \
             | karma[:BASE] | timestamp[:BASE] | adaptive[:BASE:MAX])"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(attempt: u32, stats: &'a StmStats, scratch: &'a mut PolicyScratch) -> RetryCtx<'a> {
        RetryCtx { attempt, reason: AbortReason::LockConflict, stats, scratch }
    }

    #[test]
    fn immediate_always_retries() {
        for attempt in [1, 5, 1_000] {
            assert_eq!(ImmediateRetry.decide(attempt), RetryDecision::RetryNow);
        }
    }

    #[test]
    fn bounded_gives_up_at_the_limit() {
        let policy = BoundedRetry { max_attempts: 3 };
        assert_eq!(policy.decide(1), RetryDecision::RetryNow);
        assert_eq!(policy.decide(2), RetryDecision::RetryNow);
        assert_eq!(policy.decide(3), RetryDecision::GiveUp);
        assert_eq!(policy.decide(9), RetryDecision::GiveUp);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ExponentialBackoff { base_spins: 10, max_spins: 35, ..Default::default() };
        assert_eq!(policy.decide(1), RetryDecision::SpinThen(10));
        assert_eq!(policy.decide(2), RetryDecision::SpinThen(20));
        assert_eq!(policy.decide(3), RetryDecision::SpinThen(35));
        assert_eq!(policy.decide(30), RetryDecision::SpinThen(35));
        spin_wait(3); // must terminate
    }

    #[test]
    fn backoff_total_cap_exhausts_to_immediate_retries() {
        let policy = ExponentialBackoff { base_spins: 10, max_spins: 35, max_total_spins: 40 };
        let stats = StmStats::default();
        let mut scratch = PolicyScratch::default();
        // 10 + 20 spend 30 of the 40 budget; attempt 3 is clipped to the
        // remaining 10; attempt 4 onward has nothing left.
        assert_eq!(policy.decide_ctx(ctx(1, &stats, &mut scratch)), RetryDecision::SpinThen(10));
        assert_eq!(policy.decide_ctx(ctx(2, &stats, &mut scratch)), RetryDecision::SpinThen(20));
        assert_eq!(policy.decide_ctx(ctx(3, &stats, &mut scratch)), RetryDecision::SpinThen(10));
        assert_eq!(policy.decide_ctx(ctx(4, &stats, &mut scratch)), RetryDecision::RetryNow);
        assert_eq!(policy.decide_ctx(ctx(5, &stats, &mut scratch)), RetryDecision::RetryNow);
        assert_eq!(scratch.spun, 40);
    }

    #[test]
    fn karma_elects_exactly_one_top_contender_under_ties() {
        let policy = Karma::new(8);
        let stats = StmStats::default();
        let mut a = PolicyScratch::default();
        let mut b = PolicyScratch::default();
        // Same attempt count: the earlier ticket (a) wins the tie; b waits.
        let da = policy.decide_ctx(ctx(1, &stats, &mut a));
        let db = policy.decide_ctx(ctx(1, &stats, &mut b));
        assert_eq!(da, RetryDecision::RetryNow);
        assert!(matches!(db, RetryDecision::SpinThen(_)), "{db:?}");
        // b accumulates more attempts than a and takes the lead.
        let db = policy.decide_ctx(ctx(5, &stats, &mut b));
        assert_eq!(db, RetryDecision::RetryNow);
        let da = policy.decide_ctx(ctx(1, &stats, &mut a));
        assert!(matches!(da, RetryDecision::SpinThen(_)), "{da:?}");
        // b commits: the leaderboard clears and a proceeds immediately again.
        policy.on_commit(&mut b);
        assert_eq!(b.ticket, 0);
        assert_eq!(policy.decide_ctx(ctx(1, &stats, &mut a)), RetryDecision::RetryNow);
    }

    #[test]
    fn timestamp_lets_the_oldest_through_and_paces_the_young() {
        let policy = Timestamp::new(8);
        let stats = StmStats::default();
        let mut old = PolicyScratch::default();
        let mut young = PolicyScratch::default();
        assert_eq!(policy.decide_ctx(ctx(1, &stats, &mut old)), RetryDecision::RetryNow);
        assert_eq!(policy.decide_ctx(ctx(1, &stats, &mut young)), RetryDecision::SpinThen(8));
        // No matter how many attempts the young one burns, age rules.
        assert_eq!(policy.decide_ctx(ctx(50, &stats, &mut young)), RetryDecision::SpinThen(8));
        // The oldest commits and releases its ticket; the young one is now
        // the oldest live transaction and proceeds immediately.
        policy.on_commit(&mut old);
        assert_eq!(policy.decide_ctx(ctx(51, &stats, &mut young)), RetryDecision::RetryNow);
    }

    #[test]
    fn adaptive_gain_follows_the_attempts_tail() {
        let policy = Adaptive::new(4, 64);
        let stats = StmStats::default();
        let mut scratch = PolicyScratch::default();
        // Empty histogram: gain 0, immediate retries.
        assert_eq!(policy.decide_ctx(ctx(1, &stats, &mut scratch)), RetryDecision::RetryNow);
        assert_eq!(policy.gain(), 0);
        // A heavy tail (p99 lands in the [9,16] bucket ⇒ lower bound 9,
        // bit-length 4 ⇒ gain 3) engages exponential pacing.
        for _ in 0..100 {
            stats.record_attempts(12);
        }
        let fresh = Adaptive::new(4, 64);
        assert!(matches!(
            fresh.decide_ctx(ctx(1, &stats, &mut scratch)),
            RetryDecision::SpinThen(4)
        ));
        assert_eq!(fresh.gain(), 3);
        assert_eq!(fresh.decide(2), RetryDecision::SpinThen(8));
        assert_eq!(fresh.decide(10), RetryDecision::SpinThen(32), "exponent capped at gain");
    }

    #[test]
    fn every_registered_policy_spec_round_trips_through_parse() {
        for &(spec, expected_name) in POLICY_SPECS {
            let policy =
                parse_policy(spec).unwrap_or_else(|e| panic!("spec {spec:?} failed to parse: {e}"));
            assert_eq!(policy.name(), expected_name, "spec {spec:?}");
            // Re-parsing the bare name must also work for every family.
            let bare = parse_policy(expected_name).or_else(|_| parse_policy(spec)).unwrap();
            assert_eq!(bare.name(), expected_name);
        }
        assert!(parse_policy("bounded:0").is_err());
        assert!(parse_policy("bounded").is_err());
        assert!(parse_policy("karma:x").is_err());
        assert!(parse_policy("nope").unwrap_err().contains("unknown retry policy"));
    }

    #[test]
    fn policies_parse_from_shared_syntax() {
        assert_eq!(parse_policy("immediate").unwrap().name(), "immediate");
        assert_eq!(parse_policy("bounded:8").unwrap().name(), "bounded");
        assert_eq!(parse_policy("backoff").unwrap().name(), "backoff");
        assert_eq!(parse_policy("backoff:4:64").unwrap().name(), "backoff");
        assert_eq!(parse_policy("karma").unwrap().name(), "karma");
        assert_eq!(parse_policy("timestamp").unwrap().name(), "timestamp");
        assert_eq!(parse_policy("adaptive").unwrap().name(), "adaptive");
    }
}
