//! Pluggable retry policies: what happens *between* transaction attempts.
//!
//! The old front-end baked one loop into [`crate::Stm::run`]: retry
//! immediately, forever.  That is one point in a design space the PCL
//! trade-offs care about — under contention, *when* you retry decides how
//! much work the abort storm burns.  A [`RetryPolicy`] makes the loop a
//! strategy:
//!
//! * [`ImmediateRetry`] — the historical behaviour (one spin hint, retry);
//! * [`BoundedRetry`] — give up after N attempts (surfaced by
//!   [`crate::Stm::run_policy`] as an error instead of looping forever);
//! * [`ExponentialBackoff`] — spin-wait `base · 2^attempt` (capped) before
//!   retrying, the classic contention-management answer.
//!
//! Policies are measurable, not just selectable: the per-transaction attempt
//! histogram in [`crate::StmStats`] (p50/p99 attempts) shows what a policy
//! actually did to the retry distribution.

use std::fmt;
use std::sync::Arc;

/// What to do after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry right away.
    RetryNow,
    /// Spin-wait this many iterations, then retry.
    SpinThen(u32),
    /// Stop retrying ([`crate::Stm::run_policy`] returns the abort;
    /// [`crate::Stm::run`], which promises a result, ignores this and
    /// retries anyway).
    GiveUp,
}

/// A retry strategy consulted once per failed attempt.
///
/// `attempt` is the number of attempts that have failed so far (so the first
/// call receives `1`).  Implementations must be cheap and thread-safe: the
/// same policy instance is consulted concurrently from every worker thread.
pub trait RetryPolicy: Send + Sync {
    /// Short machine-readable name (appears in reports).
    fn name(&self) -> &'static str;

    /// Decide what to do after the `attempt`-th consecutive failure.
    fn decide(&self, attempt: u32) -> RetryDecision;
}

impl fmt::Debug for dyn RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RetryPolicy({})", self.name())
    }
}

/// Retry immediately, forever (the historical default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImmediateRetry;

impl RetryPolicy for ImmediateRetry {
    fn name(&self) -> &'static str {
        "immediate"
    }

    fn decide(&self, _attempt: u32) -> RetryDecision {
        RetryDecision::RetryNow
    }
}

/// Retry immediately up to `max_attempts` total attempts, then give up.
#[derive(Debug, Clone, Copy)]
pub struct BoundedRetry {
    /// Total attempts allowed (must be ≥ 1).
    pub max_attempts: u32,
}

impl RetryPolicy for BoundedRetry {
    fn name(&self) -> &'static str {
        "bounded"
    }

    fn decide(&self, attempt: u32) -> RetryDecision {
        if attempt >= self.max_attempts.max(1) {
            RetryDecision::GiveUp
        } else {
            RetryDecision::RetryNow
        }
    }
}

/// Exponential backoff: spin `base_spins · 2^(attempt-1)` iterations (capped
/// at `max_spins`) before each retry.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialBackoff {
    /// Spin iterations before the second attempt.
    pub base_spins: u32,
    /// Upper bound on the spin count.
    pub max_spins: u32,
}

impl Default for ExponentialBackoff {
    fn default() -> Self {
        ExponentialBackoff { base_spins: 32, max_spins: 16_384 }
    }
}

impl RetryPolicy for ExponentialBackoff {
    fn name(&self) -> &'static str {
        "backoff"
    }

    fn decide(&self, attempt: u32) -> RetryDecision {
        let exponent = attempt.saturating_sub(1).min(24);
        let spins = self.base_spins.saturating_mul(1u32 << exponent).min(self.max_spins.max(1));
        RetryDecision::SpinThen(spins)
    }
}

/// Busy-wait `spins` iterations (what [`RetryDecision::SpinThen`] asks for).
pub fn spin_wait(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

/// Parse a policy description shared by the CLI, benches and examples:
/// `immediate`, `bounded:N` (N total attempts), `backoff` or
/// `backoff:BASE:MAX`.
pub fn parse_policy(s: &str) -> Result<Arc<dyn RetryPolicy>, String> {
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    match (head, args.as_slice()) {
        ("immediate", []) => Ok(Arc::new(ImmediateRetry)),
        ("bounded", [n]) => {
            let max_attempts: u32 =
                n.parse().map_err(|e| format!("bounded:N needs an attempt count: {e}"))?;
            if max_attempts == 0 {
                return Err("bounded:N needs N ≥ 1".into());
            }
            Ok(Arc::new(BoundedRetry { max_attempts }))
        }
        ("backoff", []) => Ok(Arc::new(ExponentialBackoff::default())),
        ("backoff", [base, max]) => {
            let base_spins: u32 = base.parse().map_err(|e| format!("backoff base: {e}"))?;
            let max_spins: u32 = max.parse().map_err(|e| format!("backoff max: {e}"))?;
            Ok(Arc::new(ExponentialBackoff { base_spins, max_spins }))
        }
        _ => Err(format!(
            "unknown retry policy {s:?} (use immediate | bounded:N | backoff | backoff:BASE:MAX)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_always_retries() {
        for attempt in [1, 5, 1_000] {
            assert_eq!(ImmediateRetry.decide(attempt), RetryDecision::RetryNow);
        }
    }

    #[test]
    fn bounded_gives_up_at_the_limit() {
        let policy = BoundedRetry { max_attempts: 3 };
        assert_eq!(policy.decide(1), RetryDecision::RetryNow);
        assert_eq!(policy.decide(2), RetryDecision::RetryNow);
        assert_eq!(policy.decide(3), RetryDecision::GiveUp);
        assert_eq!(policy.decide(9), RetryDecision::GiveUp);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ExponentialBackoff { base_spins: 10, max_spins: 35 };
        assert_eq!(policy.decide(1), RetryDecision::SpinThen(10));
        assert_eq!(policy.decide(2), RetryDecision::SpinThen(20));
        assert_eq!(policy.decide(3), RetryDecision::SpinThen(35));
        assert_eq!(policy.decide(30), RetryDecision::SpinThen(35));
        spin_wait(3); // must terminate
    }

    #[test]
    fn policies_parse_from_shared_syntax() {
        assert_eq!(parse_policy("immediate").unwrap().name(), "immediate");
        assert_eq!(parse_policy("bounded:8").unwrap().name(), "bounded");
        assert_eq!(parse_policy("backoff").unwrap().name(), "backoff");
        assert_eq!(parse_policy("backoff:4:64").unwrap().name(), "backoff");
        assert!(parse_policy("bounded:0").is_err());
        assert!(parse_policy("bounded").is_err());
        assert!(parse_policy("nope").unwrap_err().contains("unknown retry policy"));
    }
}
