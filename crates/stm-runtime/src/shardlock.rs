//! The sharded reader-writer-lock backend: the point *between*
//! `global-lock` and TL2 on the parallelism axis.
//!
//! Variables hash into a fixed number of **shards** ([`SHARDS`] bands of the
//! var-id hash); each shard carries one reader-writer spin lock and one
//! version counter.  Execution is optimistic and lock-free: reads take a
//! seqlock-consistent `(shard version, value)` snapshot and writes buffer.
//! Commit is **sorted two-phase acquisition**: the touched shards are locked
//! in ascending shard order — write locks for written shards, read locks for
//! read-only shards — so two committers can never deadlock, then every
//! recorded shard version is re-validated and the writes are installed.
//!
//! The result is serializable (commit-time validation under all the locks is
//! a single atomic commit point) and blocking (bounded spin on busy shard
//! locks, then abort — the same hang-free discipline as the other locking
//! backends).  What it pays is **parallelism**: two transactions over
//! disjoint variables that land in the same hash band still conflict, a
//! 1/[`SHARDS`] false-conflict rate that sits exactly between the
//! global-lock backend (one band) and TL2 (one band per variable) — the
//! spectrum "Distributed Transactional Systems Cannot Be Fast" argues must
//! be measured, not assumed.

use crate::backend::{Backend, VarId};
use crate::txn::{AbortReason, StmError, TxnData};
use crate::vartable::VarTable;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// How many hash bands (shards) the backend uses (must be a power of two:
/// [`shard_of`] derives its band extraction from it).
pub const SHARDS: usize = 16;

const _: () = assert!(SHARDS.is_power_of_two());

/// How long an attempt spins on a busy shard lock before aborting.
pub const SPIN_LIMIT: usize = 50_000;

/// Writer bit of a shard's lock state; the low bits count readers.
const WRITER: u64 = 1 << 63;

struct Shard {
    /// Reader-writer spin lock: [`WRITER`] bit + reader count.
    state: AtomicU64,
    /// Bumped once per committed write to the shard (while write-locked).
    version: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard { state: AtomicU64::new(0), version: AtomicU64::new(0) }
    }

    fn try_read_lock(&self, spin_limit: usize) -> bool {
        for _ in 0..spin_limit {
            let s = self.state.load(Ordering::Acquire);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return true;
            }
            std::hint::spin_loop();
        }
        false
    }

    fn try_write_lock(&self, spin_limit: usize) -> bool {
        for _ in 0..spin_limit {
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
            std::hint::spin_loop();
        }
        false
    }

    fn unlock(&self, write: bool) {
        if write {
            self.state.store(0, Ordering::Release);
        } else {
            self.state.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Which hash band a variable belongs to (a multiplicative hash, so
/// consecutive var ids spread across bands instead of striding).
pub fn shard_of(var: VarId) -> usize {
    let band_bits = SHARDS.trailing_zeros();
    ((var.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - band_bits)) as usize
}

/// The sharded reader-writer-lock backend.
pub struct ShardLockBackend {
    values: VarTable<AtomicI64>,
    shards: Vec<Shard>,
    spin_limit: usize,
}

impl ShardLockBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        ShardLockBackend::with_spin_limit(SPIN_LIMIT)
    }

    /// Create a backend with a custom spin budget (used by tests).
    pub fn with_spin_limit(spin_limit: usize) -> Self {
        ShardLockBackend {
            values: VarTable::new(),
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            spin_limit,
        }
    }

    fn release(&self, acquired: &[(usize, bool)]) {
        for &(shard, write) in acquired {
            self.shards[shard].unlock(write);
        }
    }
}

impl Default for ShardLockBackend {
    fn default() -> Self {
        ShardLockBackend::new()
    }
}

impl Backend for ShardLockBackend {
    fn alloc_words(&self, initials: &[i64]) -> VarId {
        VarId(self.values.alloc_init(initials.len(), |k, slot| {
            slot.store(initials[k], Ordering::Relaxed);
        }))
    }

    fn begin(&self, data: &mut TxnData) {
        data.reset();
    }

    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, StmError> {
        if let Some(v) = data.write_set.get(&var) {
            return Ok(*v);
        }
        if let Some(v) = data.read_cache.get(&var) {
            return Ok(*v);
        }
        let shard = &self.shards[shard_of(var)];
        for _ in 0..self.spin_limit {
            if shard.state.load(Ordering::Acquire) & WRITER != 0 {
                std::hint::spin_loop();
                continue;
            }
            let v1 = shard.version.load(Ordering::Acquire);
            let value = self.values.get(var.index()).load(Ordering::Acquire);
            let v2 = shard.version.load(Ordering::Acquire);
            if v1 == v2 && shard.state.load(Ordering::Acquire) & WRITER == 0 {
                // One consistent version per shard per attempt: the first
                // read pins it, and a later read observing a newer shard
                // version is a conflict the commit validation would reject
                // anyway — abort early.
                let key = VarId(shard_of(var));
                match data.read_versions.get(&key) {
                    Some(&pinned) if pinned != v1 => {
                        data.set_abort_reason(AbortReason::ReadValidation);
                        return Err(StmError::Aborted);
                    }
                    Some(_) => {}
                    None => {
                        data.read_versions.insert(key, v1);
                    }
                }
                data.read_cache.insert(var, value);
                return Ok(value);
            }
            std::hint::spin_loop();
        }
        data.set_abort_reason(AbortReason::LockConflict);
        Err(StmError::Aborted)
    }

    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), StmError> {
        // Buffered; the locks are taken at commit (sorted two-phase).
        data.write_set.insert(var, value);
        Ok(())
    }

    fn commit(&self, data: &mut TxnData) -> Result<(), StmError> {
        let write_shards: BTreeSet<usize> = data.write_set.keys().map(|&v| shard_of(v)).collect();
        let touched: BTreeSet<usize> = data
            .read_versions
            .keys()
            .map(|k| k.index())
            .chain(write_shards.iter().copied())
            .collect();
        // Sorted two-phase acquisition: ascending shard order, write locks
        // for written shards, read locks otherwise.  Every committer sorts
        // identically, so the acquisition order is deadlock-free.
        let mut acquired: Vec<(usize, bool)> = Vec::with_capacity(touched.len());
        for &shard in &touched {
            let write = write_shards.contains(&shard);
            let ok = if write {
                self.shards[shard].try_write_lock(self.spin_limit)
            } else {
                self.shards[shard].try_read_lock(self.spin_limit)
            };
            if !ok {
                self.release(&acquired);
                data.set_abort_reason(AbortReason::LockConflict);
                return Err(StmError::Aborted);
            }
            acquired.push((shard, write));
        }
        // Validate: every shard read during execution is still at the
        // version the attempt pinned (no commit slipped in between).
        for (key, &pinned) in &data.read_versions {
            if self.shards[key.index()].version.load(Ordering::Acquire) != pinned {
                self.release(&acquired);
                data.set_abort_reason(AbortReason::ReadValidation);
                return Err(StmError::Aborted);
            }
        }
        data.mark_validated();
        // Install under all the locks (the single atomic commit point).
        if !data.write_set.is_empty() {
            for (&var, &value) in &data.write_set {
                self.values.get(var.index()).store(value, Ordering::Release);
            }
            for &shard in &write_shards {
                self.shards[shard].version.fetch_add(1, Ordering::AcqRel);
            }
        }
        self.release(&acquired);
        Ok(())
    }

    fn cleanup(&self, _data: &mut TxnData) {
        // Nothing persistent: writes are buffered and commit-time locks are
        // scoped to `commit` itself.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn txn(backend: &ShardLockBackend) -> TxnData {
        let mut data = TxnData::default();
        backend.begin(&mut data);
        data
    }

    #[test]
    fn shards_band_the_id_space() {
        let seen: BTreeSet<usize> = (0..256).map(|i| shard_of(VarId(i))).collect();
        assert!(seen.len() > 1, "the hash must spread ids across bands");
        assert!(seen.iter().all(|&s| s < SHARDS));
    }

    #[test]
    fn read_write_round_trip_and_validation() {
        let b = ShardLockBackend::new();
        let v = b.alloc(5);
        let mut t = txn(&b);
        assert_eq!(b.read(&mut t, v).unwrap(), 5);
        b.write(&mut t, v, 6).unwrap();
        assert_eq!(b.read(&mut t, v).unwrap(), 6, "read-your-own-writes");
        b.commit(&mut t).unwrap();
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, v).unwrap(), 6);
    }

    #[test]
    fn stale_shard_versions_fail_commit_validation() {
        let b = ShardLockBackend::new();
        let v = b.alloc(0);
        let mut t1 = txn(&b);
        assert_eq!(b.read(&mut t1, v).unwrap(), 0);

        let mut t2 = txn(&b);
        b.write(&mut t2, v, 9).unwrap();
        b.commit(&mut t2).unwrap();

        // t1's pinned shard version is stale now.
        let other = b.alloc(0);
        b.write(&mut t1, other, 1).unwrap();
        assert_eq!(b.commit(&mut t1), Err(StmError::Aborted));
        b.cleanup(&mut t1);
        // The aborted commit released every lock: a fresh commit goes through.
        let mut t3 = txn(&b);
        b.write(&mut t3, other, 2).unwrap();
        assert!(b.commit(&mut t3).is_ok());
    }

    #[test]
    fn same_band_disjoint_vars_still_conflict() {
        // Find two distinct vars in the same shard: the sacrificed
        // parallelism, observable.
        let b = ShardLockBackend::new();
        let vars: Vec<VarId> = (0..64).map(|_| b.alloc(0)).collect();
        let (a, c) = {
            let mut found = None;
            'outer: for (i, &x) in vars.iter().enumerate() {
                for &y in &vars[i + 1..] {
                    if shard_of(x) == shard_of(y) {
                        found = Some((x, y));
                        break 'outer;
                    }
                }
            }
            found.expect("64 vars over 16 bands must collide")
        };
        // A reader of `a` pins the band's version; a commit writing `c`
        // (disjoint var, same band) invalidates it.
        let mut reader = txn(&b);
        b.read(&mut reader, a).unwrap();
        let mut writer = txn(&b);
        b.write(&mut writer, c, 1).unwrap();
        b.commit(&mut writer).unwrap();
        assert_eq!(b.commit(&mut reader), Err(StmError::Aborted), "false sharing by design");
    }

    #[test]
    fn sorted_two_phase_acquisition_never_deadlocks_under_stress() {
        // 8 threads, seeded var choices spanning every band, each
        // transaction touching several shards in random order.  Sorted
        // acquisition must let every thread finish (a deadlock would hang
        // the test; bounded spins turn livelock into aborts + retries).
        let b = Arc::new(ShardLockBackend::new());
        let vars: Vec<VarId> = (0..64).map(|_| b.alloc(0)).collect();
        let committed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for thread in 0..8u64 {
                let b = Arc::clone(&b);
                let vars = vars.clone();
                let committed = Arc::clone(&committed);
                scope.spawn(move || {
                    let mut state = thread.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..300 {
                        loop {
                            let mut data = TxnData::default();
                            b.begin(&mut data);
                            let ok = (0..4).try_for_each(|_| {
                                let var = vars[(next() % vars.len() as u64) as usize];
                                let x = b.read(&mut data, var)?;
                                b.write(&mut data, var, x + 1)
                            });
                            let done = ok.is_ok() && b.commit(&mut data).is_ok();
                            if !done {
                                b.cleanup(&mut data);
                                continue;
                            }
                            committed.fetch_add(4, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        // Serializability check: the sum of all counters equals the number
        // of committed increments (no lost updates).
        let mut data = TxnData::default();
        b.begin(&mut data);
        let total: i64 = vars.iter().map(|&v| b.read(&mut data, v).unwrap()).sum();
        assert_eq!(total as u64, committed.load(Ordering::Relaxed));
        assert_eq!(total, 8 * 300 * 4);
    }
}
