//! The multi-version snapshot-isolation backend: the corner that gives up
//! **serializability** — and nothing an SI audit can see.
//!
//! Every STM word keeps a bounded chain of timestamped committed versions.
//! A transaction takes a **begin-timestamp snapshot** (the published commit
//! clock at `begin`) and every read returns the newest version no newer than
//! that snapshot — reads never block, never abort and never tear, even
//! across the words of a multi-word [`crate::TVar`].  Writes buffer until
//! commit, where **first-committer-wins** write-write conflict detection
//! runs: if any written variable gained a version newer than the snapshot,
//! the transaction aborts.  That is textbook snapshot isolation: lost
//! updates are impossible, long forks are impossible, but **write skew is
//! admitted** — two transactions reading the same snapshot and writing
//! disjoint variables both commit, producing histories that pass every SI
//! audit and fail the serializability audit.  This is the backend that
//! separates the repo's SI and SER verdicts on a live run.
//!
//! Mechanics:
//!
//! * **Commit tickets and the done ring** — a committer acquires the
//!   per-variable chain locks of its write set in sorted order
//!   (deadlock-free), runs the first-committer-wins check, draws a ticket
//!   from the allocation clock, installs its versions, then announces the
//!   ticket in a fixed-size **done ring** and helps fold consecutive
//!   announced tickets into the stable clock.  Any committer can fold any
//!   prefix, so publication is cooperative instead of a serial chain of
//!   per-thread hand-offs; a committer only waits (yielding) for
//!   predecessors that are still *installing*.  Snapshots read the stable
//!   clock, so a snapshot never observes a half-installed commit, and a
//!   committer returns only once its own ticket is stable (read-your-writes
//!   across a session's transactions).
//! * **Striped snapshot registry** — `begin` joins and commit/abort leave a
//!   registry of active snapshot timestamps, striped by thread so
//!   registration is an uncontended per-stripe lock instead of one global
//!   mutex on every transaction.  GC reads the stable clock *first* and the
//!   stripe minima second; `begin` re-validates the stable clock after
//!   publishing its stripe minimum, so a concurrent GC either sees the
//!   registration or used an older (safe) stable bound.
//! * **Version-chain GC** — each commit prunes the chains it touched down to
//!   the newest version visible to the **oldest active snapshot**.  A
//!   long-lived reader pins exactly one old version per chain; everything
//!   older is collected immediately, and once the reader ends the chains
//!   collapse.

use crate::backend::{Backend, VarId};
use crate::stats::thread_stripe;
use crate::txn::{AbortReason, StmError, TxnData};
use crate::vartable::VarTable;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel pushed into [`TxnData::held_locks`] while the attempt's snapshot
/// is registered (the backend has no per-variable locks to track there).
const SNAPSHOT: VarId = VarId(usize::MAX);

/// Capacity of the done ring.  The allocation clock is held fewer than
/// `RING / 2` tickets ahead of the stable clock, so a slot can never be
/// claimed by two in-flight tickets at once.
const RING: usize = 1024;

/// How many stripes the snapshot registry uses (threads map onto stripes via
/// [`thread_stripe`]).
const SNAP_STRIPES: usize = 16;

/// One committed version of one variable.
#[derive(Debug, Clone, Copy)]
struct Version {
    /// Commit timestamp (ticket) that installed this version.
    ts: u64,
    /// The value.
    value: i64,
}

/// One variable: its committed version chain, oldest first.
#[derive(Default)]
struct Chain {
    versions: Mutex<Vec<Version>>,
}

/// One stripe of the active-snapshot registry: the timestamps registered by
/// the threads that hash here, plus a lock-free-readable minimum.
struct SnapStripe {
    counts: Mutex<BTreeMap<u64, usize>>,
    /// Smallest registered timestamp, `u64::MAX` when the stripe is empty.
    /// Published `SeqCst` so the GC-vs-begin ordering argument below holds.
    min: AtomicU64,
}

impl SnapStripe {
    fn new() -> Self {
        SnapStripe { counts: Mutex::new(BTreeMap::new()), min: AtomicU64::new(u64::MAX) }
    }

    fn publish_min(&self, counts: &BTreeMap<u64, usize>) {
        self.min.store(counts.keys().next().copied().unwrap_or(u64::MAX), Ordering::SeqCst);
    }

    fn register(&self, ts: u64) {
        let mut counts = self.counts.lock();
        *counts.entry(ts).or_insert(0) += 1;
        self.publish_min(&counts);
    }

    fn deregister(&self, ts: u64) {
        let mut counts = self.counts.lock();
        if let Some(count) = counts.get_mut(&ts) {
            *count -= 1;
            if *count == 0 {
                counts.remove(&ts);
            }
        }
        self.publish_min(&counts);
    }
}

/// The multi-version snapshot-isolation backend.
pub struct MvccBackend {
    chains: VarTable<Chain>,
    /// Ticket source: the next commit timestamp is `alloc_clock + 1`.
    alloc_clock: AtomicU64,
    /// Highest commit timestamp whose versions — and all predecessors — are
    /// fully installed; begin snapshots read this.
    stable_clock: AtomicU64,
    /// Announced-but-not-yet-folded commit tickets: slot `t % RING` holds
    /// `t` once ticket `t`'s versions are installed, 0 otherwise.
    done_ring: Box<[AtomicU64]>,
    /// Active snapshot timestamps, striped by registering thread.
    snap_stripes: Box<[SnapStripe]>,
}

impl MvccBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        MvccBackend {
            chains: VarTable::new(),
            alloc_clock: AtomicU64::new(0),
            stable_clock: AtomicU64::new(0),
            done_ring: (0..RING).map(|_| AtomicU64::new(0)).collect(),
            snap_stripes: (0..SNAP_STRIPES).map(|_| SnapStripe::new()).collect(),
        }
    }

    fn stripe(&self) -> &SnapStripe {
        &self.snap_stripes[thread_stripe() % SNAP_STRIPES]
    }

    /// Fold every consecutive announced ticket into the stable clock.  Any
    /// thread may fold any prefix; the loop stops at the first gap (a ticket
    /// drawn but not yet announced — its owner is still installing).
    fn advance_stable(&self) {
        loop {
            let stable = self.stable_clock.load(Ordering::SeqCst);
            let next = stable + 1;
            let slot = &self.done_ring[(next % RING as u64) as usize];
            if slot.load(Ordering::SeqCst) != next {
                return;
            }
            if self
                .stable_clock
                .compare_exchange(stable, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // Hygiene only: a stale slot value is overwritten by the
                // ticket that reuses the slot a full ring later.
                let _ = slot.compare_exchange(next, 0, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
    }

    /// Deregister the attempt's snapshot (idempotent within the attempt:
    /// guarded by the [`SNAPSHOT`] sentinel, so the commit-success path and
    /// the cleanup path never double-release).
    fn end_snapshot(&self, data: &mut TxnData) {
        if data.held_locks.last() != Some(&SNAPSHOT) {
            return;
        }
        data.held_locks.pop();
        // begin/commit/cleanup run on one thread, so this is the stripe the
        // snapshot was registered in.
        self.stripe().deregister(data.start_ts);
    }

    /// The oldest snapshot any live transaction still reads from; versions
    /// strictly older than the newest one visible to it are garbage.
    ///
    /// The stable clock is read **before** the stripe minima: if this scan
    /// raced a `begin` and missed its registration, the `SeqCst` order puts
    /// our stable read before that begin's post-registration re-read, so the
    /// bound we return is at most the timestamp that begin settled on.
    fn oldest_active_snapshot(&self) -> u64 {
        let stable = self.stable_clock.load(Ordering::SeqCst);
        let registered = self
            .snap_stripes
            .iter()
            .map(|s| s.min.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        stable.min(registered)
    }

    /// How many snapshots are currently registered (diagnostics and tests).
    pub fn active_snapshots(&self) -> usize {
        self.snap_stripes.iter().map(|s| s.counts.lock().values().sum::<usize>()).sum()
    }

    /// How many versions `var`'s chain currently holds (diagnostics and GC
    /// tests).
    pub fn chain_len(&self, var: VarId) -> usize {
        self.chains.get(var.index()).versions.lock().len()
    }
}

/// Drop every version strictly older than the newest one visible to
/// `oldest_snapshot` (that one must stay: it is what the oldest reader sees).
fn gc_chain(versions: &mut Vec<Version>, oldest_snapshot: u64) {
    let visible = versions.partition_point(|v| v.ts <= oldest_snapshot);
    if visible > 1 {
        versions.drain(..visible - 1);
    }
}

impl Default for MvccBackend {
    fn default() -> Self {
        MvccBackend::new()
    }
}

impl Backend for MvccBackend {
    fn alloc_words(&self, initials: &[i64]) -> VarId {
        VarId(self.chains.alloc_init(initials.len(), |k, chain| {
            chain.versions.lock().push(Version { ts: 0, value: initials[k] });
        }))
    }

    fn begin(&self, data: &mut TxnData) {
        data.reset();
        let stripe = self.stripe();
        // Register, then re-validate the stable clock: a concurrent GC that
        // missed the registration must have read the stable clock before our
        // re-read (SeqCst), so its pruning bound was ≤ the timestamp we keep.
        // If the clock moved we re-register at the newer value — nothing has
        // been read yet, so switching snapshots is free.
        loop {
            let ts = self.stable_clock.load(Ordering::SeqCst);
            stripe.register(ts);
            if self.stable_clock.load(Ordering::SeqCst) == ts {
                data.start_ts = ts;
                break;
            }
            stripe.deregister(ts);
        }
        data.held_locks.push(SNAPSHOT);
    }

    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, StmError> {
        if let Some(v) = data.write_set.get(&var) {
            return Ok(*v);
        }
        if let Some(v) = data.read_cache.get(&var) {
            return Ok(*v);
        }
        let versions = self.chains.get(var.index()).versions.lock();
        // The newest version no newer than the snapshot.  GC keeps the
        // newest version visible to the oldest active snapshot, and ours is
        // registered, so this always exists.
        let idx = versions.partition_point(|v| v.ts <= data.start_ts);
        let version = versions[idx - 1];
        drop(versions);
        // No read validation ever runs (snapshots need none), so the cache
        // alone carries the read set.
        data.read_cache.insert(var, version.value);
        Ok(version.value)
    }

    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), StmError> {
        // Buffered; conflicts are detected at commit (first-committer-wins).
        data.write_set.insert(var, value);
        Ok(())
    }

    fn commit(&self, data: &mut TxnData) -> Result<(), StmError> {
        if data.write_set.is_empty() {
            // Read-only transactions commit for free: their snapshot was
            // consistent by construction.
            self.end_snapshot(data);
            return Ok(());
        }
        // Lock the written chains in ascending VarId order (the write set is
        // sorted) — every committer sorts the same way, so no deadlock.
        let mut guards: Vec<_> =
            data.write_set.keys().map(|v| self.chains.get(v.index()).versions.lock()).collect();
        // First-committer-wins: any version newer than our snapshot on a
        // variable we write means someone committed first.
        for guard in &guards {
            let newest = guard.last().expect("chains always hold at least one version");
            if newest.ts > data.start_ts {
                data.set_abort_reason(AbortReason::FirstCommitterWins);
                return Err(StmError::Aborted); // guards drop; cleanup ends the snapshot
            }
        }
        data.mark_validated();
        // Bound the allocation clock's lead so ring slots are never shared
        // by two in-flight tickets (needs lead < RING; enforced at RING/2
        // with plenty of slack for racing committers past the check).
        while self
            .alloc_clock
            .load(Ordering::Relaxed)
            .saturating_sub(self.stable_clock.load(Ordering::Relaxed))
            >= RING as u64 / 2
        {
            self.advance_stable();
            std::thread::yield_now();
        }
        // Every drawn ticket is announced (nothing below can fail), so the
        // stable clock never waits on a gap that will not fill.
        let commit_ts = self.alloc_clock.fetch_add(1, Ordering::AcqRel) + 1;
        let oldest = self.oldest_active_snapshot();
        for (guard, &value) in guards.iter_mut().zip(data.write_set.values()) {
            guard.push(Version { ts: commit_ts, value });
            gc_chain(guard, oldest);
        }
        drop(guards);
        // Announce the installed ticket and fold ready prefixes
        // cooperatively; then wait (helping) until our own ticket is stable
        // so a session's next snapshot includes this commit.  The only wait
        // is for predecessors still installing — announced predecessors are
        // folded by whoever gets here first.
        self.done_ring[(commit_ts % RING as u64) as usize].store(commit_ts, Ordering::SeqCst);
        let mut spins = 0u32;
        loop {
            self.advance_stable();
            if self.stable_clock.load(Ordering::Acquire) >= commit_ts {
                break;
            }
            // Progress depends on the earlier ticket holder being scheduled:
            // yield periodically so an oversubscribed host runs it instead
            // of burning the quantum spinning.
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.end_snapshot(data);
        Ok(())
    }

    fn cleanup(&self, data: &mut TxnData) {
        self.end_snapshot(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(backend: &MvccBackend) -> TxnData {
        let mut data = TxnData::default();
        backend.begin(&mut data);
        data
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let b = MvccBackend::new();
        let v = b.alloc(1);
        let mut reader = txn(&b);
        assert_eq!(b.read(&mut reader, v).unwrap(), 1);

        // A writer commits a new version mid-flight.
        let mut writer = txn(&b);
        b.write(&mut writer, v, 2).unwrap();
        b.commit(&mut writer).unwrap();

        // The reader's snapshot is stable — even after dropping its cache.
        reader.read_cache.clear();
        assert_eq!(b.read(&mut reader, v).unwrap(), 1);
        assert!(b.commit(&mut reader).is_ok(), "read-only snapshots always commit");

        // A fresh snapshot sees the new version.
        let mut after = txn(&b);
        assert_eq!(b.read(&mut after, v).unwrap(), 2);
        b.cleanup(&mut after);
    }

    #[test]
    fn first_committer_wins_on_write_write_conflicts() {
        let b = MvccBackend::new();
        let v = b.alloc(0);
        let mut t1 = txn(&b);
        let mut t2 = txn(&b);
        b.read(&mut t1, v).unwrap();
        b.read(&mut t2, v).unwrap();
        b.write(&mut t1, v, 10).unwrap();
        b.write(&mut t2, v, 20).unwrap();
        assert!(b.commit(&mut t1).is_ok(), "first committer wins");
        assert_eq!(b.commit(&mut t2), Err(StmError::Aborted), "second conflicting commit loses");
        b.cleanup(&mut t2);
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, v).unwrap(), 10);
        b.cleanup(&mut check);
    }

    #[test]
    fn write_skew_is_admitted_by_design() {
        // T1 reads (x, y), writes x; T2 reads (x, y), writes y — same
        // snapshot, disjoint write sets: both commit.  SI, not SER.
        let b = MvccBackend::new();
        let x = b.alloc(0);
        let y = b.alloc(0);
        let mut t1 = txn(&b);
        let mut t2 = txn(&b);
        assert_eq!(b.read(&mut t1, x).unwrap(), 0);
        assert_eq!(b.read(&mut t1, y).unwrap(), 0);
        assert_eq!(b.read(&mut t2, x).unwrap(), 0);
        assert_eq!(b.read(&mut t2, y).unwrap(), 0);
        b.write(&mut t1, x, 7).unwrap();
        b.write(&mut t2, y, 8).unwrap();
        assert!(b.commit(&mut t1).is_ok());
        assert!(b.commit(&mut t2).is_ok(), "disjoint writes from one snapshot both commit");
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, x).unwrap(), 7);
        assert_eq!(b.read(&mut check, y).unwrap(), 8);
        b.cleanup(&mut check);
    }

    #[test]
    fn version_chains_are_gced_to_the_oldest_active_snapshot() {
        let b = MvccBackend::new();
        let v = b.alloc(0);
        // 50 commits before the long-lived reader exists.
        for i in 1..=50 {
            let mut w = txn(&b);
            b.write(&mut w, v, i).unwrap();
            b.commit(&mut w).unwrap();
        }
        let mut reader = txn(&b);
        assert_eq!(b.read(&mut reader, v).unwrap(), 50);

        // 50 more commits while the reader pins its snapshot.
        for i in 51..=100 {
            let mut w = txn(&b);
            b.write(&mut w, v, i).unwrap();
            b.commit(&mut w).unwrap();
        }
        // Everything older than the pinned version was collected; the pin
        // plus the versions newer than it remain.
        let pinned = b.chain_len(v);
        assert!(pinned <= 51, "chain holds the pin + newer versions, got {pinned}");
        assert!(pinned >= 51, "nothing newer than the pin may be collected, got {pinned}");
        // The reader still sees its snapshot, consistently.
        reader.read_cache.clear();
        assert_eq!(b.read(&mut reader, v).unwrap(), 50);
        b.cleanup(&mut reader);

        // Once the reader ends, the next commit collapses the chain.
        let mut w = txn(&b);
        b.write(&mut w, v, 101).unwrap();
        b.commit(&mut w).unwrap();
        assert!(b.chain_len(v) <= 2, "chain after GC: {}", b.chain_len(v));
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, v).unwrap(), 101);
        b.cleanup(&mut check);
    }

    #[test]
    fn aborted_attempts_leave_no_version_and_release_their_snapshot() {
        let b = MvccBackend::new();
        let v = b.alloc(3);
        let mut t = txn(&b);
        b.write(&mut t, v, 99).unwrap();
        b.cleanup(&mut t); // user abort
        assert_eq!(b.chain_len(v), 1, "buffered writes never land");
        assert_eq!(b.active_snapshots(), 0, "snapshot registry drained");
        // Commit-path failure also drains the registry.
        let mut t1 = txn(&b);
        let mut t2 = txn(&b);
        b.write(&mut t1, v, 1).unwrap();
        b.write(&mut t2, v, 2).unwrap();
        b.commit(&mut t1).unwrap();
        assert!(b.commit(&mut t2).is_err());
        b.cleanup(&mut t2);
        assert_eq!(b.active_snapshots(), 0);
    }

    #[test]
    fn stable_clock_follows_the_done_ring_exactly() {
        // Commits from many threads over disjoint variables: every ticket is
        // announced and folded, so afterwards both clocks agree and every
        // write is visible at its variable's head version.
        let b = std::sync::Arc::new(MvccBackend::new());
        let vars: Vec<VarId> = (0..8).map(|_| b.alloc(0)).collect();
        std::thread::scope(|s| {
            for (t, &var) in vars.iter().enumerate() {
                let b = std::sync::Arc::clone(&b);
                s.spawn(move || {
                    for i in 1..=200 {
                        let mut d = txn(&b);
                        b.write(&mut d, var, (t as i64) * 1_000 + i).unwrap();
                        b.commit(&mut d).unwrap();
                    }
                });
            }
        });
        let alloc = b.alloc_clock.load(Ordering::SeqCst);
        let stable = b.stable_clock.load(Ordering::SeqCst);
        assert_eq!(alloc, stable, "every announced ticket was folded");
        assert_eq!(stable, 8 * 200);
        let mut check = txn(&b);
        for (t, &var) in vars.iter().enumerate() {
            assert_eq!(b.read(&mut check, var).unwrap(), (t as i64) * 1_000 + 200);
        }
        b.cleanup(&mut check);
    }

    #[test]
    fn multi_word_allocations_are_consecutive() {
        let b = MvccBackend::new();
        let base = b.alloc_words(&[1, 2, 3]);
        let mut t = txn(&b);
        for k in 0..3 {
            assert_eq!(b.read(&mut t, VarId(base.index() + k)).unwrap(), 1 + k as i64);
        }
        b.cleanup(&mut t);
    }
}
