//! The multi-version snapshot-isolation backend: the corner that gives up
//! **serializability** — and nothing an SI audit can see.
//!
//! Every STM word keeps a bounded chain of timestamped committed versions.
//! A transaction takes a **begin-timestamp snapshot** (the published commit
//! clock at `begin`) and every read returns the newest version no newer than
//! that snapshot — reads never block, never abort and never tear, even
//! across the words of a multi-word [`crate::TVar`].  Writes buffer until
//! commit, where **first-committer-wins** write-write conflict detection
//! runs: if any written variable gained a version newer than the snapshot,
//! the transaction aborts.  That is textbook snapshot isolation: lost
//! updates are impossible, long forks are impossible, but **write skew is
//! admitted** — two transactions reading the same snapshot and writing
//! disjoint variables both commit, producing histories that pass every SI
//! audit and fail the serializability audit.  This is the backend that
//! separates the repo's SI and SER verdicts on a live run.
//!
//! Mechanics:
//!
//! * **Commit tickets** — a committer acquires the per-variable chain locks
//!   of its write set in sorted order (deadlock-free), runs the
//!   first-committer-wins check, draws a ticket from the allocation clock,
//!   installs its versions and only then **publishes** the ticket in order
//!   on the stable clock.  Snapshots read the stable clock, so a snapshot
//!   never observes a half-installed commit.
//! * **Version-chain GC** — each commit prunes the chains it touched down to
//!   the newest version visible to the **oldest active snapshot** (tracked
//!   in a registry that `begin` joins and commit/abort leave).  A long-lived
//!   reader pins exactly one old version per chain; everything older is
//!   collected immediately, and once the reader ends the chains collapse.

use crate::backend::{Backend, VarId};
use crate::txn::{AbortReason, StmError, TxnData};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel pushed into [`TxnData::held_locks`] while the attempt's snapshot
/// is registered (the backend has no per-variable locks to track there).
const SNAPSHOT: VarId = VarId(usize::MAX);

/// One committed version of one variable.
#[derive(Debug, Clone, Copy)]
struct Version {
    /// Commit timestamp (ticket) that installed this version.
    ts: u64,
    /// The value.
    value: i64,
}

/// One variable: its committed version chain, oldest first.
struct Chain {
    versions: Mutex<Vec<Version>>,
}

/// The multi-version snapshot-isolation backend.
pub struct MvccBackend {
    chains: RwLock<Vec<Arc<Chain>>>,
    /// Ticket source: the next commit timestamp is `alloc_clock + 1`.
    alloc_clock: AtomicU64,
    /// Highest commit timestamp whose versions are fully installed; begin
    /// snapshots read this.
    stable_clock: AtomicU64,
    /// Active snapshot timestamps → how many transactions hold them.
    snapshots: Mutex<BTreeMap<u64, usize>>,
}

impl MvccBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        MvccBackend {
            chains: RwLock::new(Vec::new()),
            alloc_clock: AtomicU64::new(0),
            stable_clock: AtomicU64::new(0),
            snapshots: Mutex::new(BTreeMap::new()),
        }
    }

    fn chain(&self, var: VarId) -> Arc<Chain> {
        Arc::clone(&self.chains.read()[var.index()])
    }

    /// Deregister the attempt's snapshot (idempotent within the attempt:
    /// guarded by the [`SNAPSHOT`] sentinel, so the commit-success path and
    /// the cleanup path never double-release).
    fn end_snapshot(&self, data: &mut TxnData) {
        if data.held_locks.last() != Some(&SNAPSHOT) {
            return;
        }
        data.held_locks.pop();
        let mut snaps = self.snapshots.lock();
        if let Some(count) = snaps.get_mut(&data.start_ts) {
            *count -= 1;
            if *count == 0 {
                snaps.remove(&data.start_ts);
            }
        }
    }

    /// The oldest snapshot any live transaction still reads from; versions
    /// strictly older than the newest one visible to it are garbage.
    fn oldest_active_snapshot(&self) -> u64 {
        let snaps = self.snapshots.lock();
        snaps.keys().next().copied().unwrap_or_else(|| self.stable_clock.load(Ordering::Acquire))
    }

    /// How many versions `var`'s chain currently holds (diagnostics and GC
    /// tests).
    pub fn chain_len(&self, var: VarId) -> usize {
        self.chain(var).versions.lock().len()
    }
}

/// Drop every version strictly older than the newest one visible to
/// `oldest_snapshot` (that one must stay: it is what the oldest reader sees).
fn gc_chain(versions: &mut Vec<Version>, oldest_snapshot: u64) {
    let visible = versions.partition_point(|v| v.ts <= oldest_snapshot);
    if visible > 1 {
        versions.drain(..visible - 1);
    }
}

impl Default for MvccBackend {
    fn default() -> Self {
        MvccBackend::new()
    }
}

impl Backend for MvccBackend {
    fn alloc_words(&self, initials: &[i64]) -> VarId {
        let mut chains = self.chains.write();
        let base = chains.len();
        chains.extend(initials.iter().map(|&value| {
            Arc::new(Chain { versions: Mutex::new(vec![Version { ts: 0, value }]) })
        }));
        VarId(base)
    }

    fn begin(&self, data: &mut TxnData) {
        data.reset();
        // Register under the snapshot lock so GC (which takes the same lock
        // to compute the oldest active snapshot) can never prune a version
        // between our clock read and our registration.
        let mut snaps = self.snapshots.lock();
        let ts = self.stable_clock.load(Ordering::Acquire);
        *snaps.entry(ts).or_insert(0) += 1;
        drop(snaps);
        data.start_ts = ts;
        data.held_locks.push(SNAPSHOT);
    }

    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, StmError> {
        if let Some(v) = data.write_set.get(&var) {
            return Ok(*v);
        }
        if let Some(v) = data.read_cache.get(&var) {
            return Ok(*v);
        }
        let chain = self.chain(var);
        let versions = chain.versions.lock();
        // The newest version no newer than the snapshot.  GC keeps the
        // newest version visible to the oldest active snapshot, and ours is
        // registered, so this always exists.
        let idx = versions.partition_point(|v| v.ts <= data.start_ts);
        let version = versions[idx - 1];
        drop(versions);
        // No read validation ever runs (snapshots need none), so the cache
        // alone carries the read set.
        data.read_cache.insert(var, version.value);
        Ok(version.value)
    }

    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), StmError> {
        // Buffered; conflicts are detected at commit (first-committer-wins).
        data.write_set.insert(var, value);
        Ok(())
    }

    fn commit(&self, data: &mut TxnData) -> Result<(), StmError> {
        if data.write_set.is_empty() {
            // Read-only transactions commit for free: their snapshot was
            // consistent by construction.
            self.end_snapshot(data);
            return Ok(());
        }
        // Lock the written chains in ascending VarId order (the write set is
        // a BTreeMap) — every committer sorts the same way, so no deadlock.
        let chains: Vec<Arc<Chain>> = {
            let store = self.chains.read();
            data.write_set.keys().map(|v| Arc::clone(&store[v.index()])).collect()
        };
        let mut guards: Vec<_> = chains.iter().map(|c| c.versions.lock()).collect();
        // First-committer-wins: any version newer than our snapshot on a
        // variable we write means someone committed first.
        for guard in &guards {
            let newest = guard.last().expect("chains always hold at least one version");
            if newest.ts > data.start_ts {
                data.set_abort_reason(AbortReason::FirstCommitterWins);
                return Err(StmError::Aborted); // guards drop; cleanup ends the snapshot
            }
        }
        data.mark_validated();
        let commit_ts = self.alloc_clock.fetch_add(1, Ordering::AcqRel) + 1;
        let oldest = self.oldest_active_snapshot();
        for (guard, &value) in guards.iter_mut().zip(data.write_set.values()) {
            guard.push(Version { ts: commit_ts, value });
            gc_chain(guard, oldest);
        }
        drop(guards);
        // Publish in ticket order: a snapshot taken at stable clock `s` sees
        // exactly the fully-installed commits 1..=s.  Earlier ticket holders
        // are past their conflict checks and only installing, so this spin
        // always makes progress.
        let mut spins = 0u32;
        while self.stable_clock.load(Ordering::Acquire) != commit_ts - 1 {
            // Progress depends on the earlier ticket holder being scheduled:
            // yield periodically so an oversubscribed host runs it instead
            // of burning the quantum spinning.
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.stable_clock.store(commit_ts, Ordering::Release);
        self.end_snapshot(data);
        Ok(())
    }

    fn cleanup(&self, data: &mut TxnData) {
        self.end_snapshot(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(backend: &MvccBackend) -> TxnData {
        let mut data = TxnData::default();
        backend.begin(&mut data);
        data
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let b = MvccBackend::new();
        let v = b.alloc(1);
        let mut reader = txn(&b);
        assert_eq!(b.read(&mut reader, v).unwrap(), 1);

        // A writer commits a new version mid-flight.
        let mut writer = txn(&b);
        b.write(&mut writer, v, 2).unwrap();
        b.commit(&mut writer).unwrap();

        // The reader's snapshot is stable — even after dropping its cache.
        reader.read_cache.clear();
        assert_eq!(b.read(&mut reader, v).unwrap(), 1);
        assert!(b.commit(&mut reader).is_ok(), "read-only snapshots always commit");

        // A fresh snapshot sees the new version.
        let mut after = txn(&b);
        assert_eq!(b.read(&mut after, v).unwrap(), 2);
        b.cleanup(&mut after);
    }

    #[test]
    fn first_committer_wins_on_write_write_conflicts() {
        let b = MvccBackend::new();
        let v = b.alloc(0);
        let mut t1 = txn(&b);
        let mut t2 = txn(&b);
        b.read(&mut t1, v).unwrap();
        b.read(&mut t2, v).unwrap();
        b.write(&mut t1, v, 10).unwrap();
        b.write(&mut t2, v, 20).unwrap();
        assert!(b.commit(&mut t1).is_ok(), "first committer wins");
        assert_eq!(b.commit(&mut t2), Err(StmError::Aborted), "second conflicting commit loses");
        b.cleanup(&mut t2);
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, v).unwrap(), 10);
        b.cleanup(&mut check);
    }

    #[test]
    fn write_skew_is_admitted_by_design() {
        // T1 reads (x, y), writes x; T2 reads (x, y), writes y — same
        // snapshot, disjoint write sets: both commit.  SI, not SER.
        let b = MvccBackend::new();
        let x = b.alloc(0);
        let y = b.alloc(0);
        let mut t1 = txn(&b);
        let mut t2 = txn(&b);
        assert_eq!(b.read(&mut t1, x).unwrap(), 0);
        assert_eq!(b.read(&mut t1, y).unwrap(), 0);
        assert_eq!(b.read(&mut t2, x).unwrap(), 0);
        assert_eq!(b.read(&mut t2, y).unwrap(), 0);
        b.write(&mut t1, x, 7).unwrap();
        b.write(&mut t2, y, 8).unwrap();
        assert!(b.commit(&mut t1).is_ok());
        assert!(b.commit(&mut t2).is_ok(), "disjoint writes from one snapshot both commit");
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, x).unwrap(), 7);
        assert_eq!(b.read(&mut check, y).unwrap(), 8);
        b.cleanup(&mut check);
    }

    #[test]
    fn version_chains_are_gced_to_the_oldest_active_snapshot() {
        let b = MvccBackend::new();
        let v = b.alloc(0);
        // 50 commits before the long-lived reader exists.
        for i in 1..=50 {
            let mut w = txn(&b);
            b.write(&mut w, v, i).unwrap();
            b.commit(&mut w).unwrap();
        }
        let mut reader = txn(&b);
        assert_eq!(b.read(&mut reader, v).unwrap(), 50);

        // 50 more commits while the reader pins its snapshot.
        for i in 51..=100 {
            let mut w = txn(&b);
            b.write(&mut w, v, i).unwrap();
            b.commit(&mut w).unwrap();
        }
        // Everything older than the pinned version was collected; the pin
        // plus the versions newer than it remain.
        let pinned = b.chain_len(v);
        assert!(pinned <= 51, "chain holds the pin + newer versions, got {pinned}");
        assert!(pinned >= 51, "nothing newer than the pin may be collected, got {pinned}");
        // The reader still sees its snapshot, consistently.
        reader.read_cache.clear();
        assert_eq!(b.read(&mut reader, v).unwrap(), 50);
        b.cleanup(&mut reader);

        // Once the reader ends, the next commit collapses the chain.
        let mut w = txn(&b);
        b.write(&mut w, v, 101).unwrap();
        b.commit(&mut w).unwrap();
        assert!(b.chain_len(v) <= 2, "chain after GC: {}", b.chain_len(v));
        let mut check = txn(&b);
        assert_eq!(b.read(&mut check, v).unwrap(), 101);
        b.cleanup(&mut check);
    }

    #[test]
    fn aborted_attempts_leave_no_version_and_release_their_snapshot() {
        let b = MvccBackend::new();
        let v = b.alloc(3);
        let mut t = txn(&b);
        b.write(&mut t, v, 99).unwrap();
        b.cleanup(&mut t); // user abort
        assert_eq!(b.chain_len(v), 1, "buffered writes never land");
        assert!(b.snapshots.lock().is_empty(), "snapshot registry drained");
        // Commit-path failure also drains the registry.
        let mut t1 = txn(&b);
        let mut t2 = txn(&b);
        b.write(&mut t1, v, 1).unwrap();
        b.write(&mut t2, v, 2).unwrap();
        b.commit(&mut t1).unwrap();
        assert!(b.commit(&mut t2).is_err());
        b.cleanup(&mut t2);
        assert!(b.snapshots.lock().is_empty());
    }

    #[test]
    fn multi_word_allocations_are_consecutive() {
        let b = MvccBackend::new();
        let base = b.alloc_words(&[1, 2, 3]);
        let mut t = txn(&b);
        for k in 0..3 {
            assert_eq!(b.read(&mut t, VarId(base.index() + k)).unwrap(), 1 + k as i64);
        }
        b.cleanup(&mut t);
    }
}
