//! The no-synchronization backend: thread-local replicas, PRAM consistency only.
//!
//! Section 5 of the paper: weakening consistency to PRAM makes it *trivial* to be
//! strictly disjoint-access-parallel and wait-free — just never synchronize.  This
//! backend does exactly that: every thread keeps a private replica of each variable,
//! transactions read and write only the calling thread's replica, and commits are
//! no-ops.  Nothing ever blocks, nothing ever aborts, nothing is ever shared — and a
//! thread never observes another thread's writes.
//!
//! It exists so the benchmarks can put a number on what the consistency sacrifice
//! buys (and so the README can show, concretely, why that corner of the P/C/L
//! triangle is rarely what an application wants).

use crate::backend::{Backend, VarId};
use crate::txn::{StmError, TxnData};
use crate::vartable::VarTable;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

static NEXT_INSTANCE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread replicas, keyed by (backend instance, variable index).
    static REPLICAS: RefCell<HashMap<(usize, usize), i64>> = RefCell::new(HashMap::new());
}

/// The thread-local-replica backend.
pub struct PramLocalBackend {
    instance: usize,
    /// The allocation-time initial values (immutable after allocation; the
    /// atomic is only VarTable's interior-mutability requirement).
    initials: VarTable<AtomicI64>,
}

impl PramLocalBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        PramLocalBackend {
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            initials: VarTable::new(),
        }
    }

    fn local_read(&self, var: VarId) -> i64 {
        let initial = self.initials.get(var.index()).load(Ordering::Relaxed);
        REPLICAS.with(|r| *r.borrow().get(&(self.instance, var.index())).unwrap_or(&initial))
    }

    fn local_write(&self, var: VarId, value: i64) {
        REPLICAS.with(|r| {
            r.borrow_mut().insert((self.instance, var.index()), value);
        });
    }
}

impl Default for PramLocalBackend {
    fn default() -> Self {
        PramLocalBackend::new()
    }
}

impl Backend for PramLocalBackend {
    fn alloc_words(&self, words: &[i64]) -> VarId {
        VarId(self.initials.alloc_init(words.len(), |k, slot| {
            slot.store(words[k], Ordering::Relaxed);
        }))
    }

    fn begin(&self, data: &mut TxnData) {
        data.reset();
    }

    fn read(&self, data: &mut TxnData, var: VarId) -> Result<i64, StmError> {
        if let Some(v) = data.write_set.get(&var) {
            return Ok(*v);
        }
        if let Some(v) = data.read_cache.get(&var) {
            return Ok(*v);
        }
        let value = self.local_read(var);
        // Cache the first external read so (a) repeated reads are stable within
        // the attempt, matching the other backends, and (b) the commit-time
        // recorder hook sees this transaction's external read set.
        data.read_cache.insert(var, value);
        Ok(value)
    }

    fn write(&self, data: &mut TxnData, var: VarId, value: i64) -> Result<(), StmError> {
        data.write_set.insert(var, value);
        Ok(())
    }

    fn commit(&self, data: &mut TxnData) -> Result<(), StmError> {
        // No validation ever runs (PRAM needs none): all commit time is publish.
        data.mark_validated();
        // Publish the buffered writes to *this thread's* replica only.
        for (var, value) in &data.write_set {
            self.local_write(*var, *value);
        }
        Ok(())
    }

    fn cleanup(&self, _data: &mut TxnData) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_thread_sees_its_own_committed_writes() {
        let b = PramLocalBackend::new();
        let v = b.alloc(3);
        let mut d = TxnData::default();
        b.begin(&mut d);
        assert_eq!(b.read(&mut d, v).unwrap(), 3);
        b.write(&mut d, v, 8).unwrap();
        assert_eq!(b.read(&mut d, v).unwrap(), 8);
        b.commit(&mut d).unwrap();

        let mut d2 = TxnData::default();
        b.begin(&mut d2);
        assert_eq!(b.read(&mut d2, v).unwrap(), 8);
    }

    #[test]
    fn uncommitted_writes_are_invisible_even_to_the_same_thread() {
        let b = PramLocalBackend::new();
        let v = b.alloc(0);
        let mut d = TxnData::default();
        b.begin(&mut d);
        b.write(&mut d, v, 5).unwrap();
        b.cleanup(&mut d); // aborted

        let mut d2 = TxnData::default();
        b.begin(&mut d2);
        assert_eq!(b.read(&mut d2, v).unwrap(), 0);
    }

    #[test]
    fn other_threads_never_observe_the_writes() {
        let b = PramLocalBackend::new();
        let v = b.alloc(1);
        let mut d = TxnData::default();
        b.begin(&mut d);
        b.write(&mut d, v, 100).unwrap();
        b.commit(&mut d).unwrap();

        std::thread::scope(|s| {
            s.spawn(|| {
                let mut d = TxnData::default();
                b.begin(&mut d);
                assert_eq!(b.read(&mut d, v).unwrap(), 1);
            });
        });
    }

    #[test]
    fn two_instances_do_not_share_thread_local_state() {
        let b1 = PramLocalBackend::new();
        let b2 = PramLocalBackend::new();
        let v1 = b1.alloc(0);
        let v2 = b2.alloc(0);
        let mut d = TxnData::default();
        b1.begin(&mut d);
        b1.write(&mut d, v1, 9).unwrap();
        b1.commit(&mut d).unwrap();

        let mut d2 = TxnData::default();
        b2.begin(&mut d2);
        assert_eq!(b2.read(&mut d2, v2).unwrap(), 0);
    }
}
