//! Multi-view search: per-process serialization orders that agree on the order of
//! writes to the same data item.
//!
//! Processor consistency (Definition 3.2) and weak adaptive consistency
//! (Definition 3.3) let **each process have its own sequential view** but require that
//! *writes to the same data item appear in the same order in every view*.  This module
//! solves that joint search: one [`PlacementProblem`] per process, plus a set of
//! transaction pairs whose write points must be ordered identically everywhere.
//!
//! The search proceeds process by process.  Whenever a view is found for process `i`,
//! the relative order it chose for every agreement pair is added as a hard ordering
//! constraint for the remaining processes; if a later process cannot satisfy them the
//! search backtracks into process `i`'s enumeration.

use crate::placement::{enumerate_placements, PlacementProblem};
use std::collections::BTreeMap;
use tm_model::{ProcId, TxId};

/// The per-process component of a multi-view problem.
#[derive(Debug, Clone)]
pub struct View {
    /// The process whose view this is.
    pub proc: ProcId,
    /// The placement problem encoding this process's constraints (windows, adjacency,
    /// precedence, legality of this process's own reads).
    pub problem: PlacementProblem,
    /// For each transaction, the index of its *write* serialization point in
    /// `problem.points` (for single-point conditions this is the transaction's only
    /// point).  Only transactions that write at least one item need appear.
    pub write_point: BTreeMap<TxId, usize>,
}

/// A joint multi-view problem.
#[derive(Debug, Clone, Default)]
pub struct MultiViewProblem {
    /// One view per process that needs one.
    pub views: Vec<View>,
    /// Pairs of transactions that write a common data item: their write points must be
    /// ordered the same way in every view.
    pub agreement_pairs: Vec<(TxId, TxId)>,
}

/// A solution: for every view, the chosen order of its points (indices into the
/// view's `problem.points`).
pub type MultiViewSolution = Vec<(ProcId, Vec<usize>)>;

/// Solve the joint problem, returning the first solution found.
pub fn solve_multiview(mv: &MultiViewProblem) -> Option<MultiViewSolution> {
    // Fast necessary condition: every view must be satisfiable on its own (the joint
    // problem only *adds* constraints).  This lets a single impossible view reject the
    // whole problem without enumerating placements of the other views.
    for view in &mv.views {
        crate::placement::find_placement(&view.problem)?;
    }
    let mut solution: Vec<(ProcId, Vec<usize>)> = Vec::new();
    let mut constraints: BTreeMap<(TxId, TxId), bool> = BTreeMap::new();
    if solve_rec(mv, 0, &mut constraints, &mut solution) {
        Some(solution)
    } else {
        None
    }
}

/// Recursive helper: solve views `[index..]` under the accumulated agreement
/// decisions (`(a, b) -> true` means "a's write point precedes b's").
fn solve_rec(
    mv: &MultiViewProblem,
    index: usize,
    constraints: &mut BTreeMap<(TxId, TxId), bool>,
    solution: &mut Vec<(ProcId, Vec<usize>)>,
) -> bool {
    if index == mv.views.len() {
        return true;
    }
    let view = &mv.views[index];

    // Instantiate the accumulated agreement decisions as ordering constraints.
    let mut problem = view.problem.clone();
    for ((a, b), a_first) in constraints.iter() {
        if let (Some(&pa), Some(&pb)) = (view.write_point.get(a), view.write_point.get(b)) {
            if *a_first {
                problem.require_order(pa, pb);
            } else {
                problem.require_order(pb, pa);
            }
        }
    }

    let mut success = false;
    enumerate_placements(&problem, &mut |order| {
        // Record the decisions this placement makes for still-undecided pairs.
        let position: BTreeMap<usize, usize> =
            order.iter().enumerate().map(|(pos, &pt)| (pt, pos)).collect();
        let mut new_decisions = Vec::new();
        let mut consistent = true;
        for (a, b) in &mv.agreement_pairs {
            let (pa, pb) = match (view.write_point.get(a), view.write_point.get(b)) {
                (Some(&pa), Some(&pb)) => (pa, pb),
                _ => continue,
            };
            let a_first = position[&pa] < position[&pb];
            match constraints.get(&(*a, *b)) {
                Some(prev) if *prev != a_first => {
                    consistent = false;
                    break;
                }
                Some(_) => {}
                None => new_decisions.push(((*a, *b), a_first)),
            }
        }
        if !consistent {
            return false; // try another placement for this view
        }
        for (pair, decision) in &new_decisions {
            constraints.insert(*pair, *decision);
        }
        solution.push((view.proc, order.to_vec()));

        if solve_rec(mv, index + 1, constraints, solution) {
            success = true;
            return true; // stop enumeration, bubble success up
        }

        solution.pop();
        for (pair, _) in &new_decisions {
            constraints.remove(pair);
        }
        false
    });
    success
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::{Block, BlockOp};
    use crate::placement::Point;
    use tm_model::DataItem;

    fn write_block(label: &str, item: &str, v: i64) -> Block {
        Block {
            label: label.into(),
            ops: vec![BlockOp::Write { item: DataItem::new(item), value: v }],
            check_reads: false,
        }
    }
    fn read_block(label: &str, reads: &[(&str, i64)]) -> Block {
        Block {
            label: label.into(),
            ops: reads
                .iter()
                .map(|(i, v)| BlockOp::Read { item: DataItem::new(*i), value: *v })
                .collect(),
            check_reads: true,
        }
    }

    /// Build a single-point-per-transaction view for a process.
    fn simple_view(proc: usize, blocks: Vec<(TxId, Block)>) -> View {
        let mut problem = PlacementProblem::new();
        let mut write_point = BTreeMap::new();
        for (tx, block) in blocks {
            let has_writes = block.has_writes();
            let idx = problem.add_point(Point { label: block.label.clone(), window: None, block });
            if has_writes {
                write_point.insert(tx, idx);
            }
        }
        View { proc: ProcId(proc), problem, write_point }
    }

    #[test]
    fn independent_views_solve_trivially() {
        // Two writers to different items; no agreement needed.
        let mv = MultiViewProblem {
            views: vec![
                simple_view(
                    0,
                    vec![
                        (TxId(0), write_block("T1", "x", 1)),
                        (TxId(1), write_block("T2", "y", 2)),
                    ],
                ),
                simple_view(
                    1,
                    vec![
                        (TxId(0), write_block("T1", "x", 1)),
                        (TxId(1), write_block("T2", "y", 2)),
                    ],
                ),
            ],
            agreement_pairs: vec![],
        };
        let sol = solve_multiview(&mv).expect("solvable");
        assert_eq!(sol.len(), 2);
    }

    #[test]
    fn agreement_pair_forces_same_order_in_every_view() {
        // T1 writes x=1 and y=1; T2 writes x=2 and z=2 (both write x).
        // Reader R1 (process p1) sees x=2 and y=1  ⇒ its view needs T1 < T2 < R1.
        // Reader R2 (process p2) sees x=1 and z=2  ⇒ its view needs T2 < T1 < R2.
        // With write-order agreement on (T1, T2) the joint problem is unsolvable
        // (this is the classic processor-consistency violation); without agreement —
        // i.e. PRAM consistency — each view is independent and it is solvable.
        let t1 = Block {
            label: "T1".into(),
            ops: vec![
                BlockOp::Write { item: DataItem::new("x"), value: 1 },
                BlockOp::Write { item: DataItem::new("y"), value: 1 },
            ],
            check_reads: false,
        };
        let t2 = Block {
            label: "T2".into(),
            ops: vec![
                BlockOp::Write { item: DataItem::new("x"), value: 2 },
                BlockOp::Write { item: DataItem::new("z"), value: 2 },
            ],
            check_reads: false,
        };
        let p1_views = vec![
            (TxId(0), t1.clone()),
            (TxId(1), t2.clone()),
            (TxId(2), read_block("R1", &[("x", 2), ("y", 1)])),
        ];
        let p2_views =
            vec![(TxId(0), t1), (TxId(1), t2), (TxId(3), read_block("R2", &[("x", 1), ("z", 2)]))];
        let with_agreement = MultiViewProblem {
            views: vec![simple_view(0, p1_views.clone()), simple_view(1, p2_views.clone())],
            agreement_pairs: vec![(TxId(0), TxId(1))],
        };
        assert!(solve_multiview(&with_agreement).is_none());

        let without_agreement = MultiViewProblem {
            views: vec![simple_view(0, p1_views), simple_view(1, p2_views)],
            agreement_pairs: vec![],
        };
        assert!(solve_multiview(&without_agreement).is_some());
    }

    #[test]
    fn backtracking_across_views_finds_the_compatible_order() {
        // In p1's view both orders of T1/T2 are legal; p2's view only works with
        // T2 < T1.  The solver must backtrack p1's first choice.
        let p1 = simple_view(
            0,
            vec![(TxId(0), write_block("T1", "x", 1)), (TxId(1), write_block("T2", "x", 2))],
        );
        let p2 = simple_view(
            1,
            vec![
                (TxId(0), write_block("T1", "x", 1)),
                (TxId(1), write_block("T2", "x", 2)),
                (TxId(2), read_block("R", &[("x", 1)])),
            ],
        );
        let mv =
            MultiViewProblem { views: vec![p1, p2], agreement_pairs: vec![(TxId(0), TxId(1))] };
        let sol = solve_multiview(&mv).expect("solvable with T2 before T1");
        assert_eq!(sol.len(), 2);
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let sol = solve_multiview(&MultiViewProblem::default()).unwrap();
        assert!(sol.is_empty());
    }
}
