//! # tm-consistency — executable consistency conditions for transactional memory
//!
//! This crate turns the consistency conditions of the PCL paper (and the conditions it
//! compares against) into decision procedures over recorded executions:
//!
//! | Condition | Module | Paper reference |
//! |---|---|---|
//! | sequential legality                  | [`legality`]           | Section 3, "Histories" |
//! | serializability                      | [`serializability`]    | Papadimitriou \[30\] |
//! | strict serializability               | [`serializability`]    | \[30\] |
//! | (weak) snapshot isolation            | [`snapshot_isolation`] | Definition 3.1 |
//! | processor consistency                | [`processor`]          | Definition 3.2 |
//! | PRAM consistency                     | [`pram`]               | Lipton & Sandberg \[28\] |
//! | causal serializability               | [`causal`]             | Raynal et al. \[32\] |
//! | consistency groups / partitions      | [`groups`]             | Definition 3.3 preliminaries |
//! | **weak adaptive consistency**        | [`weak_adaptive`]      | Definition 3.3 |
//!
//! All of the searched conditions are existentially quantified over serialization
//! points, per-process views, consistency partitions and `com(α)` sets; the checkers
//! perform a pruned exhaustive search over exactly those objects (see [`placement`]).
//! The search is exponential in the worst case — that is inherent to the definitions —
//! but the scenarios of the paper involve at most seven transactions and the checkers
//! decide them in well under a millisecond.
//!
//! Every checker returns a [`report::CheckResult`] carrying either a human-readable
//! *witness* (the serialization order / partition that satisfies the condition) or a
//! *violation* explanation, so the theorem driver in `pcl-theorem` can print exactly
//! why a candidate TM implementation loses Consistency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod comset;
pub mod groups;
pub mod legality;
pub mod multiview;
pub mod placement;
pub mod pram;
pub mod processor;
pub mod report;
pub mod serializability;
pub mod snapshot_isolation;
pub mod weak_adaptive;

pub use report::{CheckResult, CommitOrderWitness, ConditionMatrix};

use tm_model::Execution;

/// Run every consistency checker on an execution and collect the results into a
/// matrix row (used by the P/C/L verdict machinery and the examples).
pub fn check_all(execution: &Execution) -> ConditionMatrix {
    let mut matrix = ConditionMatrix::new();
    matrix.push(serializability::check_serializability(execution));
    matrix.push(serializability::check_strict_serializability(execution));
    matrix.push(snapshot_isolation::check_snapshot_isolation(execution));
    matrix.push(processor::check_processor_consistency(execution));
    matrix.push(pram::check_pram(execution));
    matrix.push(causal::check_causal_serializability(execution));
    matrix.push(weak_adaptive::check_weak_adaptive(execution));
    matrix
}
