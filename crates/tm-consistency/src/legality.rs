//! Sequential legality: the ground truth every consistency condition reduces to.
//!
//! The paper (Section 3, "Histories"): a transaction `T` is *legal* in a sequential
//! history `H` if every `x.read()` of `T` that returns `v` satisfies
//!
//! 1. if `T` wrote `x` before the read, `v` is the argument of `T`'s last such write;
//! 2. otherwise, if a committed transaction preceding `T` in `H` wrote `x`, `v` is the
//!    argument of the last such write;
//! 3. otherwise `v` is the initial value of `x` (0).
//!
//! All searched conditions (serializability, snapshot isolation, processor
//! consistency, weak adaptive consistency, …) construct candidate sequential histories
//! made of *blocks* — a block being either a whole transaction `H|T`, its global-read
//! part `Tgr`, or its write part `Tw` — and then ask whether the blocks are legal in
//! the candidate order.  [`Block`] and [`MemoryState`] implement that evaluation with
//! O(1) undo so the placement search in [`crate::placement`] can check legality
//! incrementally while backtracking.

use std::collections::HashMap;
use tm_model::{DataItem, History, TxId};

/// One operation inside a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockOp {
    /// A read of `item` that returned `value` in the actual history; legality requires
    /// the candidate sequential history to justify exactly this value.
    Read {
        /// The data item read.
        item: DataItem,
        /// The value the read returned in the recorded history.
        value: i64,
    },
    /// A write of `value` to `item`.
    Write {
        /// The data item written.
        item: DataItem,
        /// The value written.
        value: i64,
    },
}

/// A block of a candidate sequential history: a (possibly partial) transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Human-readable label used in witnesses (`"T1.w"`, `"T3.gr"`, `"T2"`, …).
    pub label: String,
    /// The operations of the block, in order.
    pub ops: Vec<BlockOp>,
    /// Whether the reads of this block must be justified.  Per-process conditions
    /// (processor consistency, weak adaptive consistency) only require the reads of
    /// the transactions *executed by that process* to be legal in its view; blocks of
    /// other processes participate with their writes but their reads are not checked.
    pub check_reads: bool,
}

impl Block {
    /// Build the `Tgr` block of a transaction: its *global* reads followed by commit.
    pub fn global_reads(
        label: impl Into<String>,
        history: &History,
        tx: TxId,
        check: bool,
    ) -> Block {
        Block {
            label: label.into(),
            ops: history
                .global_reads_of(tx)
                .into_iter()
                .map(|(item, value)| BlockOp::Read { item, value })
                .collect(),
            check_reads: check,
        }
    }

    /// Build the `Tw` block of a transaction: its writes followed by commit.
    pub fn writes(label: impl Into<String>, history: &History, tx: TxId) -> Block {
        Block {
            label: label.into(),
            ops: history
                .writes_of(tx)
                .into_iter()
                .map(|(item, value)| BlockOp::Write { item, value })
                .collect(),
            check_reads: false,
        }
    }

    /// Build the full `H|T` block of a transaction: all its successful reads and
    /// writes, interleaved in program order.
    pub fn full(label: impl Into<String>, history: &History, tx: TxId, check: bool) -> Block {
        let mut ops = Vec::new();
        let reads = history.reads_of(tx);
        let writes = history.writes_of(tx);
        // Reconstruct program order from the subhistory.
        let mut r_iter = reads.into_iter().peekable();
        let mut w_iter = writes.into_iter().peekable();
        for ev in history.subhistory(tx) {
            match ev {
                tm_model::TmEvent::RespRead {
                    result: tm_model::history::ReadResult::Value(_),
                    ..
                } => {
                    if let Some((item, value)) = r_iter.next() {
                        ops.push(BlockOp::Read { item, value });
                    }
                }
                tm_model::TmEvent::RespWrite { ok: true, .. } => {
                    if let Some((item, value)) = w_iter.next() {
                        ops.push(BlockOp::Write { item, value });
                    }
                }
                _ => {}
            }
        }
        Block { label: label.into(), ops, check_reads: check }
    }

    /// Whether the block contains any write.
    pub fn has_writes(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, BlockOp::Write { .. }))
    }

    /// Whether the block contains any checked read.
    pub fn has_checked_reads(&self) -> bool {
        self.check_reads && self.ops.iter().any(|op| matches!(op, BlockOp::Read { .. }))
    }
}

/// The evolving state of data items while evaluating a candidate sequential history,
/// with an undo log so the placement search can backtrack cheaply.
#[derive(Debug, Default)]
pub struct MemoryState {
    values: HashMap<DataItem, i64>,
    undo: Vec<Vec<(DataItem, Option<i64>)>>,
}

impl MemoryState {
    /// Fresh state: every data item holds its initial value (0).
    pub fn new() -> Self {
        MemoryState::default()
    }

    /// Current value of an item (0 if never written).
    pub fn value(&self, item: &DataItem) -> i64 {
        self.values.get(item).copied().unwrap_or(DataItem::INITIAL_VALUE)
    }

    /// Apply a block.  Returns `Err(reason)` — without applying anything — if a
    /// checked read is not justified by the current state (plus the block's own
    /// earlier writes).  On success pushes an undo frame; call [`MemoryState::undo`]
    /// to revert.
    pub fn apply_block(&mut self, block: &Block) -> Result<(), String> {
        // First pass: validate reads against current state + own earlier writes.
        let mut local: HashMap<&DataItem, i64> = HashMap::new();
        for op in &block.ops {
            match op {
                BlockOp::Read { item, value } => {
                    if block.check_reads {
                        let expected = local.get(item).copied().unwrap_or_else(|| self.value(item));
                        if expected != *value {
                            return Err(format!(
                                "{}: read of {} returned {} but the last write before it gives {}",
                                block.label, item, value, expected
                            ));
                        }
                    }
                }
                BlockOp::Write { item, value } => {
                    local.insert(item, *value);
                }
            }
        }
        // Second pass: commit the writes, recording an undo frame.
        let mut frame = Vec::new();
        for op in &block.ops {
            if let BlockOp::Write { item, value } = op {
                let old = self.values.insert(item.clone(), *value);
                frame.push((item.clone(), old));
            }
        }
        self.undo.push(frame);
        Ok(())
    }

    /// Revert the most recent successful [`MemoryState::apply_block`].
    pub fn undo(&mut self) {
        if let Some(frame) = self.undo.pop() {
            // Undo in reverse order so repeated writes to the same item restore correctly.
            for (item, old) in frame.into_iter().rev() {
                match old {
                    Some(v) => {
                        self.values.insert(item, v);
                    }
                    None => {
                        self.values.remove(&item);
                    }
                }
            }
        }
    }

    /// Depth of the undo stack (number of applied blocks).
    pub fn depth(&self) -> usize {
        self.undo.len()
    }
}

/// Check a complete candidate sequential history (an ordered list of blocks).
/// Returns `Ok(())` if every checked read is legal, otherwise the first violation.
pub fn check_block_sequence<'a>(blocks: impl IntoIterator<Item = &'a Block>) -> Result<(), String> {
    let mut state = MemoryState::new();
    for block in blocks {
        state.apply_block(block)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(item: &str, value: i64) -> BlockOp {
        BlockOp::Read { item: DataItem::new(item), value }
    }
    fn write(item: &str, value: i64) -> BlockOp {
        BlockOp::Write { item: DataItem::new(item), value }
    }
    fn block(label: &str, ops: Vec<BlockOp>) -> Block {
        Block { label: label.into(), ops, check_reads: true }
    }

    #[test]
    fn initial_values_are_zero() {
        let b = block("T1", vec![read("x", 0)]);
        assert!(check_block_sequence([&b]).is_ok());
        let bad = block("T1", vec![read("x", 5)]);
        assert!(check_block_sequence([&bad]).is_err());
    }

    #[test]
    fn reads_see_last_preceding_write() {
        let w1 = block("T1.w", vec![write("x", 1)]);
        let w2 = block("T2.w", vec![write("x", 2)]);
        let r_ok = block("T3.gr", vec![read("x", 2)]);
        let r_stale = block("T3.gr", vec![read("x", 1)]);
        assert!(check_block_sequence([&w1, &w2, &r_ok]).is_ok());
        assert!(check_block_sequence([&w1, &w2, &r_stale]).is_err());
        assert!(check_block_sequence([&w2, &w1, &r_stale]).is_ok());
    }

    #[test]
    fn own_writes_shadow_earlier_writers() {
        let w1 = block("T1.w", vec![write("x", 1)]);
        let t2 = block("T2", vec![write("x", 7), read("x", 7)]);
        assert!(check_block_sequence([&w1, &t2]).is_ok());
        let t2_bad = block("T2", vec![write("x", 7), read("x", 1)]);
        assert!(check_block_sequence([&w1, &t2_bad]).is_err());
    }

    #[test]
    fn unchecked_reads_never_fail() {
        let mut b = block("other", vec![read("x", 99)]);
        b.check_reads = false;
        assert!(check_block_sequence([&b]).is_ok());
        assert!(!b.has_checked_reads());
        assert!(!b.has_writes());
    }

    #[test]
    fn undo_restores_previous_values() {
        let mut st = MemoryState::new();
        let w1 = block("T1.w", vec![write("x", 1), write("y", 2)]);
        let w2 = block("T2.w", vec![write("x", 3)]);
        st.apply_block(&w1).unwrap();
        st.apply_block(&w2).unwrap();
        assert_eq!(st.value(&DataItem::new("x")), 3);
        st.undo();
        assert_eq!(st.value(&DataItem::new("x")), 1);
        assert_eq!(st.value(&DataItem::new("y")), 2);
        st.undo();
        assert_eq!(st.value(&DataItem::new("x")), 0);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn failed_apply_does_not_change_state() {
        let mut st = MemoryState::new();
        let bad = block("T1", vec![read("x", 9), write("x", 1)]);
        assert!(st.apply_block(&bad).is_err());
        assert_eq!(st.value(&DataItem::new("x")), 0);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn repeated_writes_to_same_item_undo_correctly() {
        let mut st = MemoryState::new();
        let b = block("T1.w", vec![write("x", 1), write("x", 2)]);
        st.apply_block(&b).unwrap();
        assert_eq!(st.value(&DataItem::new("x")), 2);
        st.undo();
        assert_eq!(st.value(&DataItem::new("x")), 0);
    }

    #[test]
    fn block_builders_extract_from_history() {
        use tm_model::history::ReadResult;
        use tm_model::prelude::*;
        // T1 writes x=1 then reads x (local read) and reads y (global read).
        let mut h = History::new();
        let t = TxId(0);
        let x = DataItem::new("x");
        let y = DataItem::new("y");
        h.push(ProcId(0), TmEvent::InvBegin { tx: t });
        h.push(ProcId(0), TmEvent::RespBegin { tx: t });
        h.push(ProcId(0), TmEvent::InvWrite { tx: t, item: x.clone(), value: 1 });
        h.push(ProcId(0), TmEvent::RespWrite { tx: t, item: x.clone(), ok: true });
        h.push(ProcId(0), TmEvent::InvRead { tx: t, item: x.clone() });
        h.push(
            ProcId(0),
            TmEvent::RespRead { tx: t, item: x.clone(), result: ReadResult::Value(1) },
        );
        h.push(ProcId(0), TmEvent::InvRead { tx: t, item: y.clone() });
        h.push(
            ProcId(0),
            TmEvent::RespRead { tx: t, item: y.clone(), result: ReadResult::Value(0) },
        );
        h.push(ProcId(0), TmEvent::InvCommit { tx: t });
        h.push(ProcId(0), TmEvent::RespCommit { tx: t, committed: true });

        let gr = Block::global_reads("T1.gr", &h, t, true);
        assert_eq!(gr.ops, vec![read("y", 0)]);
        let w = Block::writes("T1.w", &h, t);
        assert_eq!(w.ops, vec![write("x", 1)]);
        assert!(w.has_writes());
        let full = Block::full("T1", &h, t, true);
        assert_eq!(full.ops, vec![write("x", 1), read("x", 1), read("y", 0)]);
        // The full block is legal on its own: the local read sees the own write.
        assert!(check_block_sequence([&full]).is_ok());
    }
}
