//! Consistency groups and consistency partitions (preliminaries of Definition 3.3).
//!
//! A *consistency group* `G(Tl, Tr)` of an execution α is the set of transactions
//! whose `begin` invocation falls between `begin_Tl` and `begin_Tr` (inclusive).  A
//! *consistency partition* `P(α)` is a sequence of groups that covers every
//! transaction of α, contiguously and in `begin` order.  Weak adaptive consistency
//! then labels every group as either a *snapshot isolation* group or a *processor
//! consistency* group.
//!
//! Because groups are contiguous blocks of the `begin`-ordered transaction list, a
//! partition is exactly a *composition* of that list, and there are `2^(k-1)` of them
//! for `k` transactions.  [`enumerate_partitions`] yields them all; the weak adaptive
//! consistency checker iterates over partitions and labelings.

use tm_model::execution::Interval;
use tm_model::{Execution, TxId};

/// How a consistency group is labeled in Definition 3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// The group belongs to `SI(P(α))`: per-transaction interval constraints.
    SnapshotIsolation,
    /// The group belongs to `PC(P(α))`: adjacency constraints and a group-wide window.
    ProcessorConsistency,
}

/// One consistency group: a contiguous run of transactions in `begin` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// The transactions of the group, in `begin` order.
    pub members: Vec<TxId>,
    /// The group's *active execution interval*: from the first event of its first
    /// member to the last event of any member.
    pub interval: Interval,
}

impl Group {
    /// Whether a transaction belongs to this group.
    pub fn contains(&self, tx: TxId) -> bool {
        self.members.contains(&tx)
    }
}

/// A consistency partition: contiguous groups covering every transaction of α.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The groups, in order.
    pub groups: Vec<Group>,
}

impl Partition {
    /// The group index a transaction belongs to.
    pub fn group_of(&self, tx: TxId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(tx))
    }

    /// Render the partition as `{T1 T2} {T3}` for witnesses.
    pub fn render(&self) -> String {
        self.groups
            .iter()
            .map(|g| {
                let names: Vec<String> = g.members.iter().map(|t| t.to_string()).collect();
                format!("{{{}}}", names.join(" "))
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Compute the active interval of a set of transactions: from the first event of the
/// earliest-beginning member to the last event of any member.
fn group_interval(execution: &Execution, members: &[TxId]) -> Interval {
    let intervals = execution.active_intervals();
    let mut start = usize::MAX;
    let mut end = 0usize;
    for tx in members {
        if let Some(iv) = intervals.get(tx) {
            start = start.min(iv.start);
            end = end.max(iv.end);
        }
    }
    if start == usize::MAX {
        Interval { start: 0, end: 0 }
    } else {
        Interval { start, end }
    }
}

/// Enumerate every consistency partition of the execution (every composition of the
/// `begin`-ordered transaction list into contiguous non-empty groups).
pub fn enumerate_partitions(execution: &Execution) -> Vec<Partition> {
    let order = execution.history().begin_order();
    let k = order.len();
    if k == 0 {
        return vec![Partition { groups: vec![] }];
    }
    let mut partitions = Vec::new();
    // Each of the k-1 gaps between consecutive transactions is either a group boundary
    // or not: iterate over all 2^(k-1) bitmasks.
    let boundaries = 1usize << (k - 1);
    for mask in 0..boundaries {
        let mut groups = Vec::new();
        let mut current = vec![order[0]];
        for (gap, tx) in order.iter().enumerate().skip(1) {
            if mask & (1 << (gap - 1)) != 0 {
                groups.push(current);
                current = vec![*tx];
            } else {
                current.push(*tx);
            }
        }
        groups.push(current);
        partitions.push(Partition {
            groups: groups
                .into_iter()
                .map(|members| Group { interval: group_interval(execution, &members), members })
                .collect(),
        });
    }
    partitions
}

/// Enumerate every SI/PC labeling of a partition (`2^groups` of them).
pub fn enumerate_labelings(partition: &Partition) -> Vec<Vec<GroupKind>> {
    let k = partition.groups.len();
    let mut out = Vec::with_capacity(1 << k);
    for mask in 0..(1usize << k) {
        out.push(
            (0..k)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        GroupKind::ProcessorConsistency
                    } else {
                        GroupKind::SnapshotIsolation
                    }
                })
                .collect(),
        );
    }
    out
}

/// Render a labeling alongside its partition for witnesses.
pub fn render_labeling(partition: &Partition, labeling: &[GroupKind]) -> String {
    partition
        .groups
        .iter()
        .zip(labeling)
        .map(|(g, kind)| {
            let names: Vec<String> = g.members.iter().map(|t| t.to_string()).collect();
            let tag = match kind {
                GroupKind::SnapshotIsolation => "SI",
                GroupKind::ProcessorConsistency => "PC",
            };
            format!("{tag}{{{}}}", names.join(" "))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::TmEvent;
    use tm_model::step::Event;
    use tm_model::ProcId;

    /// Build an execution whose history begins three transactions in order T1, T2, T3,
    /// each with a begin and a commit event (enough structure for interval tests).
    fn three_tx_execution() -> Execution {
        let mut e = Execution::new();
        for (p, t) in [(0usize, 0usize), (1, 1), (2, 2)] {
            e.push(Event::Tm { proc: ProcId(p), event: TmEvent::InvBegin { tx: TxId(t) } });
            e.push(Event::Tm { proc: ProcId(p), event: TmEvent::RespBegin { tx: TxId(t) } });
            e.push(Event::Tm { proc: ProcId(p), event: TmEvent::InvCommit { tx: TxId(t) } });
            e.push(Event::Tm {
                proc: ProcId(p),
                event: TmEvent::RespCommit { tx: TxId(t), committed: true },
            });
        }
        e
    }

    #[test]
    fn partition_count_is_two_to_the_k_minus_one() {
        let e = three_tx_execution();
        let partitions = enumerate_partitions(&e);
        assert_eq!(partitions.len(), 4); // 2^(3-1)
                                         // The coarsest partition has one group containing all three transactions.
        assert!(partitions.iter().any(|p| p.groups.len() == 1 && p.groups[0].members.len() == 3));
        // The finest has three singleton groups.
        assert!(partitions.iter().any(|p| p.groups.len() == 3));
    }

    #[test]
    fn groups_are_contiguous_in_begin_order() {
        let e = three_tx_execution();
        for p in enumerate_partitions(&e) {
            let flattened: Vec<TxId> = p.groups.iter().flat_map(|g| g.members.clone()).collect();
            assert_eq!(flattened, vec![TxId(0), TxId(1), TxId(2)]);
            for g in &p.groups {
                assert!(!g.members.is_empty());
            }
        }
    }

    #[test]
    fn group_intervals_span_member_events() {
        let e = three_tx_execution();
        let partitions = enumerate_partitions(&e);
        let coarse = partitions.iter().find(|p| p.groups.len() == 1).unwrap();
        assert_eq!(coarse.groups[0].interval, Interval { start: 0, end: 11 });
        let fine = partitions.iter().find(|p| p.groups.len() == 3).unwrap();
        assert_eq!(fine.groups[0].interval, Interval { start: 0, end: 3 });
        assert_eq!(fine.groups[2].interval, Interval { start: 8, end: 11 });
    }

    #[test]
    fn group_lookup_and_render() {
        let e = three_tx_execution();
        let partitions = enumerate_partitions(&e);
        let two = partitions.iter().find(|p| p.groups.len() == 2).unwrap();
        assert!(two.group_of(TxId(0)).is_some());
        assert!(two.group_of(TxId(9)).is_none());
        let rendered = two.render();
        assert!(rendered.contains("T1"));
        assert!(rendered.starts_with('{'));
    }

    #[test]
    fn labelings_cover_all_combinations() {
        let e = three_tx_execution();
        let partitions = enumerate_partitions(&e);
        let fine = partitions.iter().find(|p| p.groups.len() == 3).unwrap();
        let labelings = enumerate_labelings(fine);
        assert_eq!(labelings.len(), 8);
        assert!(labelings.iter().any(|l| l.iter().all(|k| *k == GroupKind::SnapshotIsolation)));
        assert!(labelings.iter().any(|l| l.iter().all(|k| *k == GroupKind::ProcessorConsistency)));
        let rendered = render_labeling(fine, &labelings[1]);
        assert!(rendered.contains("SI") || rendered.contains("PC"));
    }

    #[test]
    fn empty_execution_has_one_trivial_partition() {
        let e = Execution::new();
        let partitions = enumerate_partitions(&e);
        assert_eq!(partitions.len(), 1);
        assert!(partitions[0].groups.is_empty());
    }
}
