//! Causal serializability (Raynal, Thia-Kime & Ahamad \[32\]).
//!
//! Causal serializability strengthens processor consistency: every process's
//! sequential view must respect the *causality relation* on transactions — the
//! transitive closure of per-process program order and the *reads-from* relation
//! (`T1 → T2` when `T2` reads a value written by `T1`).
//!
//! **Provenance approximation.**  The recorded history tells us which *value* a read
//! returned, not which transaction produced it.  When exactly one transaction of
//! `com(α)` wrote that value to that item we add the reads-from edge; when the writer
//! is ambiguous (several transactions wrote the same value to the same item) we omit
//! the edge, which can only make the checker more permissive — i.e. a reported
//! violation is always a real violation.  The scenarios used in the experiments write
//! distinct values, so the approximation is exact there.

use crate::comset::{com_candidates, render_com};
use crate::legality::Block;
use crate::multiview::{solve_multiview, MultiViewProblem, View};
use crate::placement::{PlacementProblem, Point};
use crate::processor::{agreement_pairs, relevant_processes};
use crate::report::CheckResult;
use std::collections::{BTreeMap, BTreeSet};
use tm_model::{Execution, History, ProcId, TxId};

/// Name under which the result appears in a [`crate::ConditionMatrix`].
pub const CAUSAL_SERIALIZABILITY: &str = "causal serializability";

/// Compute the causality relation (as a set of ordered pairs, transitively closed)
/// over the transactions of `com`.
pub fn causal_order(history: &History, com: &[TxId]) -> BTreeSet<(TxId, TxId)> {
    let mut edges: BTreeSet<(TxId, TxId)> = BTreeSet::new();
    // Program order.
    for a in com {
        for b in com {
            if a != b && history.proc_of(*a) == history.proc_of(*b) && history.precedes(*a, *b) {
                edges.insert((*a, *b));
            }
        }
    }
    // Reads-from with unambiguous provenance.
    for reader in com {
        for (item, value) in history.global_reads_of(*reader) {
            let writers: Vec<TxId> = com
                .iter()
                .copied()
                .filter(|w| w != reader)
                .filter(|w| history.final_writes_of(*w).get(&item) == Some(&value))
                .collect();
            if writers.len() == 1 {
                edges.insert((writers[0], *reader));
            }
        }
    }
    // Transitive closure (Floyd–Warshall style over the small transaction set).
    let txs: Vec<TxId> = com.to_vec();
    loop {
        let mut added = false;
        for a in &txs {
            for b in &txs {
                for c in &txs {
                    if edges.contains(&(*a, *b))
                        && edges.contains(&(*b, *c))
                        && a != c
                        && edges.insert((*a, *c))
                    {
                        added = true;
                    }
                }
            }
        }
        if !added {
            break;
        }
    }
    edges
}

fn build_view(
    history: &History,
    com: &[TxId],
    proc: ProcId,
    causal: &BTreeSet<(TxId, TxId)>,
) -> View {
    let mut problem = PlacementProblem::new();
    let mut index_of = BTreeMap::new();
    let mut write_point = BTreeMap::new();
    for tx in com {
        let check = history.proc_of(*tx) == proc;
        let block = Block::full(tx.to_string(), history, *tx, check);
        let has_writes = block.has_writes();
        let idx = problem.add_point(Point { label: format!("∗{tx}"), window: None, block });
        index_of.insert(*tx, idx);
        if has_writes {
            write_point.insert(*tx, idx);
        }
    }
    for (a, b) in causal {
        if let (Some(&ia), Some(&ib)) = (index_of.get(a), index_of.get(b)) {
            problem.require_order(ia, ib);
        }
    }
    View { proc, problem, write_point }
}

/// Check causal serializability of an execution.
pub fn check_causal_serializability(execution: &Execution) -> CheckResult {
    let history = execution.history();
    if history.transactions().is_empty() {
        return CheckResult::satisfied(CAUSAL_SERIALIZABILITY, "empty history");
    }
    for com in com_candidates(&history) {
        // The causality relation must be acyclic for a causal view to exist at all.
        let causal = causal_order(&history, &com);
        if com.iter().any(|t| causal.contains(&(*t, *t))) {
            continue;
        }
        let views: Vec<View> = relevant_processes(&history, &com)
            .into_iter()
            .map(|p| build_view(&history, &com, p, &causal))
            .collect();
        let mv = MultiViewProblem { views, agreement_pairs: agreement_pairs(&history, &com) };
        if let Some(solution) = solve_multiview(&mv) {
            let witness = solution
                .iter()
                .map(|(p, order)| {
                    let view = mv.views.iter().find(|v| v.proc == *p).unwrap();
                    format!("{p}: {}", view.problem.render_order(order))
                })
                .collect::<Vec<_>>()
                .join("; ");
            return CheckResult::satisfied(
                CAUSAL_SERIALIZABILITY,
                format!("{}; {}", render_com(&com), witness),
            );
        }
    }
    CheckResult::violated(
        CAUSAL_SERIALIZABILITY,
        "no per-process views respect the causality relation, agree on same-item \
         write order, and keep every process's own transactions legal",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::{ReadResult, TmEvent};
    use tm_model::step::Event;
    use tm_model::DataItem;

    fn ev(p: usize, e: TmEvent) -> Event {
        Event::Tm { proc: ProcId(p), event: e }
    }

    fn tx_events(p: usize, tx: usize, reads: &[(&str, i64)], writes: &[(&str, i64)]) -> Vec<Event> {
        let t = TxId(tx);
        let mut out = vec![ev(p, TmEvent::InvBegin { tx: t }), ev(p, TmEvent::RespBegin { tx: t })];
        for (item, value) in reads {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvRead { tx: t, item: x.clone() }));
            out.push(ev(
                p,
                TmEvent::RespRead { tx: t, item: x, result: ReadResult::Value(*value) },
            ));
        }
        for (item, value) in writes {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvWrite { tx: t, item: x.clone(), value: *value }));
            out.push(ev(p, TmEvent::RespWrite { tx: t, item: x, ok: true }));
        }
        out.push(ev(p, TmEvent::InvCommit { tx: t }));
        out.push(ev(p, TmEvent::RespCommit { tx: t, committed: true }));
        out
    }

    #[test]
    fn causal_order_includes_program_order_and_reads_from() {
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 1)], &[("y", 2)]));
        events.extend(tx_events(1, 2, &[], &[("z", 3)]));
        let h = Execution::from_events(events).history();
        let com = vec![TxId(0), TxId(1), TxId(2)];
        let causal = causal_order(&h, &com);
        assert!(causal.contains(&(TxId(0), TxId(1)))); // reads-from
        assert!(causal.contains(&(TxId(1), TxId(2)))); // program order
        assert!(causal.contains(&(TxId(0), TxId(2)))); // transitivity
    }

    #[test]
    fn causally_ordered_reads_must_be_observed() {
        // T1 (p1) writes x=1.  T2 (p2) reads x=1 (so T1 → T2) and writes y=2.
        // T3 (p3) reads y=2 (so T2 → T3) but reads x=0 — it observes the effect (y)
        // without its cause (x).  Causal serializability must reject this; PRAM and
        // processor consistency accept it (different items, no write-order issue).
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 1)], &[("y", 2)]));
        events.extend(tx_events(2, 2, &[("y", 2), ("x", 0)], &[]));
        let e = Execution::from_events(events);
        assert!(!check_causal_serializability(&e).satisfied);
        assert!(crate::pram::check_pram(&e).satisfied);
        assert!(crate::processor::check_processor_consistency(&e).satisfied);
    }

    #[test]
    fn causally_consistent_history_is_accepted() {
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 1)], &[("y", 2)]));
        events.extend(tx_events(2, 2, &[("y", 2), ("x", 1)], &[]));
        let e = Execution::from_events(events);
        assert!(check_causal_serializability(&e).satisfied);
    }

    #[test]
    fn empty_execution_is_causally_serializable() {
        assert!(check_causal_serializability(&Execution::new()).satisfied);
    }
}
