//! Uniform result types for all consistency checkers.

use std::fmt;

/// The outcome of checking one consistency condition on one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Name of the condition ("snapshot isolation", "weak adaptive consistency", …).
    pub condition: &'static str,
    /// Whether the execution satisfies the condition.
    pub satisfied: bool,
    /// A human-readable witness (serialization order, partition, `com(α)` choice) when
    /// the condition is satisfied.
    pub witness: Option<String>,
    /// A human-readable explanation of why no witness exists, when it is violated.
    pub violation: Option<String>,
}

impl CheckResult {
    /// A satisfied result with a witness.
    pub fn satisfied(condition: &'static str, witness: impl Into<String>) -> Self {
        CheckResult { condition, satisfied: true, witness: Some(witness.into()), violation: None }
    }

    /// A violated result with an explanation.
    pub fn violated(condition: &'static str, violation: impl Into<String>) -> Self {
        CheckResult {
            condition,
            satisfied: false,
            witness: None,
            violation: Some(violation.into()),
        }
    }
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.satisfied {
            write!(f, "{}: satisfied", self.condition)?;
            if let Some(w) = &self.witness {
                write!(f, " [{w}]")?;
            }
        } else {
            write!(f, "{}: VIOLATED", self.condition)?;
            if let Some(v) = &self.violation {
                write!(f, " ({v})")?;
            }
        }
        Ok(())
    }
}

/// A serialization-order witness shared by the simulator-side checkers and the
/// runtime-history auditors (`tm-audit`): the names of the transactions in
/// commit order.
///
/// Audited runs reach millions of transactions, so [`fmt::Display`] renders a
/// bounded prefix/suffix; the full order stays available in [`Self::order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOrderWitness {
    /// Transaction names, first-committed first.
    pub order: Vec<String>,
}

impl CommitOrderWitness {
    /// How many leading/trailing entries `Display` shows before eliding.
    const SHOWN: usize = 4;

    /// Wrap an order.
    pub fn new(order: Vec<String>) -> Self {
        CommitOrderWitness { order }
    }

    /// Number of transactions in the witness.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the witness is empty (vacuously consistent history).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl fmt::Display for CommitOrderWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.order.len() <= 2 * Self::SHOWN {
            write!(f, "commit order: {}", self.order.join(" < "))
        } else {
            write!(
                f,
                "commit order ({} txns): {} < … < {}",
                self.order.len(),
                self.order[..Self::SHOWN].join(" < "),
                self.order[self.order.len() - Self::SHOWN..].join(" < ")
            )
        }
    }
}

/// A collection of check results for one execution: one row of the
/// condition × algorithm × scenario matrix reported by the experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConditionMatrix {
    results: Vec<CheckResult>,
}

impl ConditionMatrix {
    /// An empty matrix row.
    pub fn new() -> Self {
        ConditionMatrix::default()
    }

    /// Append one result.
    pub fn push(&mut self, result: CheckResult) {
        self.results.push(result);
    }

    /// All results.
    pub fn results(&self) -> &[CheckResult] {
        &self.results
    }

    /// Look up the result for a condition by name.
    pub fn get(&self, condition: &str) -> Option<&CheckResult> {
        self.results.iter().find(|r| r.condition == condition)
    }

    /// Whether a given condition is satisfied (false when absent).
    pub fn is_satisfied(&self, condition: &str) -> bool {
        self.get(condition).map(|r| r.satisfied).unwrap_or(false)
    }

    /// Names of all violated conditions.
    pub fn violated(&self) -> Vec<&'static str> {
        self.results.iter().filter(|r| !r.satisfied).map(|r| r.condition).collect()
    }

    /// A compact single-line rendering: `✓ condition / ✗ condition / …`.
    pub fn summary(&self) -> String {
        self.results
            .iter()
            .map(|r| format!("{} {}", if r.satisfied { "✓" } else { "✗" }, r.condition))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl fmt::Display for ConditionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.results {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let mut m = ConditionMatrix::new();
        m.push(CheckResult::satisfied("snapshot isolation", "σ = T1.w T2.gr"));
        m.push(CheckResult::violated("serializability", "no legal order"));
        assert!(m.is_satisfied("snapshot isolation"));
        assert!(!m.is_satisfied("serializability"));
        assert!(!m.is_satisfied("unknown condition"));
        assert_eq!(m.violated(), vec!["serializability"]);
        assert_eq!(m.results().len(), 2);
        assert!(m.get("serializability").unwrap().violation.is_some());
    }

    #[test]
    fn renders_humanely() {
        let ok = CheckResult::satisfied("pram", "order: T1 T2");
        let bad = CheckResult::violated("opacity", "T3 reads torn state");
        assert!(ok.to_string().contains("satisfied"));
        assert!(bad.to_string().contains("VIOLATED"));
        let mut m = ConditionMatrix::new();
        m.push(ok);
        m.push(bad);
        let s = m.summary();
        assert!(s.contains("✓ pram"));
        assert!(s.contains("✗ opacity"));
        assert!(m.to_string().contains("pram"));
    }
}
