//! PRAM consistency (Lipton & Sandberg \[28\]).
//!
//! PRAM consistency is processor consistency *without* the requirement that writes to
//! the same data item be observed in the same order by every process: each process's
//! view must respect per-process program order and make that process's own
//! transactions legal, and that is all.
//!
//! The paper's discussion (Section 5) points out that PRAM consistency is cheap:
//! a TM that never synchronizes at all — each process keeps a private copy of every
//! data item — is PRAM consistent, wait-free and trivially strict
//! disjoint-access-parallel.  PRAM is therefore the "give up C" corner of the
//! P/C/L triangle, and this checker is what certifies that corner in the experiments.

use crate::comset::{com_candidates, render_com};
use crate::multiview::{solve_multiview, MultiViewProblem, View};
use crate::processor::relevant_processes;
use crate::report::CheckResult;
use crate::{legality::Block, placement::PlacementProblem, placement::Point};
use std::collections::BTreeMap;
use tm_model::{Execution, History, ProcId, TxId};

/// Name under which the result appears in a [`crate::ConditionMatrix`].
pub const PRAM: &str = "PRAM consistency";

fn build_view(history: &History, com: &[TxId], proc: ProcId) -> View {
    let mut problem = PlacementProblem::new();
    let mut index_of = BTreeMap::new();
    for tx in com {
        let check = history.proc_of(*tx) == proc;
        let block = Block::full(tx.to_string(), history, *tx, check);
        let idx = problem.add_point(Point { label: format!("∗{tx}"), window: None, block });
        index_of.insert(*tx, idx);
    }
    for a in com {
        for b in com {
            if a != b && history.proc_of(*a) == history.proc_of(*b) && history.precedes(*a, *b) {
                problem.require_order(index_of[a], index_of[b]);
            }
        }
    }
    // PRAM never constrains cross-view write order, so `write_point` stays empty.
    View { proc, problem, write_point: BTreeMap::new() }
}

/// Check PRAM consistency of an execution.
pub fn check_pram(execution: &Execution) -> CheckResult {
    let history = execution.history();
    if history.transactions().is_empty() {
        return CheckResult::satisfied(PRAM, "empty history");
    }
    for com in com_candidates(&history) {
        let views: Vec<View> = relevant_processes(&history, &com)
            .into_iter()
            .map(|p| build_view(&history, &com, p))
            .collect();
        let mv = MultiViewProblem { views, agreement_pairs: vec![] };
        if let Some(solution) = solve_multiview(&mv) {
            let witness = solution
                .iter()
                .map(|(p, order)| {
                    let view = mv.views.iter().find(|v| v.proc == *p).unwrap();
                    format!("{p}: {}", view.problem.render_order(order))
                })
                .collect::<Vec<_>>()
                .join("; ");
            return CheckResult::satisfied(PRAM, format!("{}; {}", render_com(&com), witness));
        }
    }
    CheckResult::violated(
        PRAM,
        "some process cannot order the committed transactions so that its own reads \
         are legal while respecting per-process program order",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::{ReadResult, TmEvent};
    use tm_model::step::Event;
    use tm_model::DataItem;

    fn ev(p: usize, e: TmEvent) -> Event {
        Event::Tm { proc: ProcId(p), event: e }
    }

    fn tx_events(p: usize, tx: usize, reads: &[(&str, i64)], writes: &[(&str, i64)]) -> Vec<Event> {
        let t = TxId(tx);
        let mut out = vec![ev(p, TmEvent::InvBegin { tx: t }), ev(p, TmEvent::RespBegin { tx: t })];
        for (item, value) in reads {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvRead { tx: t, item: x.clone() }));
            out.push(ev(
                p,
                TmEvent::RespRead { tx: t, item: x, result: ReadResult::Value(*value) },
            ));
        }
        for (item, value) in writes {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvWrite { tx: t, item: x.clone(), value: *value }));
            out.push(ev(p, TmEvent::RespWrite { tx: t, item: x, ok: true }));
        }
        out.push(ev(p, TmEvent::InvCommit { tx: t }));
        out.push(ev(p, TmEvent::RespCommit { tx: t, committed: true }));
        out
    }

    #[test]
    fn pram_is_weaker_than_processor_consistency() {
        // The disagreeing-write-order scenario from the processor-consistency tests:
        // PC rejects it, PRAM accepts it.
        let mut events = tx_events(0, 0, &[], &[("x", 1), ("y", 1)]);
        events.extend(tx_events(1, 1, &[], &[("x", 2), ("z", 2)]));
        events.extend(tx_events(2, 2, &[("x", 2), ("y", 1)], &[]));
        events.extend(tx_events(3, 3, &[("x", 1), ("z", 2)], &[]));
        let e = Execution::from_events(events);
        assert!(check_pram(&e).satisfied);
        assert!(!crate::processor::check_processor_consistency(&e).satisfied);
    }

    #[test]
    fn program_order_violations_still_fail_pram() {
        // Same process writes x=1 (T1) then reads x=0 (T2): even PRAM rejects this.
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(0, 1, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        assert!(!check_pram(&e).satisfied);
    }

    #[test]
    fn never_observing_remote_writes_is_pram_consistent() {
        // A "no synchronization at all" TM: every process reads only its own writes.
        // p1 commits x=1; p2 reads x=0; p3 reads x=0 — PRAM accepts.
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 0)], &[]));
        events.extend(tx_events(2, 2, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        assert!(check_pram(&e).satisfied);
    }

    #[test]
    fn impossible_values_still_fail_pram() {
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 99)], &[]));
        let e = Execution::from_events(events);
        assert!(!check_pram(&e).satisfied);
    }

    #[test]
    fn empty_execution_is_pram_consistent() {
        assert!(check_pram(&Execution::new()).satisfied);
    }
}
