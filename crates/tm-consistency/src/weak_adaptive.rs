//! Weak adaptive consistency — Definition 3.3, the consistency condition of the PCL
//! theorem.
//!
//! Weak adaptive consistency weakens snapshot isolation in two directions:
//!
//! 1. **each process has its own sequential view** (like processor consistency), and
//! 2. the transactions of the execution may be **partitioned into consistency
//!    groups**, each group independently promising either snapshot-isolation-style
//!    guarantees (serialization points inside each member's own active interval) or
//!    processor-consistency-style guarantees (global-read and write points adjacent,
//!    inside the *group's* active interval).
//!
//! The checker searches over every choice the definition existentially quantifies:
//! the `com(α)` set, the consistency partition, the SI/PC labeling of its groups, and
//! per-process placements of the `∗T,gr` / `∗T,w` points — subject to the same-item
//! write-order agreement across views (condition 2) and to the legality of each
//! process's own transactions (condition 5).
//!
//! Because weak adaptive consistency is implied by snapshot isolation and by processor
//! consistency, the checker first tries those two (much cheaper) sufficient
//! conditions; only if both fail does it run the full search.  For executions with
//! more transactions than [`FULL_SEARCH_LIMIT`] the full search is skipped and the
//! sufficient conditions decide (documented approximation: a "violated" verdict in
//! that regime means "neither SI nor PC holds", which is the regime the benchmark
//! workloads operate in).

use crate::comset::{com_candidates, render_com};
use crate::groups::{enumerate_labelings, enumerate_partitions, render_labeling, GroupKind};
use crate::legality::Block;
use crate::multiview::{solve_multiview, MultiViewProblem, View};
use crate::placement::{PlacementProblem, Point};
use crate::processor::{agreement_pairs, relevant_processes};
use crate::report::CheckResult;
use std::collections::BTreeMap;
use tm_model::{Execution, History, ProcId, TxId};

/// Name under which the result appears in a [`crate::ConditionMatrix`].
pub const WEAK_ADAPTIVE: &str = "weak adaptive consistency (Def 3.3)";

/// Above this many transactions the partition/labeling space (`4^k` combinations) is
/// not searched exhaustively; the cheaper sufficient conditions decide instead.
pub const FULL_SEARCH_LIMIT: usize = 9;

/// Build process `proc`'s view for a fixed partition/labeling/com choice.
fn build_view(
    execution: &Execution,
    history: &History,
    com: &[TxId],
    proc: ProcId,
    partition: &crate::groups::Partition,
    labeling: &[GroupKind],
) -> Option<View> {
    let intervals = execution.active_intervals();
    let mut problem = PlacementProblem::new();
    let mut write_point = BTreeMap::new();
    for tx in com {
        let group_idx = partition.group_of(*tx)?;
        let group = &partition.groups[group_idx];
        let kind = labeling[group_idx];
        let window = match kind {
            GroupKind::SnapshotIsolation => intervals.get(tx).map(|iv| (iv.start, iv.end)),
            GroupKind::ProcessorConsistency => Some((group.interval.start, group.interval.end)),
        };
        let check = history.proc_of(*tx) == proc;
        let gr = problem.add_point(Point {
            label: format!("∗{tx},gr"),
            window,
            block: Block::global_reads(format!("{tx}.gr"), history, *tx, check),
        });
        let w = problem.add_point(Point {
            label: format!("∗{tx},w"),
            window,
            block: Block::writes(format!("{tx}.w"), history, *tx),
        });
        match kind {
            GroupKind::SnapshotIsolation => problem.require_order(gr, w),
            // Condition 4: nothing between the two points of a PC-group transaction.
            GroupKind::ProcessorConsistency => problem.require_adjacent(gr, w),
        }
        write_point.insert(*tx, w);
    }
    Some(View { proc, problem, write_point })
}

/// A cheap necessary condition for a given `com(α)`: every relevant process's view
/// must be satisfiable even under the *weakest* possible constraints (no interval
/// windows, no adjacency, no cross-view agreement).  Every partition/labeling only
/// adds constraints on top of this relaxation, so if the relaxation already fails the
/// whole partition search for this `com` can be skipped.
fn com_is_plausible(history: &History, com: &[TxId]) -> bool {
    use crate::placement::{find_placement, PlacementProblem, Point};
    for proc in relevant_processes(history, com) {
        let mut problem = PlacementProblem::new();
        for tx in com {
            let check = history.proc_of(*tx) == proc;
            let gr = problem.add_point(Point {
                label: format!("∗{tx},gr"),
                window: None,
                block: Block::global_reads(format!("{tx}.gr"), history, *tx, check),
            });
            let w = problem.add_point(Point {
                label: format!("∗{tx},w"),
                window: None,
                block: Block::writes(format!("{tx}.w"), history, *tx),
            });
            problem.require_order(gr, w);
        }
        if find_placement(&problem).is_none() {
            return false;
        }
    }
    true
}

/// Run the full Definition 3.3 search.  Returns a witness string on success.
fn full_search(execution: &Execution, history: &History) -> Option<String> {
    let partitions = enumerate_partitions(execution);
    for com in com_candidates(history) {
        if !com_is_plausible(history, &com) {
            continue;
        }
        let procs = relevant_processes(history, &com);
        let pairs = agreement_pairs(history, &com);
        for partition in &partitions {
            for labeling in enumerate_labelings(partition) {
                let views: Option<Vec<View>> = procs
                    .iter()
                    .map(|p| build_view(execution, history, &com, *p, partition, &labeling))
                    .collect();
                let Some(views) = views else { continue };
                let mv = MultiViewProblem { views, agreement_pairs: pairs.clone() };
                if let Some(solution) = solve_multiview(&mv) {
                    let per_proc = solution
                        .iter()
                        .map(|(p, order)| {
                            let view = mv.views.iter().find(|v| v.proc == *p).unwrap();
                            format!("{p}: {}", view.problem.render_order(order))
                        })
                        .collect::<Vec<_>>()
                        .join("; ");
                    return Some(format!(
                        "{}; partition {}; {}",
                        render_com(&com),
                        render_labeling(partition, &labeling),
                        per_proc
                    ));
                }
            }
        }
    }
    None
}

/// Check weak adaptive consistency of an execution.
pub fn check_weak_adaptive(execution: &Execution) -> CheckResult {
    let history = execution.history();
    let n_tx = history.transactions().len();
    if n_tx == 0 {
        return CheckResult::satisfied(WEAK_ADAPTIVE, "empty history");
    }

    // Sufficient conditions first: SI or PC each imply weak adaptive consistency
    // (single group labeled SI, resp. PC, over the whole execution).
    let si = crate::snapshot_isolation::check_snapshot_isolation(execution);
    if si.satisfied {
        return CheckResult::satisfied(
            WEAK_ADAPTIVE,
            format!("implied by snapshot isolation [{}]", si.witness.unwrap_or_default()),
        );
    }
    let pc = crate::processor::check_processor_consistency(execution);
    if pc.satisfied {
        return CheckResult::satisfied(
            WEAK_ADAPTIVE,
            format!("implied by processor consistency [{}]", pc.witness.unwrap_or_default()),
        );
    }

    if n_tx > FULL_SEARCH_LIMIT {
        return CheckResult::violated(
            WEAK_ADAPTIVE,
            format!(
                "neither snapshot isolation nor processor consistency holds; full \
                 partition search skipped ({n_tx} transactions > limit {FULL_SEARCH_LIMIT})"
            ),
        );
    }

    match full_search(execution, &history) {
        Some(witness) => CheckResult::satisfied(WEAK_ADAPTIVE, witness),
        None => CheckResult::violated(
            WEAK_ADAPTIVE,
            "no consistency partition, SI/PC labeling, com(α) choice and per-process \
             serialization-point placement satisfies Definition 3.3",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::{ReadResult, TmEvent};
    use tm_model::step::Event;
    use tm_model::DataItem;

    fn ev(p: usize, e: TmEvent) -> Event {
        Event::Tm { proc: ProcId(p), event: e }
    }

    fn tx_events(p: usize, tx: usize, reads: &[(&str, i64)], writes: &[(&str, i64)]) -> Vec<Event> {
        let t = TxId(tx);
        let mut out = vec![ev(p, TmEvent::InvBegin { tx: t }), ev(p, TmEvent::RespBegin { tx: t })];
        for (item, value) in reads {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvRead { tx: t, item: x.clone() }));
            out.push(ev(
                p,
                TmEvent::RespRead { tx: t, item: x, result: ReadResult::Value(*value) },
            ));
        }
        for (item, value) in writes {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvWrite { tx: t, item: x.clone(), value: *value }));
            out.push(ev(p, TmEvent::RespWrite { tx: t, item: x, ok: true }));
        }
        out.push(ev(p, TmEvent::InvCommit { tx: t }));
        out.push(ev(p, TmEvent::RespCommit { tx: t, committed: true }));
        out
    }

    #[test]
    fn snapshot_isolation_implies_weak_adaptive() {
        // Write skew: SI holds, so WAC must hold (and report the implication).
        let t1 = TxId(0);
        let t2 = TxId(1);
        let x = DataItem::new("x");
        let y = DataItem::new("y");
        let events = vec![
            ev(0, TmEvent::InvBegin { tx: t1 }),
            ev(0, TmEvent::RespBegin { tx: t1 }),
            ev(1, TmEvent::InvBegin { tx: t2 }),
            ev(1, TmEvent::RespBegin { tx: t2 }),
            ev(0, TmEvent::InvRead { tx: t1, item: x.clone() }),
            ev(0, TmEvent::RespRead { tx: t1, item: x.clone(), result: ReadResult::Value(0) }),
            ev(1, TmEvent::InvRead { tx: t2, item: y.clone() }),
            ev(1, TmEvent::RespRead { tx: t2, item: y.clone(), result: ReadResult::Value(0) }),
            ev(0, TmEvent::InvWrite { tx: t1, item: y.clone(), value: 1 }),
            ev(0, TmEvent::RespWrite { tx: t1, item: y.clone(), ok: true }),
            ev(1, TmEvent::InvWrite { tx: t2, item: x.clone(), value: 1 }),
            ev(1, TmEvent::RespWrite { tx: t2, item: x.clone(), ok: true }),
            ev(0, TmEvent::InvCommit { tx: t1 }),
            ev(0, TmEvent::RespCommit { tx: t1, committed: true }),
            ev(1, TmEvent::InvCommit { tx: t2 }),
            ev(1, TmEvent::RespCommit { tx: t2, committed: true }),
        ];
        let e = Execution::from_events(events);
        let res = check_weak_adaptive(&e);
        assert!(res.satisfied);
        assert!(res.witness.unwrap().contains("snapshot isolation"));
    }

    #[test]
    fn processor_consistency_implies_weak_adaptive() {
        // Stale read in another process: SI fails (interval constraint) but PC holds.
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        assert!(!crate::snapshot_isolation::check_snapshot_isolation(&e).satisfied);
        let res = check_weak_adaptive(&e);
        assert!(res.satisfied);
        assert!(res.witness.unwrap().contains("processor consistency"));
    }

    #[test]
    fn per_process_stale_views_satisfy_weak_adaptive_even_when_pc_fails() {
        // Disagreeing write orders (the PC violation): each reader is on its own
        // process, so WAC still holds via a PC-labeled partition?  No — condition 2
        // (write-order agreement) is part of WAC itself, so WAC is violated too.
        let mut events = tx_events(0, 0, &[], &[("x", 1), ("y", 1)]);
        events.extend(tx_events(1, 1, &[], &[("x", 2), ("z", 2)]));
        events.extend(tx_events(2, 2, &[("x", 2), ("y", 1)], &[]));
        events.extend(tx_events(3, 3, &[("x", 1), ("z", 2)], &[]));
        let e = Execution::from_events(events);
        let res = check_weak_adaptive(&e);
        assert!(!res.satisfied, "{res}");
    }

    #[test]
    fn impossible_read_values_violate_weak_adaptive() {
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 42)], &[]));
        let e = Execution::from_events(events);
        let res = check_weak_adaptive(&e);
        assert!(!res.satisfied);
    }

    #[test]
    fn mixed_partition_rescues_executions_that_need_both_kinds() {
        // Group 1 (early): T1 commits x=1, and much later T2 reads x=0 — needs a PC
        // group (points may move left, out of T2's own interval).  Group 2 (late):
        // T3 writes y=1 and T4 reads y=1 — any labeling works.  The execution as a
        // whole satisfies neither SI (T2's stale read) nor … well, PC actually holds
        // here; the interesting assertion is simply that WAC holds and that the
        // checker reports *some* witness.
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 0)], &[]));
        events.extend(tx_events(2, 2, &[], &[("y", 1)]));
        events.extend(tx_events(3, 3, &[("y", 1)], &[]));
        let e = Execution::from_events(events);
        let res = check_weak_adaptive(&e);
        assert!(res.satisfied, "{res}");
    }

    #[test]
    fn empty_execution_satisfies_weak_adaptive() {
        assert!(check_weak_adaptive(&Execution::new()).satisfied);
    }
}
