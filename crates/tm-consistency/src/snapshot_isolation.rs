//! Weak snapshot isolation — Definition 3.1 of the paper.
//!
//! An execution α satisfies (weak) snapshot isolation if there is a set `com(α)` (all
//! committed plus some commit-pending transactions) and, for every `T ∈ com(α)`, a
//! *global-read* serialization point `∗T,gr` and a *write* serialization point `∗T,w`
//! such that
//!
//! 1. `∗T,gr` precedes `∗T,w`,
//! 2. both points lie within the **active execution interval** of `T`,
//! 3. replacing each `∗T,gr` by `Tgr` (the global reads of `T`, committed) and each
//!    `∗T,w` by `Tw` (the writes of `T`, committed) yields a **legal** sequential
//!    history.
//!
//! This is deliberately *weaker* than database snapshot isolation: there is no
//! "first committer wins" rule, and reads that follow a write to the same item inside
//! the same transaction (local reads) are unconstrained.  A weaker consistency
//! condition makes the impossibility theorem stronger.

use crate::comset::{com_candidates, render_com};
use crate::legality::Block;
use crate::placement::{find_placement, PlacementProblem, Point};
use crate::report::CheckResult;
use tm_model::Execution;

/// Name under which the result appears in a [`crate::ConditionMatrix`].
pub const SNAPSHOT_ISOLATION: &str = "snapshot isolation (weak, Def 3.1)";

/// Check Definition 3.1 on an execution.
pub fn check_snapshot_isolation(execution: &Execution) -> CheckResult {
    let history = execution.history();
    if history.transactions().is_empty() {
        return CheckResult::satisfied(SNAPSHOT_ISOLATION, "empty history");
    }
    let intervals = execution.active_intervals();

    for com in com_candidates(&history) {
        let mut problem = PlacementProblem::new();
        for tx in &com {
            let window = intervals.get(tx).map(|iv| (iv.start, iv.end));
            let gr = problem.add_point(Point {
                label: format!("∗{tx},gr"),
                window,
                block: Block::global_reads(format!("{tx}.gr"), &history, *tx, true),
            });
            let w = problem.add_point(Point {
                label: format!("∗{tx},w"),
                window,
                block: Block::writes(format!("{tx}.w"), &history, *tx),
            });
            problem.require_order(gr, w);
        }
        if let Some(order) = find_placement(&problem) {
            return CheckResult::satisfied(
                SNAPSHOT_ISOLATION,
                format!("{}; σ: {}", render_com(&com), problem.render_order(&order)),
            );
        }
    }
    CheckResult::violated(
        SNAPSHOT_ISOLATION,
        "no placement of global-read/write serialization points within the active \
         execution intervals yields a legal history, for any choice of com(α)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::{ReadResult, TmEvent};
    use tm_model::step::Event;
    use tm_model::{DataItem, ProcId, TxId};

    fn ev(p: usize, e: TmEvent) -> Event {
        Event::Tm { proc: ProcId(p), event: e }
    }

    fn committed_tx(
        p: usize,
        tx: usize,
        reads: &[(&str, i64)],
        writes: &[(&str, i64)],
    ) -> Vec<Event> {
        let t = TxId(tx);
        let mut out = vec![ev(p, TmEvent::InvBegin { tx: t }), ev(p, TmEvent::RespBegin { tx: t })];
        for (item, value) in reads {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvRead { tx: t, item: x.clone() }));
            out.push(ev(
                p,
                TmEvent::RespRead { tx: t, item: x, result: ReadResult::Value(*value) },
            ));
        }
        for (item, value) in writes {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvWrite { tx: t, item: x.clone(), value: *value }));
            out.push(ev(p, TmEvent::RespWrite { tx: t, item: x, ok: true }));
        }
        out.push(ev(p, TmEvent::InvCommit { tx: t }));
        out.push(ev(p, TmEvent::RespCommit { tx: t, committed: true }));
        out
    }

    #[test]
    fn sequential_writer_then_reader_satisfies_si() {
        let mut events = committed_tx(0, 0, &[], &[("x", 1)]);
        events.extend(committed_tx(1, 1, &[("x", 1)], &[]));
        let e = Execution::from_events(events);
        let res = check_snapshot_isolation(&e);
        assert!(res.satisfied, "{res}");
    }

    #[test]
    fn stale_read_after_writer_completes_violates_si() {
        // T1 commits x=1; afterwards T2 (whose whole interval lies after T1's) reads
        // x=0.  Both of T2's points must lie inside T2's interval, which starts after
        // ∗T1,w, so the read of 0 cannot be justified.
        let mut events = committed_tx(0, 0, &[], &[("x", 1)]);
        events.extend(committed_tx(1, 1, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        let res = check_snapshot_isolation(&e);
        assert!(!res.satisfied, "{res}");
    }

    #[test]
    fn write_skew_is_allowed_by_snapshot_isolation() {
        // The classic SI anomaly: both transactions read the initial snapshot and
        // write disjoint items; serializability rejects it, SI accepts it.
        let t1 = TxId(0);
        let t2 = TxId(1);
        let x = DataItem::new("x");
        let y = DataItem::new("y");
        let events = vec![
            ev(0, TmEvent::InvBegin { tx: t1 }),
            ev(0, TmEvent::RespBegin { tx: t1 }),
            ev(1, TmEvent::InvBegin { tx: t2 }),
            ev(1, TmEvent::RespBegin { tx: t2 }),
            ev(0, TmEvent::InvRead { tx: t1, item: x.clone() }),
            ev(0, TmEvent::RespRead { tx: t1, item: x.clone(), result: ReadResult::Value(0) }),
            ev(1, TmEvent::InvRead { tx: t2, item: y.clone() }),
            ev(1, TmEvent::RespRead { tx: t2, item: y.clone(), result: ReadResult::Value(0) }),
            ev(0, TmEvent::InvWrite { tx: t1, item: y.clone(), value: 1 }),
            ev(0, TmEvent::RespWrite { tx: t1, item: y.clone(), ok: true }),
            ev(1, TmEvent::InvWrite { tx: t2, item: x.clone(), value: 1 }),
            ev(1, TmEvent::RespWrite { tx: t2, item: x.clone(), ok: true }),
            ev(0, TmEvent::InvCommit { tx: t1 }),
            ev(0, TmEvent::RespCommit { tx: t1, committed: true }),
            ev(1, TmEvent::InvCommit { tx: t2 }),
            ev(1, TmEvent::RespCommit { tx: t2, committed: true }),
        ];
        let e = Execution::from_events(events);
        assert!(check_snapshot_isolation(&e).satisfied);
        assert!(!crate::serializability::check_serializability(&e).satisfied);
    }

    #[test]
    fn lost_update_is_also_allowed_by_weak_si() {
        // Both transactions read x=0 and write x — standard SI would abort one of
        // them ("first committer wins"), but the paper's weak SI drops that rule, so
        // this execution must be accepted.
        let t1 = TxId(0);
        let t2 = TxId(1);
        let x = DataItem::new("x");
        let events = vec![
            ev(0, TmEvent::InvBegin { tx: t1 }),
            ev(0, TmEvent::RespBegin { tx: t1 }),
            ev(1, TmEvent::InvBegin { tx: t2 }),
            ev(1, TmEvent::RespBegin { tx: t2 }),
            ev(0, TmEvent::InvRead { tx: t1, item: x.clone() }),
            ev(0, TmEvent::RespRead { tx: t1, item: x.clone(), result: ReadResult::Value(0) }),
            ev(1, TmEvent::InvRead { tx: t2, item: x.clone() }),
            ev(1, TmEvent::RespRead { tx: t2, item: x.clone(), result: ReadResult::Value(0) }),
            ev(0, TmEvent::InvWrite { tx: t1, item: x.clone(), value: 1 }),
            ev(0, TmEvent::RespWrite { tx: t1, item: x.clone(), ok: true }),
            ev(1, TmEvent::InvWrite { tx: t2, item: x.clone(), value: 2 }),
            ev(1, TmEvent::RespWrite { tx: t2, item: x.clone(), ok: true }),
            ev(0, TmEvent::InvCommit { tx: t1 }),
            ev(0, TmEvent::RespCommit { tx: t1, committed: true }),
            ev(1, TmEvent::InvCommit { tx: t2 }),
            ev(1, TmEvent::RespCommit { tx: t2, committed: true }),
        ];
        let e = Execution::from_events(events);
        assert!(check_snapshot_isolation(&e).satisfied);
    }

    #[test]
    fn read_of_a_torn_snapshot_violates_si() {
        // T1 writes x=1 and y=1 (atomically, as far as SI is concerned).  A concurrent
        // reader that sees x=1 but y=0 *and also sees some later write of x by T3*
        // cannot place its single global-read point anywhere: seeing x=1 requires the
        // point after ∗T1,w, but seeing y=0 requires it before.
        let t1 = TxId(0);
        let t2 = TxId(1);
        let x = DataItem::new("x");
        let y = DataItem::new("y");
        let events = vec![
            ev(0, TmEvent::InvBegin { tx: t1 }),
            ev(0, TmEvent::RespBegin { tx: t1 }),
            ev(1, TmEvent::InvBegin { tx: t2 }),
            ev(1, TmEvent::RespBegin { tx: t2 }),
            ev(0, TmEvent::InvWrite { tx: t1, item: x.clone(), value: 1 }),
            ev(0, TmEvent::RespWrite { tx: t1, item: x.clone(), ok: true }),
            ev(0, TmEvent::InvWrite { tx: t1, item: y.clone(), value: 1 }),
            ev(0, TmEvent::RespWrite { tx: t1, item: y.clone(), ok: true }),
            ev(0, TmEvent::InvCommit { tx: t1 }),
            ev(0, TmEvent::RespCommit { tx: t1, committed: true }),
            ev(1, TmEvent::InvRead { tx: t2, item: x.clone() }),
            ev(1, TmEvent::RespRead { tx: t2, item: x.clone(), result: ReadResult::Value(1) }),
            ev(1, TmEvent::InvRead { tx: t2, item: y.clone() }),
            ev(1, TmEvent::RespRead { tx: t2, item: y.clone(), result: ReadResult::Value(0) }),
            ev(1, TmEvent::InvCommit { tx: t2 }),
            ev(1, TmEvent::RespCommit { tx: t2, committed: true }),
        ];
        let e = Execution::from_events(events);
        let res = check_snapshot_isolation(&e);
        assert!(!res.satisfied, "{res}");
    }

    #[test]
    fn commit_pending_writer_may_be_excluded_from_com() {
        // T1 is commit-pending having written x=1; T2 reads x=0 and commits.  SI holds
        // by simply leaving T1 out of com(α).
        let t1 = TxId(0);
        let x = DataItem::new("x");
        let mut events = vec![
            ev(0, TmEvent::InvBegin { tx: t1 }),
            ev(0, TmEvent::RespBegin { tx: t1 }),
            ev(0, TmEvent::InvWrite { tx: t1, item: x.clone(), value: 1 }),
            ev(0, TmEvent::RespWrite { tx: t1, item: x, ok: true }),
            ev(0, TmEvent::InvCommit { tx: t1 }),
        ];
        events.extend(committed_tx(1, 1, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        let res = check_snapshot_isolation(&e);
        assert!(res.satisfied, "{res}");
        assert!(res.witness.is_some());
    }

    #[test]
    fn local_reads_are_unconstrained() {
        // T1 writes x=7 and then reads x=7 (its own write): the read is local, so SI
        // accepts it even though no committed writer wrote 7 before T1's points.
        let e = Execution::from_events(committed_tx(0, 0, &[], &[("x", 7)]));
        assert!(check_snapshot_isolation(&e).satisfied);
    }
}
