//! Serializability and strict serializability.
//!
//! *Serializability* \[30\]: all committed transactions (and, possibly, some
//! commit-pending ones, completed with a commit) execute as in some legal sequential
//! history.  *Strict* serializability additionally requires that the sequential order
//! respect the real-time precedence of the execution (`T1 <α T2` ⟹ `T1` before `T2`).
//!
//! Both checkers search over `com(α)` candidates and over orders of whole-transaction
//! blocks using the placement engine; strict serializability simply adds the
//! precedence pairs as ordering constraints.

use crate::comset::{com_candidates, render_com};
use crate::legality::Block;
use crate::placement::{find_placement, PlacementProblem, Point};
use crate::report::CheckResult;
use tm_model::{Execution, History, TxId};

/// Name under which the serializability result appears in a [`crate::ConditionMatrix`].
pub const SERIALIZABILITY: &str = "serializability";
/// Name under which the strict serializability result appears.
pub const STRICT_SERIALIZABILITY: &str = "strict serializability";

fn build_problem(history: &History, com: &[TxId], respect_real_time: bool) -> PlacementProblem {
    let mut problem = PlacementProblem::new();
    let mut index_of = std::collections::BTreeMap::new();
    for tx in com {
        let name = history
            .subhistory(*tx)
            .first()
            .map(|_| tx.to_string())
            .unwrap_or_else(|| tx.to_string());
        let block = Block::full(name.clone(), history, *tx, true);
        let idx = problem.add_point(Point { label: name, window: None, block });
        index_of.insert(*tx, idx);
    }
    if respect_real_time {
        for a in com {
            for b in com {
                if a != b && history.precedes(*a, *b) {
                    problem.require_order(index_of[a], index_of[b]);
                }
            }
        }
    }
    problem
}

fn check(execution: &Execution, condition: &'static str, strict: bool) -> CheckResult {
    let history = execution.history();
    if history.transactions().is_empty() {
        return CheckResult::satisfied(condition, "empty history");
    }
    for com in com_candidates(&history) {
        let problem = build_problem(&history, &com, strict);
        if let Some(order) = find_placement(&problem) {
            return CheckResult::satisfied(
                condition,
                format!("{}; order: {}", render_com(&com), problem.render_order(&order)),
            );
        }
    }
    CheckResult::violated(condition, "no legal sequential order exists for any choice of com(α)")
}

/// Check serializability of an execution.
pub fn check_serializability(execution: &Execution) -> CheckResult {
    check(execution, SERIALIZABILITY, false)
}

/// Check strict serializability of an execution.
pub fn check_strict_serializability(execution: &Execution) -> CheckResult {
    check(execution, STRICT_SERIALIZABILITY, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::{ReadResult, TmEvent};
    use tm_model::step::Event;
    use tm_model::{DataItem, ProcId};

    /// Helper building an execution out of TM events only (no memory steps needed for
    /// these order-based conditions).
    fn exec(events: Vec<(usize, TmEvent)>) -> Execution {
        Execution::from_events(
            events.into_iter().map(|(p, ev)| Event::Tm { proc: ProcId(p), event: ev }).collect(),
        )
    }

    fn committed_writer(p: usize, tx: usize, item: &str, value: i64) -> Vec<(usize, TmEvent)> {
        let t = TxId(tx);
        let x = DataItem::new(item);
        vec![
            (p, TmEvent::InvBegin { tx: t }),
            (p, TmEvent::RespBegin { tx: t }),
            (p, TmEvent::InvWrite { tx: t, item: x.clone(), value }),
            (p, TmEvent::RespWrite { tx: t, item: x, ok: true }),
            (p, TmEvent::InvCommit { tx: t }),
            (p, TmEvent::RespCommit { tx: t, committed: true }),
        ]
    }

    fn committed_reader(p: usize, tx: usize, item: &str, value: i64) -> Vec<(usize, TmEvent)> {
        let t = TxId(tx);
        let x = DataItem::new(item);
        vec![
            (p, TmEvent::InvBegin { tx: t }),
            (p, TmEvent::RespBegin { tx: t }),
            (p, TmEvent::InvRead { tx: t, item: x.clone() }),
            (p, TmEvent::RespRead { tx: t, item: x, result: ReadResult::Value(value) }),
            (p, TmEvent::InvCommit { tx: t }),
            (p, TmEvent::RespCommit { tx: t, committed: true }),
        ]
    }

    #[test]
    fn sequential_writer_then_reader_is_strictly_serializable() {
        let mut events = committed_writer(0, 0, "x", 1);
        events.extend(committed_reader(1, 1, "x", 1));
        let e = exec(events);
        assert!(check_serializability(&e).satisfied);
        assert!(check_strict_serializability(&e).satisfied);
    }

    #[test]
    fn stale_read_after_writer_completes_is_serializable_but_not_strictly() {
        // Writer T1 commits x=1, then T2 begins and reads x=0: serializable
        // (order T2 < T1) but not strictly serializable (real time forces T1 < T2).
        let mut events = committed_writer(0, 0, "x", 1);
        events.extend(committed_reader(1, 1, "x", 0));
        let e = exec(events);
        assert!(check_serializability(&e).satisfied);
        let strict = check_strict_serializability(&e);
        assert!(!strict.satisfied);
        assert!(strict.violation.is_some());
    }

    #[test]
    fn impossible_read_value_is_not_serializable() {
        let mut events = committed_writer(0, 0, "x", 1);
        events.extend(committed_reader(1, 1, "x", 42));
        let e = exec(events);
        assert!(!check_serializability(&e).satisfied);
        assert!(!check_strict_serializability(&e).satisfied);
    }

    #[test]
    fn commit_pending_writer_can_be_included_to_justify_a_read() {
        // T1 is commit-pending after writing x=1; T2 committed and read x=1.
        let t1 = TxId(0);
        let x = DataItem::new("x");
        let mut events = vec![
            (0, TmEvent::InvBegin { tx: t1 }),
            (0, TmEvent::RespBegin { tx: t1 }),
            (0, TmEvent::InvWrite { tx: t1, item: x.clone(), value: 1 }),
            (0, TmEvent::RespWrite { tx: t1, item: x.clone(), ok: true }),
            (0, TmEvent::InvCommit { tx: t1 }),
        ];
        events.extend(committed_reader(1, 1, "x", 1));
        let e = exec(events);
        let res = check_serializability(&e);
        assert!(res.satisfied);
        assert!(res.witness.unwrap().contains("T1"));
    }

    #[test]
    fn aborted_transactions_do_not_constrain_serializability() {
        // T1 aborts after writing x=1; T2 reads x=0 and commits: fine.
        let t1 = TxId(0);
        let x = DataItem::new("x");
        let mut events = vec![
            (0, TmEvent::InvBegin { tx: t1 }),
            (0, TmEvent::RespBegin { tx: t1 }),
            (0, TmEvent::InvWrite { tx: t1, item: x.clone(), value: 1 }),
            (0, TmEvent::RespWrite { tx: t1, item: x.clone(), ok: true }),
            (0, TmEvent::InvCommit { tx: t1 }),
            (0, TmEvent::RespCommit { tx: t1, committed: false }),
        ];
        events.extend(committed_reader(1, 1, "x", 0));
        let e = exec(events);
        assert!(check_strict_serializability(&e).satisfied);
    }

    #[test]
    fn empty_execution_is_trivially_serializable() {
        let e = Execution::new();
        assert!(check_serializability(&e).satisfied);
        assert!(check_strict_serializability(&e).satisfied);
    }

    #[test]
    fn write_skew_is_serializable_violation() {
        // Classic write skew: T1 reads x=0 writes y=1; T2 reads y=0 writes x=1;
        // both commit, overlapping in real time.  Not serializable.
        let x = DataItem::new("x");
        let y = DataItem::new("y");
        let t1 = TxId(0);
        let t2 = TxId(1);
        let events = vec![
            (0, TmEvent::InvBegin { tx: t1 }),
            (0, TmEvent::RespBegin { tx: t1 }),
            (1, TmEvent::InvBegin { tx: t2 }),
            (1, TmEvent::RespBegin { tx: t2 }),
            (0, TmEvent::InvRead { tx: t1, item: x.clone() }),
            (0, TmEvent::RespRead { tx: t1, item: x.clone(), result: ReadResult::Value(0) }),
            (1, TmEvent::InvRead { tx: t2, item: y.clone() }),
            (1, TmEvent::RespRead { tx: t2, item: y.clone(), result: ReadResult::Value(0) }),
            (0, TmEvent::InvWrite { tx: t1, item: y.clone(), value: 1 }),
            (0, TmEvent::RespWrite { tx: t1, item: y.clone(), ok: true }),
            (1, TmEvent::InvWrite { tx: t2, item: x.clone(), value: 1 }),
            (1, TmEvent::RespWrite { tx: t2, item: x.clone(), ok: true }),
            (0, TmEvent::InvCommit { tx: t1 }),
            (0, TmEvent::RespCommit { tx: t1, committed: true }),
            (1, TmEvent::InvCommit { tx: t2 }),
            (1, TmEvent::RespCommit { tx: t2, committed: true }),
        ];
        let e = exec(events);
        // Write skew IS serializable?  No: T1 read x=0 so T1 must precede T2's write of
        // x; T2 read y=0 so T2 must precede T1's write of y — a cycle.  Neither order
        // is legal, so serializability is violated.
        assert!(!check_serializability(&e).satisfied);
    }
}
