//! Processor consistency — Definition 3.2 of the paper.
//!
//! Each process is allowed its own sequential view (one serialization point per
//! transaction of `com(α)`, with **no** interval constraint), subject to:
//!
//! * **1(a)** transactions executed by the same process that are ordered in real time
//!   keep that order in every view;
//! * **1(b)** transactions writing the same data item are ordered the same way in
//!   every view;
//! * **2** every transaction executed by process `pi` is legal in `pi`'s view, where
//!   each transaction is replaced by its full subhistory `H|T` (completed with a
//!   commit if it was commit-pending).

use crate::comset::{com_candidates, render_com};
use crate::legality::Block;
use crate::multiview::{solve_multiview, MultiViewProblem, View};
use crate::placement::{PlacementProblem, Point};
use crate::report::CheckResult;
use std::collections::{BTreeMap, BTreeSet};
use tm_model::{Execution, History, ProcId, TxId};

/// Name under which the result appears in a [`crate::ConditionMatrix`].
pub const PROCESSOR_CONSISTENCY: &str = "processor consistency (Def 3.2)";

/// The transactions of `com` that write each data item — used to derive the pairs on
/// which all views must agree (condition 1(b)).
pub(crate) fn agreement_pairs(history: &History, com: &[TxId]) -> Vec<(TxId, TxId)> {
    let mut pairs = Vec::new();
    for (i, a) in com.iter().enumerate() {
        let wa: BTreeSet<_> = history.final_writes_of(*a).keys().cloned().collect();
        for b in com.iter().skip(i + 1) {
            let wb: BTreeSet<_> = history.final_writes_of(*b).keys().cloned().collect();
            if wa.intersection(&wb).next().is_some() {
                pairs.push((*a, *b));
            }
        }
    }
    pairs
}

/// The processes that must be given a view: those executing at least one transaction
/// of `com` (other processes' views are unconstrained and can copy any of these).
pub(crate) fn relevant_processes(history: &History, com: &[TxId]) -> Vec<ProcId> {
    let mut procs: Vec<ProcId> = com.iter().map(|tx| history.proc_of(*tx)).collect();
    procs.sort();
    procs.dedup();
    procs
}

/// Build one process's view for processor consistency.
fn build_view(history: &History, com: &[TxId], proc: ProcId) -> View {
    let mut problem = PlacementProblem::new();
    let mut index_of = BTreeMap::new();
    let mut write_point = BTreeMap::new();
    for tx in com {
        let check = history.proc_of(*tx) == proc;
        let block = Block::full(tx.to_string(), history, *tx, check);
        let has_writes = block.has_writes();
        let idx = problem.add_point(Point { label: format!("∗{tx}"), window: None, block });
        index_of.insert(*tx, idx);
        if has_writes {
            write_point.insert(*tx, idx);
        }
    }
    // Condition 1(a): same-process real-time order, in every view.
    for a in com {
        for b in com {
            if a != b && history.proc_of(*a) == history.proc_of(*b) && history.precedes(*a, *b) {
                problem.require_order(index_of[a], index_of[b]);
            }
        }
    }
    View { proc, problem, write_point }
}

/// Check processor consistency of an execution.
pub fn check_processor_consistency(execution: &Execution) -> CheckResult {
    let history = execution.history();
    if history.transactions().is_empty() {
        return CheckResult::satisfied(PROCESSOR_CONSISTENCY, "empty history");
    }
    for com in com_candidates(&history) {
        let views: Vec<View> = relevant_processes(&history, &com)
            .into_iter()
            .map(|p| build_view(&history, &com, p))
            .collect();
        let mv = MultiViewProblem { views, agreement_pairs: agreement_pairs(&history, &com) };
        if let Some(solution) = solve_multiview(&mv) {
            let witness = solution
                .iter()
                .map(|(p, order)| {
                    let view = mv.views.iter().find(|v| v.proc == *p).unwrap();
                    format!("{p}: {}", view.problem.render_order(order))
                })
                .collect::<Vec<_>>()
                .join("; ");
            return CheckResult::satisfied(
                PROCESSOR_CONSISTENCY,
                format!("{}; {}", render_com(&com), witness),
            );
        }
    }
    CheckResult::violated(
        PROCESSOR_CONSISTENCY,
        "no per-process serialization orders agree on same-item write order while \
         keeping every process's own transactions legal",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::{ReadResult, TmEvent};
    use tm_model::step::Event;
    use tm_model::DataItem;

    fn ev(p: usize, e: TmEvent) -> Event {
        Event::Tm { proc: ProcId(p), event: e }
    }

    fn tx_events(p: usize, tx: usize, reads: &[(&str, i64)], writes: &[(&str, i64)]) -> Vec<Event> {
        let t = TxId(tx);
        let mut out = vec![ev(p, TmEvent::InvBegin { tx: t }), ev(p, TmEvent::RespBegin { tx: t })];
        for (item, value) in reads {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvRead { tx: t, item: x.clone() }));
            out.push(ev(
                p,
                TmEvent::RespRead { tx: t, item: x, result: ReadResult::Value(*value) },
            ));
        }
        for (item, value) in writes {
            let x = DataItem::new(*item);
            out.push(ev(p, TmEvent::InvWrite { tx: t, item: x.clone(), value: *value }));
            out.push(ev(p, TmEvent::RespWrite { tx: t, item: x, ok: true }));
        }
        out.push(ev(p, TmEvent::InvCommit { tx: t }));
        out.push(ev(p, TmEvent::RespCommit { tx: t, committed: true }));
        out
    }

    #[test]
    fn stale_reads_in_different_processes_are_processor_consistent() {
        // T1 (p1) commits x=1; much later T2 (p2) reads x=0.  Not strictly
        // serializable, but processor consistent: p2's view simply orders T2 first
        // (views have no real-time constraint across processes).
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        assert!(check_processor_consistency(&e).satisfied);
        assert!(!crate::serializability::check_strict_serializability(&e).satisfied);
    }

    #[test]
    fn same_process_program_order_must_be_respected() {
        // One process: T1 writes x=1, then T2 (same process) reads x=0.  Condition
        // 1(a) forces T1 before T2 in that process's own view, so the read of 0 is
        // illegal and processor consistency is violated.
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(0, 1, &[("x", 0)], &[]));
        let e = Execution::from_events(events);
        let res = check_processor_consistency(&e);
        assert!(!res.satisfied, "{res}");
    }

    #[test]
    fn disagreeing_write_orders_violate_processor_consistency() {
        // Writers: T1 (p1) writes x=1,y=1;  T2 (p2) writes x=2,z=2.
        // Reader R1 (p3) sees x=2,y=1 (requires T1 < T2).
        // Reader R2 (p4) sees x=1,z=2 (requires T2 < T1).
        // Both orders cannot agree on the x-writers ⇒ PC violated.
        let mut events = tx_events(0, 0, &[], &[("x", 1), ("y", 1)]);
        events.extend(tx_events(1, 1, &[], &[("x", 2), ("z", 2)]));
        events.extend(tx_events(2, 2, &[("x", 2), ("y", 1)], &[]));
        events.extend(tx_events(3, 3, &[("x", 1), ("z", 2)], &[]));
        let e = Execution::from_events(events);
        let res = check_processor_consistency(&e);
        assert!(!res.satisfied, "{res}");
        // …but PRAM consistency accepts it (no write-order agreement).
        assert!(crate::pram::check_pram(&e).satisfied);
    }

    #[test]
    fn agreeing_views_satisfy_processor_consistency() {
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[], &[("x", 2)]));
        events.extend(tx_events(2, 2, &[("x", 2)], &[]));
        events.extend(tx_events(3, 3, &[("x", 2)], &[]));
        let e = Execution::from_events(events);
        assert!(check_processor_consistency(&e).satisfied);
    }

    #[test]
    fn helper_functions_extract_writers_and_processes() {
        let mut events = tx_events(0, 0, &[], &[("x", 1)]);
        events.extend(tx_events(1, 1, &[], &[("x", 2)]));
        events.extend(tx_events(2, 2, &[("x", 2)], &[]));
        let e = Execution::from_events(events);
        let h = e.history();
        let com = vec![TxId(0), TxId(1), TxId(2)];
        assert_eq!(agreement_pairs(&h, &com), vec![(TxId(0), TxId(1))]);
        assert_eq!(relevant_processes(&h, &com), vec![ProcId(0), ProcId(1), ProcId(2)]);
    }

    #[test]
    fn empty_execution_is_processor_consistent() {
        assert!(check_processor_consistency(&Execution::new()).satisfied);
    }
}
