//! Enumeration of the `com(α)` candidate sets.
//!
//! Every consistency condition of the paper starts by choosing a set `com(α)`
//! *"consisting of all committed and some of the commit-pending transactions"*.
//! Committed transactions are mandatory; each commit-pending transaction may or may
//! not be completed with a commit and included.  Live transactions are never included
//! and their reads are never constrained.

use tm_model::{History, TxId};

/// Enumerate all candidate `com(α)` sets of a history: the committed transactions plus
/// every subset of the commit-pending ones.  The sets are ordered from largest to
/// smallest so that checkers that succeed with more transactions included report the
/// most informative witness first.
pub fn com_candidates(history: &History) -> Vec<Vec<TxId>> {
    let committed = history.committed();
    let pending = history.commit_pending();
    let mut out = Vec::with_capacity(1 << pending.len());
    for mask in 0..(1usize << pending.len()) {
        let mut set = committed.clone();
        for (i, tx) in pending.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.push(*tx);
            }
        }
        out.push(set);
    }
    // Largest first.
    out.sort_by_key(|s| std::cmp::Reverse(s.len()));
    out
}

/// Render a `com(α)` choice for witnesses.
pub fn render_com(com: &[TxId]) -> String {
    let names: Vec<String> = com.iter().map(|t| t.to_string()).collect();
    format!("com = {{{}}}", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::history::TmEvent;
    use tm_model::{DataItem, ProcId};

    fn history_with_pending() -> History {
        let mut h = History::new();
        // T1 committed.
        h.push(ProcId(0), TmEvent::InvBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::RespBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::InvCommit { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::RespCommit { tx: TxId(0), committed: true });
        // T2 commit-pending.
        h.push(ProcId(1), TmEvent::InvBegin { tx: TxId(1) });
        h.push(ProcId(1), TmEvent::RespBegin { tx: TxId(1) });
        h.push(ProcId(1), TmEvent::InvCommit { tx: TxId(1) });
        // T3 live.
        h.push(ProcId(2), TmEvent::InvBegin { tx: TxId(2) });
        h.push(ProcId(2), TmEvent::RespBegin { tx: TxId(2) });
        h.push(ProcId(2), TmEvent::InvRead { tx: TxId(2), item: DataItem::new("x") });
        h
    }

    #[test]
    fn committed_always_included_pending_optional_live_never() {
        let h = history_with_pending();
        let sets = com_candidates(&h);
        assert_eq!(sets.len(), 2);
        assert!(sets.iter().all(|s| s.contains(&TxId(0))));
        assert!(sets.iter().any(|s| s.contains(&TxId(1))));
        assert!(sets.iter().any(|s| !s.contains(&TxId(1))));
        assert!(sets.iter().all(|s| !s.contains(&TxId(2))));
        // Largest first.
        assert!(sets[0].len() >= sets[1].len());
    }

    #[test]
    fn two_pending_transactions_give_four_sets() {
        let mut h = history_with_pending();
        h.push(ProcId(3), TmEvent::InvBegin { tx: TxId(3) });
        h.push(ProcId(3), TmEvent::RespBegin { tx: TxId(3) });
        h.push(ProcId(3), TmEvent::InvCommit { tx: TxId(3) });
        let sets = com_candidates(&h);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].len(), 3);
    }

    #[test]
    fn render_is_readable() {
        assert_eq!(render_com(&[TxId(0), TxId(2)]), "com = {T1, T3}");
    }
}
