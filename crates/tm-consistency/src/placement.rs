//! The serialization-point placement search.
//!
//! Every searched consistency condition of the paper has the same shape: *does there
//! exist a total order of serialization points* — subject to interval ("must lie
//! within the active execution interval of …"), precedence ("`∗T,gr` precedes
//! `∗T,w`"), and adjacency ("no other serialization point is inserted between …")
//! constraints — *such that the induced sequential history is legal?*
//!
//! [`PlacementProblem`] expresses exactly that, and [`enumerate_placements`] performs
//! a pruned depth-first search over point orders:
//!
//! * **interval realizability** is checked greedily (a point can be scheduled at
//!   `max(current position, window start)`, and the branch dies as soon as any
//!   unplaced point's window has been passed),
//! * **legality** is checked incrementally block-by-block with undo (see
//!   [`crate::legality::MemoryState`]), so illegal prefixes are cut immediately,
//! * **precedence** and **adjacency** constraints restrict which point may be placed
//!   next.
//!
//! The worst case is exponential — unavoidable, the conditions themselves are
//! NP-hard to check in general — but the pruning keeps the paper-scale scenarios
//! (≤ 7 transactions, ≤ 14 points) in the microsecond range.

use crate::legality::{Block, MemoryState};

/// One serialization point to be placed.
#[derive(Debug, Clone)]
pub struct Point {
    /// Label used in witnesses (e.g. `"∗T1,w"`).
    pub label: String,
    /// The window of execution-event indices the point must be placed in
    /// (`None` = unconstrained).
    pub window: Option<(usize, usize)>,
    /// The block of operations the point stands for in the induced sequential history.
    pub block: Block,
}

/// A placement problem: points plus ordering/adjacency constraints.
#[derive(Debug, Clone, Default)]
pub struct PlacementProblem {
    /// The points to order.
    pub points: Vec<Point>,
    /// Pairs `(a, b)`: point `a` must precede point `b`.
    pub ordered: Vec<(usize, usize)>,
    /// Pairs `(a, b)`: point `b` must be placed *immediately* after point `a`
    /// (no other serialization point in between).  Implies `a` precedes `b`.
    pub adjacent: Vec<(usize, usize)>,
}

impl PlacementProblem {
    /// Create an empty problem.
    pub fn new() -> Self {
        PlacementProblem::default()
    }

    /// Add a point, returning its index.
    pub fn add_point(&mut self, point: Point) -> usize {
        self.points.push(point);
        self.points.len() - 1
    }

    /// Require point `a` to precede point `b`.
    pub fn require_order(&mut self, a: usize, b: usize) {
        self.ordered.push((a, b));
    }

    /// Require point `b` to immediately follow point `a`.
    pub fn require_adjacent(&mut self, a: usize, b: usize) {
        self.adjacent.push((a, b));
        self.ordered.push((a, b));
    }

    /// Render a placement (a sequence of point indices) as a witness string.
    pub fn render_order(&self, order: &[usize]) -> String {
        order.iter().map(|&i| self.points[i].label.clone()).collect::<Vec<_>>().join(" < ")
    }
}

struct Search<'a> {
    problem: &'a PlacementProblem,
    preds: Vec<Vec<usize>>,
    next_of: Vec<Option<usize>>,
    placed: Vec<bool>,
    order: Vec<usize>,
    cursor: usize,
    memory: MemoryState,
}

impl<'a> Search<'a> {
    fn new(problem: &'a PlacementProblem) -> Self {
        let n = problem.points.len();
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in &problem.ordered {
            preds[b].push(a);
        }
        let mut next_of = vec![None; n];
        for &(a, b) in &problem.adjacent {
            next_of[a] = Some(b);
        }
        Search {
            problem,
            preds,
            next_of,
            placed: vec![false; n],
            order: Vec::with_capacity(n),
            cursor: 0,
            memory: MemoryState::new(),
        }
    }

    /// Whether point `i` may be placed next.
    fn eligible(&self, i: usize) -> bool {
        if self.placed[i] {
            return false;
        }
        // All predecessors placed.
        if !self.preds[i].iter().all(|&p| self.placed[p]) {
            return false;
        }
        // Adjacency: if the last placed point demands an immediate successor, only
        // that successor is eligible.
        if let Some(&last) = self.order.last() {
            if let Some(succ) = self.next_of[last] {
                if !self.placed[succ] && succ != i {
                    return false;
                }
            }
        }
        // Window feasibility at the current cursor.
        if let Some((start, end)) = self.problem.points[i].window {
            let slot = self.cursor.max(start);
            if slot > end {
                return false;
            }
        }
        true
    }

    /// Whether the branch is already dead: some unplaced point's window has closed.
    fn dead_branch(&self) -> bool {
        self.problem.points.iter().enumerate().any(|(i, p)| {
            !self.placed[i] && matches!(p.window, Some((_, end)) if end < self.cursor)
        })
    }

    /// A point is a *no-op* if placing it cannot affect any other point: its block
    /// neither writes anything nor carries checked reads, it has no adjacency
    /// successor, and placing it does not advance the cursor.  Placing an eligible
    /// no-op immediately (without branching on alternatives) is always safe, and it
    /// collapses the huge symmetric subtrees produced by "don't care" blocks.
    fn is_noop(&self, i: usize) -> bool {
        let p = &self.problem.points[i];
        if p.block.has_writes() || p.block.has_checked_reads() || self.next_of[i].is_some() {
            return false;
        }
        match p.window {
            None => true,
            Some((start, _)) => start <= self.cursor,
        }
    }

    fn run(&mut self, visit: &mut dyn FnMut(&[usize]) -> bool) -> bool {
        if self.order.len() == self.problem.points.len() {
            return visit(&self.order);
        }
        if self.dead_branch() {
            return false;
        }
        // Greedy rule: place an eligible no-op point immediately, without branching.
        if let Some(i) =
            (0..self.problem.points.len()).find(|&i| self.eligible(i) && self.is_noop(i))
        {
            if self.memory.apply_block(&self.problem.points[i].block).is_ok() {
                self.placed[i] = true;
                self.order.push(i);
                let done = self.run(visit);
                if !done {
                    self.order.pop();
                    self.placed[i] = false;
                    self.memory.undo();
                }
                return done;
            }
        }
        for i in 0..self.problem.points.len() {
            if !self.eligible(i) {
                continue;
            }
            // Legality of the induced history so far.
            if self.memory.apply_block(&self.problem.points[i].block).is_err() {
                continue;
            }
            let saved_cursor = self.cursor;
            if let Some((start, _)) = self.problem.points[i].window {
                self.cursor = self.cursor.max(start);
            }
            self.placed[i] = true;
            self.order.push(i);

            if self.run(visit) {
                return true;
            }

            self.order.pop();
            self.placed[i] = false;
            self.cursor = saved_cursor;
            self.memory.undo();
        }
        false
    }
}

/// Enumerate complete placements.  `visit` is called for every placement that
/// satisfies all constraints and legality; returning `true` stops the search (and
/// makes `enumerate_placements` return `true`).
pub fn enumerate_placements(
    problem: &PlacementProblem,
    visit: &mut dyn FnMut(&[usize]) -> bool,
) -> bool {
    Search::new(problem).run(visit)
}

/// Find the first satisfying placement, if any.
pub fn find_placement(problem: &PlacementProblem) -> Option<Vec<usize>> {
    let mut found = None;
    enumerate_placements(problem, &mut |order| {
        found = Some(order.to_vec());
        true
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::BlockOp;
    use tm_model::DataItem;

    fn block(label: &str, ops: Vec<BlockOp>, check: bool) -> Block {
        Block { label: label.into(), ops, check_reads: check }
    }
    fn read(item: &str, v: i64) -> BlockOp {
        BlockOp::Read { item: DataItem::new(item), value: v }
    }
    fn write(item: &str, v: i64) -> BlockOp {
        BlockOp::Write { item: DataItem::new(item), value: v }
    }
    fn point(label: &str, window: Option<(usize, usize)>, blk: Block) -> Point {
        Point { label: label.into(), window, block: blk }
    }

    #[test]
    fn unconstrained_points_find_a_legal_order() {
        // T2 reads x=1, T1 writes x=1: only the order T1.w < T2.gr is legal.
        let mut p = PlacementProblem::new();
        let w = p.add_point(point("∗T1,w", None, block("T1.w", vec![write("x", 1)], false)));
        let r = p.add_point(point("∗T2,gr", None, block("T2.gr", vec![read("x", 1)], true)));
        let order = find_placement(&p).expect("placement must exist");
        assert_eq!(order, vec![w, r]);
        assert_eq!(p.render_order(&order), "∗T1,w < ∗T2,gr");
    }

    #[test]
    fn illegal_reads_make_the_problem_unsatisfiable() {
        // T2 reads x=1 but nobody writes 1.
        let mut p = PlacementProblem::new();
        p.add_point(point("∗T1,w", None, block("T1.w", vec![write("x", 2)], false)));
        p.add_point(point("∗T2,gr", None, block("T2.gr", vec![read("x", 1)], true)));
        assert!(find_placement(&p).is_none());
    }

    #[test]
    fn windows_constrain_the_order() {
        // Both orders are legal for legality, but the windows force a < b.
        let mut p = PlacementProblem::new();
        let a = p.add_point(point("a", Some((0, 5)), block("a", vec![], false)));
        let b = p.add_point(point("b", Some((10, 20)), block("b", vec![], false)));
        let order = find_placement(&p).unwrap();
        assert_eq!(order, vec![a, b]);

        // Disjoint windows in the other direction make b-first impossible; combined
        // with an ordering constraint b < a the problem is unsatisfiable.
        let mut p2 = PlacementProblem::new();
        let a2 = p2.add_point(point("a", Some((0, 5)), block("a", vec![], false)));
        let b2 = p2.add_point(point("b", Some((10, 20)), block("b", vec![], false)));
        p2.require_order(b2, a2);
        assert!(find_placement(&p2).is_none());
    }

    #[test]
    fn overlapping_windows_allow_both_orders() {
        let mut count = 0;
        let mut p = PlacementProblem::new();
        p.add_point(point("a", Some((0, 10)), block("a", vec![write("pa", 1)], false)));
        p.add_point(point("b", Some((5, 15)), block("b", vec![write("pb", 1)], false)));
        enumerate_placements(&p, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn nested_window_placement_is_found() {
        // a's window strictly contains b's; both orders realizable.
        let mut count = 0;
        let mut p = PlacementProblem::new();
        p.add_point(point("a", Some((0, 100)), block("a", vec![write("pa", 1)], false)));
        p.add_point(point("b", Some((40, 60)), block("b", vec![write("pb", 1)], false)));
        enumerate_placements(&p, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn ordering_constraints_are_respected() {
        let mut p = PlacementProblem::new();
        let a = p.add_point(point("gr", None, block("gr", vec![], false)));
        let b = p.add_point(point("w", None, block("w", vec![], false)));
        p.require_order(a, b);
        let mut orders = Vec::new();
        enumerate_placements(&p, &mut |o| {
            orders.push(o.to_vec());
            false
        });
        assert_eq!(orders, vec![vec![a, b]]);
    }

    #[test]
    fn adjacency_forbids_interleaving_points() {
        // Three points: (a, b) adjacent; c must not slip between them.
        let mut p = PlacementProblem::new();
        let a = p.add_point(point("a", None, block("a", vec![write("pa", 1)], false)));
        let b = p.add_point(point("b", None, block("b", vec![write("pb", 1)], false)));
        let c = p.add_point(point("c", None, block("c", vec![write("pc", 1)], false)));
        p.require_adjacent(a, b);
        let mut orders = Vec::new();
        enumerate_placements(&p, &mut |o| {
            orders.push(o.to_vec());
            false
        });
        assert!(orders.contains(&vec![a, b, c]));
        assert!(orders.contains(&vec![c, a, b]));
        assert!(!orders.iter().any(|o| *o == vec![a, c, b]));
    }

    #[test]
    fn legality_prunes_with_windows_and_orders_combined() {
        // Writer's window is late; a reader expecting the value must come after, but
        // the reader's window closes before the writer's opens → unsatisfiable.
        let mut p = PlacementProblem::new();
        p.add_point(point("w", Some((10, 20)), block("w", vec![write("x", 1)], false)));
        p.add_point(point("r", Some((0, 5)), block("r", vec![read("x", 1)], true)));
        assert!(find_placement(&p).is_none());

        // If instead the reader expects the initial value, placing it first works.
        let mut p2 = PlacementProblem::new();
        p2.add_point(point("w", Some((10, 20)), block("w", vec![write("x", 1)], false)));
        p2.add_point(point("r", Some((0, 5)), block("r", vec![read("x", 0)], true)));
        assert!(find_placement(&p2).is_some());
    }

    #[test]
    fn three_transaction_chain_has_unique_serialization() {
        // T1 writes x=1; T2 reads x=1 writes y=2; T3 reads y=2 — order forced.
        let mut p = PlacementProblem::new();
        let t1 = p.add_point(point("T1", None, block("T1", vec![write("x", 1)], true)));
        let t2 =
            p.add_point(point("T2", None, block("T2", vec![read("x", 1), write("y", 2)], true)));
        let t3 = p.add_point(point("T3", None, block("T3", vec![read("y", 2)], true)));
        let mut orders = Vec::new();
        enumerate_placements(&p, &mut |o| {
            orders.push(o.to_vec());
            false
        });
        assert_eq!(orders, vec![vec![t1, t2, t3]]);
    }
}
