//! The contents of a base object: a `Word`.
//!
//! The system model only requires base objects to hold *some* state on which atomic
//! primitives operate.  Real TM algorithms store different shapes of metadata in their
//! base objects — plain values, versioned values, ownership records ("locators" in
//! DSTM terminology), transaction status words, …  Rather than forcing every algorithm
//! to encode its metadata into a single integer, [`Word`] is a small algebraic type
//! covering the shapes used by the algorithms in `tm-algorithms`.  Compare-and-swap
//! compares entire `Word`s structurally, which matches the "atomic register holding an
//! abstract value" reading of the model.

use crate::ids::TxId;
use std::fmt;

/// Status of a transaction as recorded in a shared status base object.
///
/// Used by obstruction-free algorithms in the DSTM family, where committing or
/// aborting a transaction is a single CAS on its status word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatusWord {
    /// The transaction is still running.
    Active,
    /// The transaction committed; its tentative values are the current values.
    Committed,
    /// The transaction aborted; its tentative values must be discarded.
    Aborted,
}

impl fmt::Display for TxStatusWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxStatusWord::Active => f.write_str("ACTIVE"),
            TxStatusWord::Committed => f.write_str("COMMITTED"),
            TxStatusWord::Aborted => f.write_str("ABORTED"),
        }
    }
}

/// The state held by a single base object.
///
/// All variants are plain data; equality is structural, which is what the simulated
/// compare-and-swap primitive uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Word {
    /// An untyped machine word holding an integer (also used for locks: 0 = free).
    Int(i64),
    /// A versioned value: the workhorse of timestamp/lock-based STMs (TL/TL2 style).
    Ver {
        /// Version number, incremented by every committed writer.
        version: u64,
        /// Current committed value.
        value: i64,
        /// Whether a writer currently holds the write lock on this item.
        locked: bool,
    },
    /// A DSTM-style locator: the owner transaction together with old and new values.
    Locator {
        /// Owning (last writing) transaction, if any.
        owner: Option<TxId>,
        /// Value before the owner's tentative write.
        old: i64,
        /// The owner's tentative value (equals `old` until the owner writes).
        new: i64,
    },
    /// A transaction status word.
    Status(TxStatusWord),
    /// A pair of integers (generic two-field record, e.g. `(timestamp, value)`).
    Pair(i64, i64),
    /// An uninitialised / empty object.
    Null,
}

impl Word {
    /// Build an unlocked versioned value at version 0.
    pub fn ver0(value: i64) -> Word {
        Word::Ver { version: 0, value, locked: false }
    }

    /// Build an un-owned locator around the given committed value.
    pub fn locator0(value: i64) -> Word {
        Word::Locator { owner: None, old: value, new: value }
    }

    /// Interpret the word as an integer, panicking with a descriptive message if it
    /// has a different shape.  Algorithms use this when they know the object layout.
    pub fn expect_int(&self) -> i64 {
        match self {
            Word::Int(v) => *v,
            other => panic!("base object expected to hold Word::Int, found {other:?}"),
        }
    }

    /// Interpret the word as a versioned value.
    pub fn expect_ver(&self) -> (u64, i64, bool) {
        match self {
            Word::Ver { version, value, locked } => (*version, *value, *locked),
            other => panic!("base object expected to hold Word::Ver, found {other:?}"),
        }
    }

    /// Interpret the word as a locator.
    pub fn expect_locator(&self) -> (Option<TxId>, i64, i64) {
        match self {
            Word::Locator { owner, old, new } => (*owner, *old, *new),
            other => panic!("base object expected to hold Word::Locator, found {other:?}"),
        }
    }

    /// Interpret the word as a transaction status.
    pub fn expect_status(&self) -> TxStatusWord {
        match self {
            Word::Status(s) => *s,
            other => panic!("base object expected to hold Word::Status, found {other:?}"),
        }
    }

    /// Interpret the word as a pair.
    pub fn expect_pair(&self) -> (i64, i64) {
        match self {
            Word::Pair(a, b) => (*a, *b),
            other => panic!("base object expected to hold Word::Pair, found {other:?}"),
        }
    }

    /// `true` if this word is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Word::Null)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Int(v) => write!(f, "{v}"),
            Word::Ver { version, value, locked } => {
                write!(f, "⟨v{version}:{value}{}⟩", if *locked { ":L" } else { "" })
            }
            Word::Locator { owner, old, new } => match owner {
                Some(tx) => write!(f, "⟨owner={tx}, old={old}, new={new}⟩"),
                None => write!(f, "⟨free, {old}⟩"),
            },
            Word::Status(s) => write!(f, "{s}"),
            Word::Pair(a, b) => write!(f, "({a},{b})"),
            Word::Null => f.write_str("⊥"),
        }
    }
}

impl From<i64> for Word {
    fn from(v: i64) -> Self {
        Word::Int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_shapes() {
        assert_eq!(Word::ver0(5).expect_ver(), (0, 5, false));
        assert_eq!(Word::locator0(3).expect_locator(), (None, 3, 3));
        assert_eq!(Word::from(9).expect_int(), 9);
        assert!(Word::Null.is_null());
        assert!(!Word::Int(0).is_null());
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Word::Int(1), Word::Int(1));
        assert_ne!(Word::Int(1), Word::Int(2));
        assert_ne!(Word::Int(0), Word::Null);
        assert_eq!(
            Word::Ver { version: 2, value: 7, locked: false },
            Word::Ver { version: 2, value: 7, locked: false }
        );
        assert_ne!(
            Word::Ver { version: 2, value: 7, locked: false },
            Word::Ver { version: 2, value: 7, locked: true }
        );
        assert_eq!(
            Word::Locator { owner: Some(TxId(1)), old: 0, new: 4 },
            Word::Locator { owner: Some(TxId(1)), old: 0, new: 4 }
        );
        assert_ne!(
            Word::Locator { owner: Some(TxId(1)), old: 0, new: 4 },
            Word::Locator { owner: Some(TxId(2)), old: 0, new: 4 }
        );
    }

    #[test]
    #[should_panic(expected = "expected to hold Word::Int")]
    fn expect_int_panics_on_wrong_shape() {
        Word::Null.expect_int();
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(Word::Int(3).to_string(), "3");
        assert_eq!(Word::Status(TxStatusWord::Active).to_string(), "ACTIVE");
        assert_eq!(Word::Pair(1, 2).to_string(), "(1,2)");
        assert_eq!(Word::Null.to_string(), "⊥");
    }
}
