//! Steps and events: the atoms of an execution.
//!
//! The paper's model: *"A step of a process consists of a single primitive on a single
//! base object, the response to that primitive, and zero or more local operations …
//! Invocations and responses performed by transactions are considered as steps."*
//!
//! Accordingly an [`Event`] is either a [`MemStep`] (a primitive applied to a base
//! object) or a transactional invocation/response ([`crate::history::TmEvent`]).  The
//! ordered list of events is an [`crate::execution::Execution`].

use crate::history::TmEvent;
use crate::ids::{ObjId, ProcId, TxId};
use crate::primitive::{PrimResponse, Primitive};
use std::fmt;

/// A memory step: one atomic primitive applied by one process to one base object,
/// together with the response it received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStep {
    /// The process that took the step.
    pub proc: ProcId,
    /// The transaction on whose behalf the step was taken.
    pub tx: TxId,
    /// The base object accessed (run-local id).
    pub obj: ObjId,
    /// The base object's stable name — the identity used across executions.
    pub obj_name: String,
    /// The primitive applied.
    pub prim: Primitive,
    /// The response received.
    pub resp: PrimResponse,
}

impl MemStep {
    /// Whether the step applies a non-trivial primitive (one that may change state).
    pub fn is_nontrivial(&self) -> bool {
        self.prim.is_nontrivial()
    }

    /// The observable footprint of the step for indistinguishability comparisons:
    /// the object name, the primitive and the response (but *not* the run-local
    /// object id, which may legitimately differ between executions).
    pub fn footprint(&self) -> (&str, &Primitive, &PrimResponse) {
        (&self.obj_name, &self.prim, &self.resp)
    }
}

impl fmt::Display for MemStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}.{} = {}", self.proc, self.tx, self.obj_name, self.prim, self.resp)
    }
}

/// One event of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A primitive applied to a base object.
    Mem(MemStep),
    /// A transactional invocation or response (a "TM-interface" event).
    Tm {
        /// The process performing the invocation / receiving the response.
        proc: ProcId,
        /// The event itself.
        event: TmEvent,
    },
}

impl Event {
    /// The process that performed the event.
    pub fn proc(&self) -> ProcId {
        match self {
            Event::Mem(s) => s.proc,
            Event::Tm { proc, .. } => *proc,
        }
    }

    /// The transaction this event belongs to.
    pub fn tx(&self) -> TxId {
        match self {
            Event::Mem(s) => s.tx,
            Event::Tm { event, .. } => event.tx(),
        }
    }

    /// The memory step, if this is a memory event.
    pub fn as_mem(&self) -> Option<&MemStep> {
        match self {
            Event::Mem(s) => Some(s),
            Event::Tm { .. } => None,
        }
    }

    /// The TM-interface event, if this is one.
    pub fn as_tm(&self) -> Option<&TmEvent> {
        match self {
            Event::Mem(_) => None,
            Event::Tm { event, .. } => Some(event),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Mem(s) => write!(f, "{s}"),
            Event::Tm { proc, event } => write!(f, "{proc}: {event}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DataItem;
    use crate::word::Word;

    fn step(nontrivial: bool) -> MemStep {
        MemStep {
            proc: ProcId(0),
            tx: TxId(0),
            obj: ObjId(3),
            obj_name: "val:x".to_string(),
            prim: if nontrivial { Primitive::Write(Word::Int(1)) } else { Primitive::Read },
            resp: if nontrivial { PrimResponse::Ack } else { PrimResponse::Value(Word::Int(0)) },
        }
    }

    #[test]
    fn footprint_excludes_object_id() {
        let mut a = step(false);
        let mut b = step(false);
        a.obj = ObjId(1);
        b.obj = ObjId(9);
        assert_eq!(a.footprint(), b.footprint());
        assert_ne!(a, b);
    }

    #[test]
    fn nontriviality_follows_the_primitive() {
        assert!(!step(false).is_nontrivial());
        assert!(step(true).is_nontrivial());
    }

    #[test]
    fn event_accessors() {
        let m = Event::Mem(step(false));
        assert_eq!(m.proc(), ProcId(0));
        assert_eq!(m.tx(), TxId(0));
        assert!(m.as_mem().is_some());
        assert!(m.as_tm().is_none());

        let t = Event::Tm {
            proc: ProcId(2),
            event: TmEvent::InvRead { tx: TxId(4), item: DataItem::new("a") },
        };
        assert_eq!(t.proc(), ProcId(2));
        assert_eq!(t.tx(), TxId(4));
        assert!(t.as_mem().is_none());
        assert!(t.as_tm().is_some());
    }

    #[test]
    fn display_contains_object_and_primitive() {
        let rendered = step(true).to_string();
        assert!(rendered.contains("val:x"));
        assert!(rendered.contains("write"));
    }
}
