//! Histories: sequences of transactional invocations and responses.
//!
//! A history is the projection of an execution onto the TM interface.  All the
//! consistency conditions of the paper (snapshot isolation, processor consistency,
//! weak adaptive consistency, serializability, …) are predicates on histories —
//! sometimes together with interval information taken from the underlying execution.
//!
//! This module provides the event vocabulary ([`TmEvent`]), the [`History`] container
//! and the structural queries the paper defines: well-formedness, per-transaction
//! subhistories `H|T`, transaction status (committed / aborted / commit-pending /
//! live), the real-time precedence relation `T1 <α T2`, and the read/write summaries
//! used to build the `Tgr` / `Tw` transactions of Definition 3.1.

use crate::ids::{DataItem, ProcId, TxId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Result of a transactional read as recorded in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResult {
    /// The read returned a value.
    Value(i64),
    /// The read forced the transaction to abort (`A_T` response).
    Abort,
}

/// A transactional invocation or response event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmEvent {
    /// Invocation of `begin_T`.
    InvBegin {
        /// The transaction beginning.
        tx: TxId,
    },
    /// Response `ok` to `begin_T`.
    RespBegin {
        /// The transaction that began.
        tx: TxId,
    },
    /// Invocation of `x.read()` by `tx`.
    InvRead {
        /// The reading transaction.
        tx: TxId,
        /// The data item read.
        item: DataItem,
    },
    /// Response to `x.read()`.
    RespRead {
        /// The reading transaction.
        tx: TxId,
        /// The data item read.
        item: DataItem,
        /// The value returned, or an abort response.
        result: ReadResult,
    },
    /// Invocation of `x.write(v)` by `tx`.
    InvWrite {
        /// The writing transaction.
        tx: TxId,
        /// The data item written.
        item: DataItem,
        /// The value written.
        value: i64,
    },
    /// Response to `x.write(v)`: `ok` on success, `A_T` if the transaction must abort.
    RespWrite {
        /// The writing transaction.
        tx: TxId,
        /// The data item written.
        item: DataItem,
        /// `true` iff the write succeeded (`ok`); `false` means the abort response.
        ok: bool,
    },
    /// Invocation of `commit_T`.
    InvCommit {
        /// The committing transaction.
        tx: TxId,
    },
    /// Response to `commit_T`: `C_T` (committed) or `A_T` (aborted).
    RespCommit {
        /// The transaction.
        tx: TxId,
        /// `true` for `C_T`, `false` for `A_T`.
        committed: bool,
    },
    /// Invocation of `abort_T` (an explicit programmatic abort).
    InvAbort {
        /// The aborting transaction.
        tx: TxId,
    },
    /// Response `A_T` to `abort_T`.
    RespAbort {
        /// The aborted transaction.
        tx: TxId,
    },
}

impl TmEvent {
    /// The transaction the event belongs to.
    pub fn tx(&self) -> TxId {
        match self {
            TmEvent::InvBegin { tx }
            | TmEvent::RespBegin { tx }
            | TmEvent::InvRead { tx, .. }
            | TmEvent::RespRead { tx, .. }
            | TmEvent::InvWrite { tx, .. }
            | TmEvent::RespWrite { tx, .. }
            | TmEvent::InvCommit { tx }
            | TmEvent::RespCommit { tx, .. }
            | TmEvent::InvAbort { tx }
            | TmEvent::RespAbort { tx } => *tx,
        }
    }

    /// Whether the event is an invocation (as opposed to a response).
    pub fn is_invocation(&self) -> bool {
        matches!(
            self,
            TmEvent::InvBegin { .. }
                | TmEvent::InvRead { .. }
                | TmEvent::InvWrite { .. }
                | TmEvent::InvCommit { .. }
                | TmEvent::InvAbort { .. }
        )
    }

    /// Whether the event is a response.
    pub fn is_response(&self) -> bool {
        !self.is_invocation()
    }

    /// Whether the event is a terminal response (`C_T` or `A_T`).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TmEvent::RespCommit { .. }
                | TmEvent::RespAbort { .. }
                | TmEvent::RespRead { result: ReadResult::Abort, .. }
                | TmEvent::RespWrite { ok: false, .. }
        )
    }
}

impl fmt::Display for TmEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmEvent::InvBegin { tx } => write!(f, "begin_{tx}"),
            TmEvent::RespBegin { tx } => write!(f, "ok(begin_{tx})"),
            TmEvent::InvRead { tx, item } => write!(f, "{tx}: {item}.read()"),
            TmEvent::RespRead { tx, item, result } => match result {
                ReadResult::Value(v) => write!(f, "{tx}: {item} -> {v}"),
                ReadResult::Abort => write!(f, "{tx}: {item} -> A_{tx}"),
            },
            TmEvent::InvWrite { tx, item, value } => write!(f, "{tx}: {item}.write({value})"),
            TmEvent::RespWrite { tx, item, ok } => {
                if *ok {
                    write!(f, "{tx}: {item}.write ok")
                } else {
                    write!(f, "{tx}: {item}.write -> A_{tx}")
                }
            }
            TmEvent::InvCommit { tx } => write!(f, "commit_{tx}"),
            TmEvent::RespCommit { tx, committed } => {
                if *committed {
                    write!(f, "C_{tx}")
                } else {
                    write!(f, "A_{tx}")
                }
            }
            TmEvent::InvAbort { tx } => write!(f, "abort_{tx}"),
            TmEvent::RespAbort { tx } => write!(f, "A_{tx}"),
        }
    }
}

/// Status of a transaction in a history (terminology of Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// `H|T` ends with `C_T`.
    Committed,
    /// `H|T` ends with `A_T`.
    Aborted,
    /// `H|T` ends with an invocation of `commit_T` (no response yet).
    CommitPending,
    /// The transaction neither committed nor aborted and is not commit-pending.
    Live,
}

impl TxStatus {
    /// Whether the transaction completed (committed or aborted).
    pub fn is_complete(self) -> bool {
        matches!(self, TxStatus::Committed | TxStatus::Aborted)
    }
}

/// A history: the sequence of invocation / response events of an execution, each
/// tagged with the process that performed it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    events: Vec<(ProcId, TmEvent)>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Create a history from an ordered list of `(process, event)` pairs.
    pub fn from_events(events: Vec<(ProcId, TmEvent)>) -> Self {
        History { events }
    }

    /// Append an event.
    pub fn push(&mut self, proc: ProcId, event: TmEvent) {
        self.events.push((proc, event));
    }

    /// The events in order.
    pub fn events(&self) -> &[(ProcId, TmEvent)] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All transactions appearing in the history, in order of first appearance.
    pub fn transactions(&self) -> Vec<TxId> {
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        for (_, ev) in &self.events {
            if seen.insert(ev.tx()) {
                order.push(ev.tx());
            }
        }
        order
    }

    /// The process executing a transaction (panics if the transaction is unknown).
    pub fn proc_of(&self, tx: TxId) -> ProcId {
        self.events
            .iter()
            .find(|(_, ev)| ev.tx() == tx)
            .map(|(p, _)| *p)
            .unwrap_or_else(|| panic!("history has no transaction {tx}"))
    }

    /// `H|T`: the subsequence of events belonging to `tx`.
    pub fn subhistory(&self, tx: TxId) -> Vec<&TmEvent> {
        self.events.iter().filter(|(_, ev)| ev.tx() == tx).map(|(_, ev)| ev).collect()
    }

    /// Status of a transaction (committed / aborted / commit-pending / live).
    pub fn status(&self, tx: TxId) -> TxStatus {
        let sub = self.subhistory(tx);
        match sub.last() {
            Some(TmEvent::RespCommit { committed: true, .. }) => TxStatus::Committed,
            Some(TmEvent::RespCommit { committed: false, .. })
            | Some(TmEvent::RespAbort { .. })
            | Some(TmEvent::RespRead { result: ReadResult::Abort, .. })
            | Some(TmEvent::RespWrite { ok: false, .. }) => TxStatus::Aborted,
            Some(TmEvent::InvCommit { .. }) => TxStatus::CommitPending,
            _ => TxStatus::Live,
        }
    }

    /// All committed transactions, in order of first appearance.
    pub fn committed(&self) -> Vec<TxId> {
        self.transactions().into_iter().filter(|t| self.status(*t) == TxStatus::Committed).collect()
    }

    /// All commit-pending transactions, in order of first appearance.
    pub fn commit_pending(&self) -> Vec<TxId> {
        self.transactions()
            .into_iter()
            .filter(|t| self.status(*t) == TxStatus::CommitPending)
            .collect()
    }

    /// All aborted transactions, in order of first appearance.
    pub fn aborted(&self) -> Vec<TxId> {
        self.transactions().into_iter().filter(|t| self.status(*t) == TxStatus::Aborted).collect()
    }

    /// The index of the `begin` invocation of `tx`, if any.
    pub fn begin_index(&self, tx: TxId) -> Option<usize> {
        self.events.iter().position(|(_, ev)| matches!(ev, TmEvent::InvBegin { tx: t } if *t == tx))
    }

    /// The index of the terminal response (`C_T`/`A_T`) of `tx`, if it completed.
    pub fn completion_index(&self, tx: TxId) -> Option<usize> {
        self.events.iter().position(|(_, ev)| {
            ev.tx() == tx
                && matches!(
                    ev,
                    TmEvent::RespCommit { .. }
                        | TmEvent::RespAbort { .. }
                        | TmEvent::RespRead { result: ReadResult::Abort, .. }
                        | TmEvent::RespWrite { ok: false, .. }
                )
        })
    }

    /// Real-time precedence: `T1 <α T2` iff `T1` completed before `begin_T2` was
    /// invoked.
    pub fn precedes(&self, t1: TxId, t2: TxId) -> bool {
        match (self.completion_index(t1), self.begin_index(t2)) {
            (Some(c1), Some(b2)) => c1 < b2,
            _ => false,
        }
    }

    /// `T1` and `T2` are concurrent iff neither precedes the other.
    pub fn concurrent(&self, t1: TxId, t2: TxId) -> bool {
        t1 != t2 && !self.precedes(t1, t2) && !self.precedes(t2, t1)
    }

    /// Transactions ordered by their `begin` invocation (the order used to build the
    /// consistency groups of Definition 3.3).
    pub fn begin_order(&self) -> Vec<TxId> {
        let mut txs: Vec<(usize, TxId)> = self
            .transactions()
            .into_iter()
            .filter_map(|t| self.begin_index(t).map(|i| (i, t)))
            .collect();
        txs.sort();
        txs.into_iter().map(|(_, t)| t).collect()
    }

    /// A history is *sequential* if no two transactions are concurrent in it.
    pub fn is_sequential(&self) -> bool {
        let txs = self.transactions();
        for (i, &a) in txs.iter().enumerate() {
            for &b in txs.iter().skip(i + 1) {
                if self.concurrent(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// A history is *complete* if it contains no live transaction.  Note that a
    /// commit-pending transaction has neither committed nor aborted, so (following the
    /// paper's wording) it still counts as live for completeness purposes.
    pub fn is_complete(&self) -> bool {
        self.transactions().iter().all(|t| self.status(*t).is_complete())
    }

    /// Successful reads of a transaction, in order, with the item and the value read.
    pub fn reads_of(&self, tx: TxId) -> Vec<(DataItem, i64)> {
        self.subhistory(tx)
            .iter()
            .filter_map(|ev| match ev {
                TmEvent::RespRead { item, result: ReadResult::Value(v), .. } => {
                    Some((item.clone(), *v))
                }
                _ => None,
            })
            .collect()
    }

    /// *Global* reads of a transaction: successful reads of items the transaction has
    /// not written earlier in its own subhistory (Definition of `T|read_g`).
    pub fn global_reads_of(&self, tx: TxId) -> Vec<(DataItem, i64)> {
        let mut written: BTreeSet<DataItem> = BTreeSet::new();
        let mut out = Vec::new();
        for ev in self.subhistory(tx) {
            match ev {
                TmEvent::InvWrite { item, .. } => {
                    written.insert(item.clone());
                }
                TmEvent::RespRead { item, result: ReadResult::Value(v), .. }
                    if !written.contains(item) =>
                {
                    out.push((item.clone(), *v));
                }
                _ => {}
            }
        }
        out
    }

    /// Successful writes of a transaction, in order (item, value).
    pub fn writes_of(&self, tx: TxId) -> Vec<(DataItem, i64)> {
        let sub = self.subhistory(tx);
        let mut out = Vec::new();
        for (i, ev) in sub.iter().enumerate() {
            if let TmEvent::InvWrite { item, value, .. } = ev {
                // A write is successful if its response is `ok` (the matching response
                // is the next event of the same transaction about the same item).
                let ok = sub.iter().skip(i + 1).find_map(|later| match later {
                    TmEvent::RespWrite { item: it, ok, .. } if it == item => Some(*ok),
                    _ => None,
                });
                if ok.unwrap_or(false) {
                    out.push((item.clone(), *value));
                }
            }
        }
        out
    }

    /// The final value written by the transaction to each item (last write wins).
    pub fn final_writes_of(&self, tx: TxId) -> BTreeMap<DataItem, i64> {
        let mut map = BTreeMap::new();
        for (item, value) in self.writes_of(tx) {
            map.insert(item, value);
        }
        map
    }

    /// Check the well-formedness conditions of Section 3 for every transaction.
    /// Returns the list of violations found (empty = well-formed).
    pub fn well_formedness_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for tx in self.transactions() {
            let sub = self.subhistory(tx);
            // (i) alternating invocations and responses starting with begin · ok
            if !matches!(sub.first(), Some(TmEvent::InvBegin { .. })) {
                violations.push(format!("{tx}: does not start with begin"));
            }
            let mut expect_invocation = true;
            for ev in &sub {
                if ev.is_invocation() != expect_invocation {
                    violations.push(format!("{tx}: invocations and responses do not alternate"));
                    break;
                }
                expect_invocation = !expect_invocation;
            }
            // (vi) nothing follows a terminal response
            if let Some(term) = sub.iter().position(|ev| {
                matches!(ev, TmEvent::RespCommit { .. } | TmEvent::RespAbort { .. })
                    || matches!(ev, TmEvent::RespRead { result: ReadResult::Abort, .. })
                    || matches!(ev, TmEvent::RespWrite { ok: false, .. })
            }) {
                if term + 1 != sub.len() {
                    violations.push(format!("{tx}: events follow a terminal response"));
                }
            }
        }
        violations
    }

    /// `true` iff the history satisfies all well-formedness conditions.
    pub fn is_well_formed(&self) -> bool {
        self.well_formedness_violations().is_empty()
    }

    /// Render the history, one event per line, for diagnostics and figures.
    pub fn render(&self) -> String {
        self.events.iter().map(|(p, ev)| format!("{p}: {ev}")).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the canonical small history used across the tests:
    /// T1 (p1) writes x=1 and commits; then T2 (p2) reads x -> 1 and commits;
    /// T3 (p3) begins but never completes (live).
    fn sample() -> History {
        let mut h = History::new();
        let p1 = ProcId(0);
        let p2 = ProcId(1);
        let p3 = ProcId(2);
        let t1 = TxId(0);
        let t2 = TxId(1);
        let t3 = TxId(2);
        let x = DataItem::new("x");
        h.push(p1, TmEvent::InvBegin { tx: t1 });
        h.push(p1, TmEvent::RespBegin { tx: t1 });
        h.push(p1, TmEvent::InvWrite { tx: t1, item: x.clone(), value: 1 });
        h.push(p1, TmEvent::RespWrite { tx: t1, item: x.clone(), ok: true });
        h.push(p1, TmEvent::InvCommit { tx: t1 });
        h.push(p1, TmEvent::RespCommit { tx: t1, committed: true });
        h.push(p2, TmEvent::InvBegin { tx: t2 });
        h.push(p2, TmEvent::RespBegin { tx: t2 });
        h.push(p2, TmEvent::InvRead { tx: t2, item: x.clone() });
        h.push(p2, TmEvent::RespRead { tx: t2, item: x.clone(), result: ReadResult::Value(1) });
        h.push(p2, TmEvent::InvCommit { tx: t2 });
        h.push(p2, TmEvent::RespCommit { tx: t2, committed: true });
        h.push(p3, TmEvent::InvBegin { tx: t3 });
        h.push(p3, TmEvent::RespBegin { tx: t3 });
        h
    }

    #[test]
    fn statuses_are_classified() {
        let h = sample();
        assert_eq!(h.status(TxId(0)), TxStatus::Committed);
        assert_eq!(h.status(TxId(1)), TxStatus::Committed);
        assert_eq!(h.status(TxId(2)), TxStatus::Live);
        assert!(TxStatus::Committed.is_complete());
        assert!(!TxStatus::Live.is_complete());
        assert_eq!(h.committed(), vec![TxId(0), TxId(1)]);
        assert!(h.aborted().is_empty());
        assert!(h.commit_pending().is_empty());
    }

    #[test]
    fn precedence_and_concurrency() {
        let h = sample();
        assert!(h.precedes(TxId(0), TxId(1)));
        assert!(!h.precedes(TxId(1), TxId(0)));
        assert!(h.precedes(TxId(0), TxId(2)));
        assert!(!h.precedes(TxId(2), TxId(0)));
        assert!(!h.concurrent(TxId(0), TxId(1)));
        // T3 began after T2 completed so they are not concurrent either.
        assert!(!h.concurrent(TxId(1), TxId(2)));
        assert!(!h.concurrent(TxId(0), TxId(0)));
    }

    #[test]
    fn commit_pending_status() {
        let mut h = History::new();
        h.push(ProcId(0), TmEvent::InvBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::RespBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::InvCommit { tx: TxId(0) });
        assert_eq!(h.status(TxId(0)), TxStatus::CommitPending);
        assert_eq!(h.commit_pending(), vec![TxId(0)]);
        assert!(!h.is_complete());
    }

    #[test]
    fn aborted_by_read_response() {
        let mut h = History::new();
        h.push(ProcId(0), TmEvent::InvBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::RespBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::InvRead { tx: TxId(0), item: DataItem::new("x") });
        h.push(
            ProcId(0),
            TmEvent::RespRead { tx: TxId(0), item: DataItem::new("x"), result: ReadResult::Abort },
        );
        assert_eq!(h.status(TxId(0)), TxStatus::Aborted);
    }

    #[test]
    fn sequential_and_complete_flags() {
        let h = sample();
        assert!(h.is_sequential());
        assert!(!h.is_complete()); // T3 is live

        // An interleaved history is not sequential.
        let mut h2 = History::new();
        h2.push(ProcId(0), TmEvent::InvBegin { tx: TxId(0) });
        h2.push(ProcId(0), TmEvent::RespBegin { tx: TxId(0) });
        h2.push(ProcId(1), TmEvent::InvBegin { tx: TxId(1) });
        h2.push(ProcId(1), TmEvent::RespBegin { tx: TxId(1) });
        h2.push(ProcId(0), TmEvent::InvCommit { tx: TxId(0) });
        h2.push(ProcId(0), TmEvent::RespCommit { tx: TxId(0), committed: true });
        h2.push(ProcId(1), TmEvent::InvCommit { tx: TxId(1) });
        h2.push(ProcId(1), TmEvent::RespCommit { tx: TxId(1), committed: true });
        assert!(!h2.is_sequential());
        assert!(h2.is_complete());
    }

    #[test]
    fn read_and_write_summaries() {
        let h = sample();
        assert_eq!(h.reads_of(TxId(1)), vec![(DataItem::new("x"), 1)]);
        assert_eq!(h.global_reads_of(TxId(1)), vec![(DataItem::new("x"), 1)]);
        assert_eq!(h.writes_of(TxId(0)), vec![(DataItem::new("x"), 1)]);
        assert_eq!(h.final_writes_of(TxId(0)).get(&DataItem::new("x")), Some(&1));
        assert!(h.writes_of(TxId(1)).is_empty());
    }

    #[test]
    fn local_read_is_not_global() {
        // T writes x then reads x: the read is local, not global.
        let mut h = History::new();
        let x = DataItem::new("x");
        h.push(ProcId(0), TmEvent::InvBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::RespBegin { tx: TxId(0) });
        h.push(ProcId(0), TmEvent::InvWrite { tx: TxId(0), item: x.clone(), value: 5 });
        h.push(ProcId(0), TmEvent::RespWrite { tx: TxId(0), item: x.clone(), ok: true });
        h.push(ProcId(0), TmEvent::InvRead { tx: TxId(0), item: x.clone() });
        h.push(
            ProcId(0),
            TmEvent::RespRead { tx: TxId(0), item: x.clone(), result: ReadResult::Value(5) },
        );
        assert_eq!(h.reads_of(TxId(0)).len(), 1);
        assert!(h.global_reads_of(TxId(0)).is_empty());
    }

    #[test]
    fn well_formedness_checks() {
        assert!(sample().is_well_formed());

        // An event after C_T is a violation.
        let mut bad = History::new();
        bad.push(ProcId(0), TmEvent::InvBegin { tx: TxId(0) });
        bad.push(ProcId(0), TmEvent::RespBegin { tx: TxId(0) });
        bad.push(ProcId(0), TmEvent::InvCommit { tx: TxId(0) });
        bad.push(ProcId(0), TmEvent::RespCommit { tx: TxId(0), committed: true });
        bad.push(ProcId(0), TmEvent::InvRead { tx: TxId(0), item: DataItem::new("x") });
        assert!(!bad.is_well_formed());

        // Missing begin is a violation.
        let mut bad2 = History::new();
        bad2.push(ProcId(0), TmEvent::InvCommit { tx: TxId(0) });
        assert!(!bad2.is_well_formed());
    }

    #[test]
    fn begin_order_follows_invocations() {
        let h = sample();
        assert_eq!(h.begin_order(), vec![TxId(0), TxId(1), TxId(2)]);
        assert_eq!(h.proc_of(TxId(1)), ProcId(1));
    }

    #[test]
    fn render_contains_every_transaction() {
        let text = sample().render();
        assert!(text.contains("T1"));
        assert!(text.contains("T2"));
        assert!(text.contains("C_T1"));
    }
}
