//! # tm-model — the formal transactional-memory model of the PCL paper, executable
//!
//! This crate turns Section 3 of *"The PCL theorem: transactions cannot be parallel,
//! consistent and live"* (Bushkov, Dziuma, Fatourou, Guerraoui — SPAA 2014) into an
//! executable artifact:
//!
//! * **Base objects** ([`baseobj`]) — atomic shared objects supporting read/write,
//!   compare-and-swap and fetch-and-add primitives, with the paper's trivial /
//!   non-trivial classification ([`primitive`]).
//! * **Transactions** ([`txspec`]) — *static, predefined* transactions exactly as the
//!   impossibility proof assumes: the data set `D(T)` is derivable from the code.
//! * **Executions, steps and configurations** ([`step`], [`execution`]) — an execution
//!   is a sequence of steps, each step being a single primitive applied to a single
//!   base object together with its response, interleaved with transactional
//!   invocation/response events.
//! * **Histories** ([`history`]) — the subsequence of invocations and responses, with
//!   the well-formedness, precedence, and status queries of the paper.
//! * **A deterministic simulator** ([`sim`]) — TM algorithms are written against the
//!   [`algorithm::TmAlgorithm`] / [`algorithm::TxLogic`] traits and driven by explicit
//!   [`sim::Schedule`]s.  Because the scheduler hands out one step at a time and the
//!   simulation is fully deterministic, "running transaction T solo from
//!   configuration C" is reproduced by replaying the prefix that leads to C and then
//!   extending it — precisely the operation the PCL proof performs over and over
//!   while hunting for the critical steps `s1` and `s2`.
//!
//! The crate deliberately contains **no policy**: consistency conditions live in
//! `tm-consistency`, disjoint-access-parallelism and liveness analyses live in
//! `tm-properties`, and concrete TM algorithms live in `tm-algorithms`.
//!
//! ## Quick example
//!
//! ```
//! use tm_model::prelude::*;
//!
//! // A trivial TM algorithm: a single register per data item, no synchronization.
//! struct Naive;
//! struct NaiveTx;
//! impl TmAlgorithm for Naive {
//!     fn name(&self) -> &'static str { "naive" }
//!     fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
//!         Box::new(NaiveTx)
//!     }
//! }
//! impl TxLogic for NaiveTx {
//!     fn read(&mut self, ctx: &mut dyn TxCtx, item: &DataItem) -> TxResult<i64> {
//!         let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
//!         Ok(ctx.read_obj(obj).expect_int())
//!     }
//!     fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()> {
//!         let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
//!         ctx.write_obj(obj, Word::Int(value));
//!         Ok(())
//!     }
//!     fn commit(&mut self, _ctx: &mut dyn TxCtx) -> TxResult<()> { Ok(()) }
//! }
//!
//! let scenario = Scenario::builder()
//!     .tx(0, "T1", |t| t.write("x", 7).read("y"))
//!     .tx(1, "T2", |t| t.read("x"))
//!     .build();
//! let sim = Simulator::new(&Naive, &scenario);
//! let out = sim.run(&Schedule::solo_sequence(&scenario));
//! assert!(out.all_committed());
//! let history = out.execution.history();
//! assert_eq!(history.committed().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod baseobj;
pub mod execution;
pub mod history;
pub mod ids;
pub mod primitive;
pub mod sim;
pub mod step;
pub mod txspec;
pub mod word;

/// Convenience re-exports of the types almost every consumer of the model needs.
pub mod prelude {
    pub use crate::algorithm::{AbortTx, TmAlgorithm, TxCtx, TxLogic, TxResult};
    pub use crate::baseobj::Memory;
    pub use crate::execution::Execution;
    pub use crate::history::{History, TmEvent, TxStatus};
    pub use crate::ids::{DataItem, ObjId, ProcId, TxId};
    pub use crate::primitive::{PrimResponse, Primitive};
    pub use crate::sim::{Directive, Schedule, SimOutcome, Simulator, TxOutcome};
    pub use crate::step::{Event, MemStep};
    pub use crate::txspec::{Scenario, TxOp, TxSpec};
    pub use crate::word::Word;
}

pub use prelude::*;
