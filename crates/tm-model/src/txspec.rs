//! Static transaction specifications and scenarios.
//!
//! The PCL proof considers *static, predefined* transactions: the sequence of data
//! items a transaction reads and writes is fixed in its code, so the data set `D(T)`
//! can be computed by inspection.  [`TxSpec`] captures exactly that: an ordered list
//! of [`TxOp`]s followed by an implicit commit attempt.
//!
//! A [`Scenario`] is a collection of transaction specifications assigned to processes;
//! each process executes its transactions in the order they appear.  The scenario is
//! the static input of a simulation — the *schedule* (which process takes which step
//! when) is supplied separately.

use crate::ids::{DataItem, ProcId, TxId};
use std::collections::BTreeSet;
use std::fmt;

/// One transactional operation of a static transaction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TxOp {
    /// `x.read()` — returns the value of the data item (or forces an abort).
    Read(DataItem),
    /// `x.write(v)` — writes `v` to the data item (or forces an abort).
    Write(DataItem, i64),
}

impl TxOp {
    /// The data item this operation accesses.
    pub fn item(&self) -> &DataItem {
        match self {
            TxOp::Read(x) | TxOp::Write(x, _) => x,
        }
    }

    /// Whether the operation is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, TxOp::Write(_, _))
    }
}

impl fmt::Display for TxOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxOp::Read(x) => write!(f, "{x}.read()"),
            TxOp::Write(x, v) => write!(f, "{x}.write({v})"),
        }
    }
}

/// A static transaction: an identifier, the process that executes it, a human-readable
/// name, and the ordered list of operations it performs before trying to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxSpec {
    /// Unique identifier of the transaction within its scenario.
    pub id: TxId,
    /// The process executing this transaction.
    pub proc: ProcId,
    /// Human-readable name (e.g. `"T1"`), used in rendered figures.
    pub name: String,
    /// The transaction body.
    pub ops: Vec<TxOp>,
}

impl TxSpec {
    /// The data set `D(T)`: every data item the transaction's code accesses.
    pub fn data_set(&self) -> BTreeSet<DataItem> {
        self.ops.iter().map(|op| op.item().clone()).collect()
    }

    /// The set of data items the transaction reads.
    pub fn read_set(&self) -> BTreeSet<DataItem> {
        self.ops.iter().filter(|op| !op.is_write()).map(|op| op.item().clone()).collect()
    }

    /// The set of data items the transaction writes.
    pub fn write_set(&self) -> BTreeSet<DataItem> {
        self.ops.iter().filter(|op| op.is_write()).map(|op| op.item().clone()).collect()
    }

    /// Two transactions *conflict* iff their data sets intersect (`D(T1) ∩ D(T2) ≠ ∅`).
    pub fn conflicts_with(&self, other: &TxSpec) -> bool {
        let mine = self.data_set();
        other.data_set().iter().any(|x| mine.contains(x))
    }

    /// `true` if the transaction performs no writes.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|op| !op.is_write())
    }

    /// Render the transaction body as the paper renders it (reads, then writes).
    pub fn describe(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|op| op.to_string()).collect();
        format!("{}@{}: {}", self.name, self.proc, ops.join("; "))
    }
}

/// A full scenario: the number of processes and all transactions, in begin-eligible
/// order per process (each process runs its transactions in order of appearance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Number of processes (processes are `ProcId(0) .. ProcId(n_procs-1)`).
    pub n_procs: usize,
    /// All transactions of the scenario.
    pub txs: Vec<TxSpec>,
}

impl Scenario {
    /// Start building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The transactions assigned to a given process, in program order.
    pub fn txs_of(&self, proc: ProcId) -> Vec<&TxSpec> {
        self.txs.iter().filter(|t| t.proc == proc).collect()
    }

    /// Look up a transaction by id.
    pub fn tx(&self, id: TxId) -> &TxSpec {
        self.txs
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("scenario has no transaction {id}"))
    }

    /// Look up a transaction by its human-readable name.
    pub fn tx_by_name(&self, name: &str) -> Option<&TxSpec> {
        self.txs.iter().find(|t| t.name == name)
    }

    /// All data items mentioned anywhere in the scenario.
    pub fn data_items(&self) -> BTreeSet<DataItem> {
        self.txs.iter().flat_map(|t| t.data_set()).collect()
    }

    /// The conflict relation as a symmetric adjacency list over transaction ids.
    pub fn conflict_pairs(&self) -> Vec<(TxId, TxId)> {
        let mut pairs = Vec::new();
        for (i, a) in self.txs.iter().enumerate() {
            for b in self.txs.iter().skip(i + 1) {
                if a.conflicts_with(b) {
                    pairs.push((a.id, b.id));
                }
            }
        }
        pairs
    }
}

/// Builder used to assemble scenarios fluently (see the crate-level example).
#[derive(Debug, Default)]
pub struct ScenarioBuilder {
    txs: Vec<TxSpec>,
    max_proc: usize,
}

impl ScenarioBuilder {
    /// Add a transaction executed by process `proc` (zero-based) with the given name.
    /// The closure receives a [`TxBodyBuilder`] used to list the operations in order.
    pub fn tx(
        mut self,
        proc: usize,
        name: impl Into<String>,
        body: impl FnOnce(TxBodyBuilder) -> TxBodyBuilder,
    ) -> Self {
        let ops = body(TxBodyBuilder::default()).ops;
        let id = TxId(self.txs.len());
        self.max_proc = self.max_proc.max(proc);
        self.txs.push(TxSpec { id, proc: ProcId(proc), name: name.into(), ops });
        self
    }

    /// Finish building.  The number of processes is one more than the largest process
    /// index used (so every referenced process exists).
    pub fn build(self) -> Scenario {
        let n_procs = if self.txs.is_empty() { 0 } else { self.max_proc + 1 };
        Scenario { n_procs, txs: self.txs }
    }
}

/// Builder for the body (operation list) of a single transaction.
#[derive(Debug, Default)]
pub struct TxBodyBuilder {
    ops: Vec<TxOp>,
}

impl TxBodyBuilder {
    /// Append `item.read()`.
    pub fn read(mut self, item: impl Into<DataItem>) -> Self {
        self.ops.push(TxOp::Read(item.into()));
        self
    }

    /// Append `item.write(value)`.
    pub fn write(mut self, item: impl Into<DataItem>, value: i64) -> Self {
        self.ops.push(TxOp::Write(item.into(), value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::builder()
            .tx(0, "T1", |t| t.read("b3").read("b7").write("a", 1).write("b1", 1))
            .tx(1, "T2", |t| t.read("b5").write("a", 2))
            .tx(2, "T3", |t| t.read("b1").write("b3", 1))
            .build()
    }

    #[test]
    fn data_read_write_sets() {
        let s = sample();
        let t1 = s.tx(TxId(0));
        assert_eq!(
            t1.data_set(),
            ["b3", "b7", "a", "b1"].iter().map(|x| DataItem::new(*x)).collect()
        );
        assert_eq!(t1.read_set(), ["b3", "b7"].iter().map(|x| DataItem::new(*x)).collect());
        assert_eq!(t1.write_set(), ["a", "b1"].iter().map(|x| DataItem::new(*x)).collect());
        assert!(!t1.is_read_only());
    }

    #[test]
    fn conflict_is_data_set_intersection() {
        let s = sample();
        let (t1, t2, t3) = (s.tx(TxId(0)), s.tx(TxId(1)), s.tx(TxId(2)));
        assert!(t1.conflicts_with(t2)); // both access a
        assert!(t2.conflicts_with(t1));
        assert!(t1.conflicts_with(t3)); // b1, b3
        assert!(!t2.conflicts_with(t3)); // {b5, a} ∩ {b1, b3} = ∅
        assert_eq!(s.conflict_pairs(), vec![(TxId(0), TxId(1)), (TxId(0), TxId(2))]);
    }

    #[test]
    fn scenario_process_assignment() {
        let s = sample();
        assert_eq!(s.n_procs, 3);
        assert_eq!(s.txs_of(ProcId(0)).len(), 1);
        assert_eq!(s.tx_by_name("T2").unwrap().id, TxId(1));
        assert!(s.tx_by_name("T9").is_none());
        assert_eq!(s.data_items().len(), 5); // {a, b1, b3, b5, b7}
    }

    #[test]
    fn multiple_transactions_per_process_keep_program_order() {
        let s = Scenario::builder()
            .tx(0, "A1", |t| t.write("x", 1))
            .tx(1, "B1", |t| t.read("x"))
            .tx(0, "A2", |t| t.write("x", 2))
            .build();
        let of0 = s.txs_of(ProcId(0));
        assert_eq!(of0.len(), 2);
        assert_eq!(of0[0].name, "A1");
        assert_eq!(of0[1].name, "A2");
    }

    #[test]
    fn describe_renders_ops_in_order() {
        let s = sample();
        let d = s.tx(TxId(2)).describe();
        assert!(d.contains("T3"));
        assert!(d.contains("b1.read()"));
        assert!(d.contains("b3.write(1)"));
    }

    #[test]
    fn read_only_detection() {
        let s = Scenario::builder().tx(0, "R", |t| t.read("x").read("y")).build();
        assert!(s.tx(TxId(0)).is_read_only());
    }

    #[test]
    #[should_panic(expected = "no transaction")]
    fn unknown_tx_panics() {
        sample().tx(TxId(99));
    }
}
