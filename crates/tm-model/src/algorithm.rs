//! The interface a TM algorithm implements to run inside the simulator.
//!
//! A TM algorithm provides implementations of the routines `begin_T`, `x.read()`,
//! `x.write(v)`, `commit_T` (and `abort_T`).  In this model those routines are written
//! as ordinary Rust code operating on *base objects* through a [`TxCtx`]: every call
//! to [`TxCtx::read_obj`], [`TxCtx::write_obj`], [`TxCtx::cas_obj`] or
//! [`TxCtx::fetch_add`] is exactly one *step* of the formal model, and the simulator's
//! scheduler decides when each step may happen.
//!
//! Because the routines are plain code, an algorithm aborts a transaction simply by
//! returning `Err(AbortTx)`; the simulator records the corresponding `A_T` response in
//! the history.

use crate::ids::{DataItem, ObjId, ProcId, TxId};
use crate::txspec::TxSpec;
use crate::word::Word;
use std::fmt;

/// Marker type signalling that the current transaction must abort (`A_T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortTx;

impl fmt::Display for AbortTx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("A_T")
    }
}

/// Result type of the transactional routines.
pub type TxResult<T> = Result<T, AbortTx>;

/// The per-step interface an algorithm uses to access shared memory.
///
/// Each of the four access methods performs **one step** of the formal model: the
/// calling process blocks until the scheduler grants it a step, the primitive is
/// applied atomically to the base object, the step is appended to the execution, and
/// the response is returned.
pub trait TxCtx {
    /// The process executing the current transaction.
    fn proc(&self) -> ProcId;

    /// The current transaction.
    fn tx(&self) -> TxId;

    /// Look up (or lazily allocate, with initial state `init`) the base object with
    /// the given name.  Allocation is *not* a step.
    fn obj(&mut self, name: &str, init: Word) -> ObjId;

    /// Apply a `read` primitive to the object (one step) and return its state.
    fn read_obj(&mut self, obj: ObjId) -> Word;

    /// Apply a `write` primitive to the object (one step).
    fn write_obj(&mut self, obj: ObjId, value: Word);

    /// Apply a `compare-and-swap` primitive (one step); returns whether it succeeded.
    fn cas_obj(&mut self, obj: ObjId, expected: Word, new: Word) -> bool;

    /// Apply a `fetch&add` primitive to an integer object (one step); returns the
    /// previous value.
    fn fetch_add(&mut self, obj: ObjId, delta: i64) -> i64;
}

/// The transaction-local logic of a TM algorithm: the implementations of the
/// transactional routines for one transaction.
///
/// The simulator drives a transaction by calling [`TxLogic::begin`] once, then
/// [`TxLogic::read`] / [`TxLogic::write`] following the transaction's static
/// specification, then [`TxLogic::commit`].  Returning `Err(AbortTx)` from any routine
/// aborts the transaction; the simulator then calls [`TxLogic::abort_cleanup`] so the
/// algorithm can release any metadata it holds (releasing locks, resetting ownership).
pub trait TxLogic: Send {
    /// Implementation of `begin_T`.  Most algorithms need no shared-memory work here.
    fn begin(&mut self, _ctx: &mut dyn TxCtx) {}

    /// Implementation of `x.read()`.
    fn read(&mut self, ctx: &mut dyn TxCtx, item: &DataItem) -> TxResult<i64>;

    /// Implementation of `x.write(v)`.
    fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()>;

    /// Implementation of `commit_T`.  Returning `Ok(())` means `C_T`.
    fn commit(&mut self, ctx: &mut dyn TxCtx) -> TxResult<()>;

    /// Called after the transaction aborted (any routine returned `Err`), so the
    /// algorithm can undo partial effects.  Steps taken here are part of the
    /// execution like any others.
    fn abort_cleanup(&mut self, _ctx: &mut dyn TxCtx) {}
}

/// A TM algorithm: a factory of per-transaction [`TxLogic`] values.
///
/// Implementations must be stateless or internally synchronized (`Send + Sync`): all
/// cross-transaction communication must go through base objects, otherwise the
/// algorithm would be communicating outside the formal model (and the DAP analysis
/// could not see it).
pub trait TmAlgorithm: Send + Sync {
    /// Human-readable name of the algorithm (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Create the transaction-local logic for one transaction.
    ///
    /// The static specification is provided so that algorithms may exploit the
    /// "static transactions" assumption of the paper (e.g. lock acquisition in a
    /// canonical order over the write set).
    fn new_tx(&self, tx: TxId, proc: ProcId, spec: &TxSpec) -> Box<dyn TxLogic>;

    /// A short description of where the algorithm sits in the P/C/L triangle, used by
    /// reports.  Default: empty.
    fn pcl_profile(&self) -> &'static str {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    struct DummyTx;

    impl TmAlgorithm for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
            Box::new(DummyTx)
        }
    }

    impl TxLogic for DummyTx {
        fn read(&mut self, _ctx: &mut dyn TxCtx, _item: &DataItem) -> TxResult<i64> {
            Ok(0)
        }
        fn write(&mut self, _ctx: &mut dyn TxCtx, _item: &DataItem, _value: i64) -> TxResult<()> {
            Err(AbortTx)
        }
        fn commit(&mut self, _ctx: &mut dyn TxCtx) -> TxResult<()> {
            Ok(())
        }
    }

    #[test]
    fn trait_objects_are_constructible() {
        let algo: Box<dyn TmAlgorithm> = Box::new(Dummy);
        assert_eq!(algo.name(), "dummy");
        assert_eq!(algo.pcl_profile(), "");
        let spec = TxSpec { id: TxId(0), proc: ProcId(0), name: "T1".into(), ops: vec![] };
        let _logic = algo.new_tx(TxId(0), ProcId(0), &spec);
    }

    #[test]
    fn abort_marker_displays() {
        assert_eq!(AbortTx.to_string(), "A_T");
        let r: TxResult<i64> = Err(AbortTx);
        assert!(r.is_err());
    }
}
