//! Base objects and the shared memory that holds them.
//!
//! A TM algorithm represents each data item (and each piece of its own metadata) by
//! one or more *base objects*.  In this model a base object is simply a named cell
//! holding a [`Word`]; the set of all base objects allocated so far is a [`Memory`].
//!
//! Objects are allocated **lazily by name**: the first access to `"val:x"` creates the
//! object with the initial state the algorithm supplies.  Names are the stable,
//! cross-execution identity of objects (numeric [`ObjId`]s depend on allocation order
//! and are only meaningful within one run) — the contention and indistinguishability
//! analyses all compare object names.

use crate::ids::ObjId;
use crate::primitive::{apply, PrimResponse, Primitive};
use crate::word::Word;
use std::collections::HashMap;

/// A single base object: a named atomic cell.
#[derive(Debug, Clone)]
pub struct BaseObject {
    /// Identifier within this memory.
    pub id: ObjId,
    /// Stable name (identity across executions).
    pub name: String,
    /// Current state.
    pub state: Word,
    /// State the object was created with (used when rendering configurations).
    pub initial: Word,
}

/// The shared memory of a simulation run: all base objects allocated so far.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    objects: Vec<BaseObject>,
    by_name: HashMap<String, ObjId>,
}

impl Memory {
    /// Create an empty memory (the paper's *initial configuration* has every base
    /// object in its initial state; lazily-allocated objects are equivalent because an
    /// object's first access always observes its initial state).
    pub fn new() -> Self {
        Memory::default()
    }

    /// Look up an object by name, allocating it with `init` as its state if it does
    /// not exist yet.  Allocation itself is not a step: it models address computation,
    /// not shared-memory communication.
    pub fn get_or_alloc(&mut self, name: &str, init: Word) -> ObjId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = ObjId(self.objects.len());
        self.objects.push(BaseObject {
            id,
            name: name.to_string(),
            state: init.clone(),
            initial: init,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an object by name without allocating.
    pub fn lookup(&self, name: &str) -> Option<ObjId> {
        self.by_name.get(name).copied()
    }

    /// Apply a primitive to an object atomically, returning the response.
    ///
    /// Panics if the object id is unknown (allocation always precedes access in the
    /// simulator, so this indicates a bug in an algorithm or in the engine).
    pub fn apply(&mut self, obj: ObjId, prim: &Primitive) -> PrimResponse {
        let cell = self
            .objects
            .get_mut(obj.index())
            .unwrap_or_else(|| panic!("access to unknown base object {obj}"));
        let (new_state, resp) = apply(&cell.state, prim);
        cell.state = new_state;
        resp
    }

    /// Current state of an object.
    pub fn state(&self, obj: ObjId) -> &Word {
        &self.objects[obj.index()].state
    }

    /// Name of an object.
    pub fn name(&self, obj: ObjId) -> &str {
        &self.objects[obj.index()].name
    }

    /// Number of objects allocated so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if no object has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate over all allocated objects.
    pub fn iter(&self) -> impl Iterator<Item = &BaseObject> {
        self.objects.iter()
    }

    /// Render the memory contents as `name = state` lines (sorted by name), used when
    /// printing configurations in examples and figure generators.
    pub fn render(&self) -> String {
        let mut rows: Vec<String> =
            self.objects.iter().map(|o| format!("{} = {}", o.name, o.state)).collect();
        rows.sort();
        rows.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_lazy_and_idempotent() {
        let mut mem = Memory::new();
        assert!(mem.is_empty());
        let a = mem.get_or_alloc("val:x", Word::Int(0));
        let b = mem.get_or_alloc("val:x", Word::Int(99)); // init ignored on re-lookup
        assert_eq!(a, b);
        assert_eq!(mem.len(), 1);
        assert_eq!(mem.state(a), &Word::Int(0));
        assert_eq!(mem.name(a), "val:x");
        assert_eq!(mem.lookup("val:x"), Some(a));
        assert_eq!(mem.lookup("val:y"), None);
    }

    #[test]
    fn apply_updates_state_atomically() {
        let mut mem = Memory::new();
        let x = mem.get_or_alloc("x", Word::Int(0));
        assert_eq!(mem.apply(x, &Primitive::Read), PrimResponse::Value(Word::Int(0)));
        assert_eq!(mem.apply(x, &Primitive::Write(Word::Int(3))), PrimResponse::Ack);
        assert_eq!(mem.state(x), &Word::Int(3));
        assert!(mem
            .apply(x, &Primitive::Cas { expected: Word::Int(3), new: Word::Int(4) })
            .expect_bool());
        assert_eq!(mem.state(x), &Word::Int(4));
        assert!(!mem
            .apply(x, &Primitive::Cas { expected: Word::Int(3), new: Word::Int(5) })
            .expect_bool());
        assert_eq!(mem.state(x), &Word::Int(4));
    }

    #[test]
    fn distinct_names_get_distinct_objects() {
        let mut mem = Memory::new();
        let x = mem.get_or_alloc("x", Word::Int(0));
        let y = mem.get_or_alloc("y", Word::Int(0));
        assert_ne!(x, y);
        assert_eq!(mem.len(), 2);
        mem.apply(x, &Primitive::Write(Word::Int(7)));
        assert_eq!(mem.state(y), &Word::Int(0));
    }

    #[test]
    fn render_is_sorted_and_readable() {
        let mut mem = Memory::new();
        mem.get_or_alloc("val:b", Word::Int(2));
        mem.get_or_alloc("val:a", Word::Int(1));
        let rendered = mem.render();
        assert_eq!(rendered, "val:a = 1\nval:b = 2");
    }

    #[test]
    #[should_panic(expected = "unknown base object")]
    fn applying_to_unknown_object_panics() {
        let mut mem = Memory::new();
        mem.apply(ObjId(0), &Primitive::Read);
    }

    #[test]
    fn initial_state_is_remembered() {
        let mut mem = Memory::new();
        let x = mem.get_or_alloc("x", Word::Int(5));
        mem.apply(x, &Primitive::Write(Word::Int(9)));
        let obj = mem.iter().next().unwrap();
        assert_eq!(obj.initial, Word::Int(5));
        assert_eq!(obj.state, Word::Int(9));
    }
}
