//! Atomic primitives on base objects and their trivial / non-trivial classification.
//!
//! The paper: *"A primitive that does not change the state of an object is called
//! trivial (otherwise it is called non-trivial)"* and two executions *contend* on a
//! base object if both contain a primitive operation on it and at least one of those
//! primitives is non-trivial.  Following the standard convention in the
//! disjoint-access-parallelism literature we classify primitives **by type**: `read`
//! is trivial, while `write`, `compare-and-swap` and `fetch-and-add` are non-trivial
//! (a CAS is non-trivial even if it fails, because it *may* change the state).

use crate::word::Word;
use std::fmt;

/// An atomic primitive applied to a single base object in a single step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Read the object's current state.
    Read,
    /// Overwrite the object's state.
    Write(Word),
    /// Compare-and-swap: if the state equals `expected`, replace it with `new`.
    Cas {
        /// Value the object must currently hold for the swap to succeed.
        expected: Word,
        /// Value installed on success.
        new: Word,
    },
    /// Add `delta` to an integer object and return the previous value.
    FetchAdd(i64),
}

impl Primitive {
    /// Whether the primitive is non-trivial, i.e. of a type that may update the state.
    pub fn is_nontrivial(&self) -> bool {
        !matches!(self, Primitive::Read)
    }

    /// Whether the primitive is trivial (never updates the state).
    pub fn is_trivial(&self) -> bool {
        !self.is_nontrivial()
    }

    /// A short mnemonic used in trace rendering.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Primitive::Read => "read",
            Primitive::Write(_) => "write",
            Primitive::Cas { .. } => "cas",
            Primitive::FetchAdd(_) => "faa",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::Read => f.write_str("read()"),
            Primitive::Write(w) => write!(f, "write({w})"),
            Primitive::Cas { expected, new } => write!(f, "cas({expected} → {new})"),
            Primitive::FetchAdd(d) => write!(f, "fetch&add({d})"),
        }
    }
}

/// The response returned by a primitive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PrimResponse {
    /// The value read (for `Read` and `FetchAdd`, which returns the previous value).
    Value(Word),
    /// Success flag of a `Cas`.
    Bool(bool),
    /// Acknowledgement of a `Write`.
    Ack,
}

impl PrimResponse {
    /// Extract the word carried by a `Value` response.
    pub fn expect_value(&self) -> &Word {
        match self {
            PrimResponse::Value(w) => w,
            other => panic!("primitive response expected to be a value, found {other:?}"),
        }
    }

    /// Extract the success flag of a `Bool` response.
    pub fn expect_bool(&self) -> bool {
        match self {
            PrimResponse::Bool(b) => *b,
            other => panic!("primitive response expected to be a boolean, found {other:?}"),
        }
    }
}

impl fmt::Display for PrimResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimResponse::Value(w) => write!(f, "{w}"),
            PrimResponse::Bool(b) => write!(f, "{b}"),
            PrimResponse::Ack => f.write_str("ok"),
        }
    }
}

/// Apply a primitive to a word, returning the new state and the response.
///
/// This is the *specification* of each base-object type; [`crate::baseobj::Memory`]
/// uses it to execute steps atomically.
pub fn apply(state: &Word, prim: &Primitive) -> (Word, PrimResponse) {
    match prim {
        Primitive::Read => (state.clone(), PrimResponse::Value(state.clone())),
        Primitive::Write(w) => (w.clone(), PrimResponse::Ack),
        Primitive::Cas { expected, new } => {
            if state == expected {
                (new.clone(), PrimResponse::Bool(true))
            } else {
                (state.clone(), PrimResponse::Bool(false))
            }
        }
        Primitive::FetchAdd(delta) => {
            let old = state.expect_int();
            (Word::Int(old + delta), PrimResponse::Value(Word::Int(old)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triviality_classification_matches_the_paper() {
        assert!(Primitive::Read.is_trivial());
        assert!(!Primitive::Read.is_nontrivial());
        assert!(Primitive::Write(Word::Int(1)).is_nontrivial());
        assert!(Primitive::Cas { expected: Word::Int(0), new: Word::Int(1) }.is_nontrivial());
        assert!(Primitive::FetchAdd(1).is_nontrivial());
    }

    #[test]
    fn read_returns_current_state_and_leaves_it_unchanged() {
        let (new, resp) = apply(&Word::Int(42), &Primitive::Read);
        assert_eq!(new, Word::Int(42));
        assert_eq!(resp, PrimResponse::Value(Word::Int(42)));
    }

    #[test]
    fn write_overwrites() {
        let (new, resp) = apply(&Word::Int(1), &Primitive::Write(Word::Int(9)));
        assert_eq!(new, Word::Int(9));
        assert_eq!(resp, PrimResponse::Ack);
    }

    #[test]
    fn cas_succeeds_only_on_expected_value() {
        let prim = Primitive::Cas { expected: Word::Int(0), new: Word::Int(5) };
        let (new, resp) = apply(&Word::Int(0), &prim);
        assert_eq!(new, Word::Int(5));
        assert!(resp.expect_bool());

        let (unchanged, resp) = apply(&Word::Int(7), &prim);
        assert_eq!(unchanged, Word::Int(7));
        assert!(!resp.expect_bool());
    }

    #[test]
    fn cas_compares_structured_words() {
        let prim = Primitive::Cas {
            expected: Word::Ver { version: 1, value: 3, locked: false },
            new: Word::Ver { version: 2, value: 8, locked: false },
        };
        let (new, resp) = apply(&Word::Ver { version: 1, value: 3, locked: false }, &prim);
        assert!(resp.expect_bool());
        assert_eq!(new.expect_ver(), (2, 8, false));

        let (same, resp) = apply(&Word::Ver { version: 1, value: 3, locked: true }, &prim);
        assert!(!resp.expect_bool());
        assert_eq!(same.expect_ver(), (1, 3, true));
    }

    #[test]
    fn fetch_add_returns_previous_value() {
        let (new, resp) = apply(&Word::Int(10), &Primitive::FetchAdd(5));
        assert_eq!(new, Word::Int(15));
        assert_eq!(resp.expect_value(), &Word::Int(10));
    }

    #[test]
    #[should_panic(expected = "expected to hold Word::Int")]
    fn fetch_add_on_non_integer_panics() {
        apply(&Word::Null, &Primitive::FetchAdd(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Primitive::Read.to_string(), "read()");
        assert_eq!(Primitive::Write(Word::Int(2)).to_string(), "write(2)");
        assert_eq!(PrimResponse::Ack.to_string(), "ok");
        assert_eq!(Primitive::Read.mnemonic(), "read");
        assert_eq!(Primitive::FetchAdd(1).mnemonic(), "faa");
    }
}
