//! What a simulation run returns.

use super::schedule::Directive;
use crate::baseobj::Memory;
use crate::execution::Execution;
use crate::ids::{DataItem, TxId};
use crate::txspec::Scenario;
use std::collections::BTreeMap;
use std::fmt;

/// The final fate of a transaction in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The transaction committed (`C_T`).
    Committed,
    /// The transaction aborted (`A_T`).
    Aborted,
    /// The transaction did not complete before the schedule ended (it is live or
    /// commit-pending in the resulting history, or it was starved by a step limit).
    Unfinished,
}

impl fmt::Display for TxOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxOutcome::Committed => f.write_str("committed"),
            TxOutcome::Aborted => f.write_str("aborted"),
            TxOutcome::Unfinished => f.write_str("unfinished"),
        }
    }
}

/// Per-directive report: what happened while the scheduler executed one directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveReport {
    /// The directive executed.
    pub directive: Directive,
    /// Memory steps taken while executing it.
    pub steps_taken: usize,
    /// Transactions that completed during the directive, with their outcome.
    pub completed: Vec<(TxId, TxOutcome)>,
    /// Whether the step limit was hit before the directive's goal was reached (the
    /// signature of a blocked/spinning transaction).
    pub limit_hit: bool,
    /// Error encountered (e.g. directing a process that has no work left).
    pub error: Option<String>,
}

/// The result of running a schedule.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The recorded execution (memory steps + TM-interface events, in order).
    pub execution: Execution,
    /// Outcome of every transaction of the scenario.
    pub tx_outcomes: BTreeMap<TxId, TxOutcome>,
    /// One report per directive of the schedule.
    pub reports: Vec<DirectiveReport>,
    /// The final shared-memory contents (the final *configuration*, restricted to
    /// base objects — process states are not observable from outside).
    pub final_memory: Memory,
    /// Panic messages from algorithm code, if any (empty in healthy runs).
    pub algorithm_errors: Vec<String>,
}

impl SimOutcome {
    /// `true` iff every transaction of the scenario committed.
    pub fn all_committed(&self) -> bool {
        !self.tx_outcomes.is_empty()
            && self.tx_outcomes.values().all(|o| *o == TxOutcome::Committed)
    }

    /// Outcome of one transaction.
    pub fn outcome_of(&self, tx: TxId) -> TxOutcome {
        self.tx_outcomes.get(&tx).copied().unwrap_or(TxOutcome::Unfinished)
    }

    /// The value a transaction's *first* successful read of `item` returned, if any.
    /// (The scenarios of the paper read each item at most once per transaction.)
    pub fn read_value(&self, tx: TxId, item: &DataItem) -> Option<i64> {
        self.execution.history().reads_of(tx).into_iter().find(|(it, _)| it == item).map(|(_, v)| v)
    }

    /// Whether any directive hit its step limit (a blocked / starved process).
    pub fn any_limit_hit(&self) -> bool {
        self.reports.iter().any(|r| r.limit_hit)
    }

    /// Whether any directive reported an error.
    pub fn any_error(&self) -> bool {
        self.reports.iter().any(|r| r.error.is_some()) || !self.algorithm_errors.is_empty()
    }

    /// Total number of memory steps taken.
    pub fn total_steps(&self) -> usize {
        self.execution.mem_steps().len()
    }

    /// A one-line summary per transaction: `T1 committed, T2 aborted, …`, following
    /// the scenario's transaction order.
    pub fn summary(&self, scenario: &Scenario) -> String {
        scenario
            .txs
            .iter()
            .map(|t| format!("{} {}", t.name, self.outcome_of(t.id)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TmEvent;
    use crate::ids::ProcId;
    use crate::step::Event;

    fn outcome_with(txo: &[(usize, TxOutcome)]) -> SimOutcome {
        SimOutcome {
            execution: Execution::new(),
            tx_outcomes: txo.iter().map(|(i, o)| (TxId(*i), *o)).collect(),
            reports: vec![],
            final_memory: Memory::new(),
            algorithm_errors: vec![],
        }
    }

    #[test]
    fn all_committed_requires_every_transaction() {
        assert!(
            outcome_with(&[(0, TxOutcome::Committed), (1, TxOutcome::Committed)]).all_committed()
        );
        assert!(
            !outcome_with(&[(0, TxOutcome::Committed), (1, TxOutcome::Aborted)]).all_committed()
        );
        assert!(!outcome_with(&[]).all_committed());
        assert_eq!(outcome_with(&[]).outcome_of(TxId(3)), TxOutcome::Unfinished);
    }

    #[test]
    fn read_value_finds_first_read() {
        let mut exec = Execution::new();
        let x = DataItem::new("x");
        exec.push(Event::Tm {
            proc: ProcId(0),
            event: TmEvent::RespRead {
                tx: TxId(0),
                item: x.clone(),
                result: crate::history::ReadResult::Value(7),
            },
        });
        let out = SimOutcome {
            execution: exec,
            tx_outcomes: BTreeMap::new(),
            reports: vec![],
            final_memory: Memory::new(),
            algorithm_errors: vec![],
        };
        assert_eq!(out.read_value(TxId(0), &x), Some(7));
        assert_eq!(out.read_value(TxId(0), &DataItem::new("y")), None);
        assert_eq!(out.total_steps(), 0);
    }

    #[test]
    fn limit_and_error_flags() {
        let mut out = outcome_with(&[(0, TxOutcome::Committed)]);
        assert!(!out.any_limit_hit());
        assert!(!out.any_error());
        out.reports.push(DirectiveReport {
            directive: Directive::Step(ProcId(0)),
            steps_taken: 1,
            completed: vec![],
            limit_hit: true,
            error: None,
        });
        assert!(out.any_limit_hit());
        out.algorithm_errors.push("boom".into());
        assert!(out.any_error());
    }

    #[test]
    fn display_of_outcomes() {
        assert_eq!(TxOutcome::Committed.to_string(), "committed");
        assert_eq!(TxOutcome::Aborted.to_string(), "aborted");
        assert_eq!(TxOutcome::Unfinished.to_string(), "unfinished");
    }
}
