//! The schedule language: which process advances, and by how much.

use crate::ids::ProcId;
use crate::txspec::Scenario;
use std::fmt;

/// One instruction to the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Let the process perform exactly one step (one base-object primitive).
    ///
    /// If the process instead completes its current transaction without needing
    /// another step (e.g. a read-only commit that requires no memory access), the
    /// directive completes with zero steps taken.
    Step(ProcId),
    /// Let the process perform up to `n` steps.
    Steps(ProcId, usize),
    /// Let the process run *solo* until its current (or next) transaction completes,
    /// i.e. until `C_T` or `A_T` is returned.  Bounded by the simulator's step limit
    /// so blocking algorithms surface as a `limit_hit` report instead of a hang.
    RunUntilTxDone(ProcId),
    /// Round-robin over all processes that still have work, one step each per round,
    /// until everyone is done or the given total step budget is exhausted.  Used by
    /// stress/liveness experiments rather than by the theorem construction.
    RoundRobin {
        /// Total step budget across all processes.
        max_steps: usize,
    },
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::Step(p) => write!(f, "step({p})"),
            Directive::Steps(p, n) => write!(f, "steps({p}, {n})"),
            Directive::RunUntilTxDone(p) => write!(f, "run-until-tx-done({p})"),
            Directive::RoundRobin { max_steps } => write!(f, "round-robin(≤{max_steps})"),
        }
    }
}

/// A schedule: the ordered list of directives the scheduler executes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    directives: Vec<Directive>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// A schedule made of the given directives.
    pub fn from_directives(directives: Vec<Directive>) -> Self {
        Schedule { directives }
    }

    /// Append a directive (builder style).
    pub fn then(mut self, d: Directive) -> Self {
        self.directives.push(d);
        self
    }

    /// Append a directive in place.
    pub fn push(&mut self, d: Directive) {
        self.directives.push(d);
    }

    /// The directives in order.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// Number of directives.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// `true` if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// The canonical *sequential solo* schedule of a scenario: each transaction runs
    /// solo to completion, in the order the transactions appear in the scenario.
    /// Because every transaction runs without any concurrency this schedule is the
    /// baseline "everything must commit under obstruction-freedom" experiment.
    pub fn solo_sequence(scenario: &Scenario) -> Schedule {
        Schedule {
            directives: scenario.txs.iter().map(|t| Directive::RunUntilTxDone(t.proc)).collect(),
        }
    }

    /// A schedule that interleaves all processes round-robin with the given budget.
    pub fn round_robin(max_steps: usize) -> Schedule {
        Schedule { directives: vec![Directive::RoundRobin { max_steps }] }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.directives.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join(" · "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txspec::Scenario;

    #[test]
    fn builder_and_accessors() {
        let s = Schedule::new()
            .then(Directive::Step(ProcId(0)))
            .then(Directive::RunUntilTxDone(ProcId(1)));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.directives()[0], Directive::Step(ProcId(0)));
        assert!(Schedule::new().is_empty());
    }

    #[test]
    fn solo_sequence_covers_every_transaction_in_order() {
        let scenario = Scenario::builder()
            .tx(0, "T1", |t| t.write("x", 1))
            .tx(2, "T3", |t| t.read("x"))
            .tx(1, "T2", |t| t.read("x"))
            .build();
        let s = Schedule::solo_sequence(&scenario);
        assert_eq!(
            s.directives(),
            &[
                Directive::RunUntilTxDone(ProcId(0)),
                Directive::RunUntilTxDone(ProcId(2)),
                Directive::RunUntilTxDone(ProcId(1)),
            ]
        );
    }

    #[test]
    fn display_is_compact() {
        let s = Schedule::from_directives(vec![
            Directive::Steps(ProcId(0), 3),
            Directive::RoundRobin { max_steps: 10 },
        ]);
        let text = s.to_string();
        assert!(text.contains("steps(p1, 3)"));
        assert!(text.contains("round-robin"));
    }
}
