//! The simulation engine: one OS thread per process, a single logical thread active
//! at any time, and a scheduler that hands out steps according to a [`Schedule`].
//!
//! ### Handshake protocol
//!
//! Every process blocks at two kinds of *block points*:
//!
//! 1. **before beginning a transaction** (so that the order of `begin` invocations is
//!    entirely under the scheduler's control — consistency groups in Definition 3.3
//!    are keyed by `begin` order), and
//! 2. **before every base-object access**.
//!
//! The scheduler grants one *credit* at a time.  A granted process performs at most
//! one base-object primitive, keeps running its local code (recording TM-interface
//! events, computing, …) until it reaches the next block point, and then returns
//! control.  Consequently the interleaving of shared-memory accesses — and therefore
//! the entire execution — is a deterministic function of (algorithm, scenario,
//! schedule), which is what lets the theorem construction replay prefixes instead of
//! snapshotting configurations.

use super::outcome::{DirectiveReport, SimOutcome, TxOutcome};
use super::schedule::{Directive, Schedule};
use super::DEFAULT_STEP_LIMIT;
use crate::algorithm::{TmAlgorithm, TxCtx};
use crate::baseobj::Memory;
use crate::execution::Execution;
use crate::history::{ReadResult, TmEvent};
use crate::ids::{ObjId, ProcId, TxId};
use crate::primitive::{PrimResponse, Primitive};
use crate::step::{Event, MemStep};
use crate::txspec::{Scenario, TxOp, TxSpec};
use crate::word::Word;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread;

/// Payload used to unwind a process thread during controlled teardown.
struct ShutdownToken;

/// State shared between the scheduler and the process threads.
struct CoreState {
    memory: Memory,
    events: Vec<Event>,
    mem_step_count: usize,
    credits: Vec<usize>,
    active: Option<ProcId>,
    done: Vec<bool>,
    txs_completed: Vec<usize>,
    completions: Vec<(TxId, TxOutcome)>,
    tx_outcomes: BTreeMap<TxId, TxOutcome>,
    algorithm_errors: Vec<String>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<CoreState>,
    proc_cv: Condvar,
    sched_cv: Condvar,
}

impl Shared {
    fn new(n_procs: usize) -> Self {
        Shared {
            state: Mutex::new(CoreState {
                memory: Memory::new(),
                events: Vec::new(),
                mem_step_count: 0,
                credits: vec![0; n_procs],
                active: None,
                done: vec![false; n_procs],
                txs_completed: vec![0; n_procs],
                completions: Vec::new(),
                tx_outcomes: BTreeMap::new(),
                algorithm_errors: Vec::new(),
                shutdown: false,
            }),
            proc_cv: Condvar::new(),
            sched_cv: Condvar::new(),
        }
    }
}

/// The [`TxCtx`] implementation handed to algorithm code running in the simulator.
struct SimCtx<'a> {
    shared: &'a Shared,
    proc: ProcId,
    tx: TxId,
}

impl SimCtx<'_> {
    /// Perform one step: wait for a credit, apply the primitive, record the step.
    fn step(&mut self, obj: ObjId, prim: Primitive) -> PrimResponse {
        let mut st = self.shared.state.lock();
        loop {
            if st.shutdown {
                drop(st);
                resume_unwind(Box::new(ShutdownToken));
            }
            if st.credits[self.proc.index()] > 0 {
                break;
            }
            if st.active == Some(self.proc) {
                st.active = None;
                self.shared.sched_cv.notify_all();
            }
            self.shared.proc_cv.wait(&mut st);
        }
        st.credits[self.proc.index()] -= 1;
        let resp = st.memory.apply(obj, &prim);
        let obj_name = st.memory.name(obj).to_string();
        st.mem_step_count += 1;
        st.events.push(Event::Mem(MemStep {
            proc: self.proc,
            tx: self.tx,
            obj,
            obj_name,
            prim,
            resp: resp.clone(),
        }));
        resp
    }

    fn push_tm(&self, event: TmEvent) {
        let mut st = self.shared.state.lock();
        let proc = self.proc;
        st.events.push(Event::Tm { proc, event });
    }
}

impl TxCtx for SimCtx<'_> {
    fn proc(&self) -> ProcId {
        self.proc
    }

    fn tx(&self) -> TxId {
        self.tx
    }

    fn obj(&mut self, name: &str, init: Word) -> ObjId {
        let mut st = self.shared.state.lock();
        st.memory.get_or_alloc(name, init)
    }

    fn read_obj(&mut self, obj: ObjId) -> Word {
        match self.step(obj, Primitive::Read) {
            PrimResponse::Value(w) => w,
            other => panic!("read primitive returned {other:?}"),
        }
    }

    fn write_obj(&mut self, obj: ObjId, value: Word) {
        self.step(obj, Primitive::Write(value));
    }

    fn cas_obj(&mut self, obj: ObjId, expected: Word, new: Word) -> bool {
        match self.step(obj, Primitive::Cas { expected, new }) {
            PrimResponse::Bool(b) => b,
            other => panic!("cas primitive returned {other:?}"),
        }
    }

    fn fetch_add(&mut self, obj: ObjId, delta: i64) -> i64 {
        match self.step(obj, Primitive::FetchAdd(delta)) {
            PrimResponse::Value(w) => w.expect_int(),
            other => panic!("fetch&add primitive returned {other:?}"),
        }
    }
}

/// Wait at the "before begin" block point until a credit is available (without
/// consuming it) or the run is shutting down.  Returns `false` on shutdown.
fn wait_for_go(shared: &Shared, me: ProcId) -> bool {
    let mut st = shared.state.lock();
    loop {
        if st.shutdown {
            return false;
        }
        if st.credits[me.index()] > 0 {
            return true;
        }
        if st.active == Some(me) {
            st.active = None;
            shared.sched_cv.notify_all();
        }
        shared.proc_cv.wait(&mut st);
    }
}

/// Drive one transaction through its TM routines, recording the TM-interface events.
fn run_one_tx(shared: &Shared, algo: &dyn TmAlgorithm, spec: &TxSpec, me: ProcId, is_last: bool) {
    let tx = spec.id;
    let mut ctx = SimCtx { shared, proc: me, tx };
    ctx.push_tm(TmEvent::InvBegin { tx });
    ctx.push_tm(TmEvent::RespBegin { tx });
    let mut logic = algo.new_tx(tx, me, spec);
    logic.begin(&mut ctx);

    let mut aborted = false;
    for op in &spec.ops {
        match op {
            TxOp::Read(item) => {
                ctx.push_tm(TmEvent::InvRead { tx, item: item.clone() });
                match logic.read(&mut ctx, item) {
                    Ok(v) => ctx.push_tm(TmEvent::RespRead {
                        tx,
                        item: item.clone(),
                        result: ReadResult::Value(v),
                    }),
                    Err(_) => {
                        ctx.push_tm(TmEvent::RespRead {
                            tx,
                            item: item.clone(),
                            result: ReadResult::Abort,
                        });
                        aborted = true;
                    }
                }
            }
            TxOp::Write(item, value) => {
                ctx.push_tm(TmEvent::InvWrite { tx, item: item.clone(), value: *value });
                match logic.write(&mut ctx, item, *value) {
                    Ok(()) => ctx.push_tm(TmEvent::RespWrite { tx, item: item.clone(), ok: true }),
                    Err(_) => {
                        ctx.push_tm(TmEvent::RespWrite { tx, item: item.clone(), ok: false });
                        aborted = true;
                    }
                }
            }
        }
        if aborted {
            break;
        }
    }

    if !aborted {
        ctx.push_tm(TmEvent::InvCommit { tx });
        match logic.commit(&mut ctx) {
            Ok(()) => ctx.push_tm(TmEvent::RespCommit { tx, committed: true }),
            Err(_) => {
                ctx.push_tm(TmEvent::RespCommit { tx, committed: false });
                aborted = true;
            }
        }
    }
    if aborted {
        logic.abort_cleanup(&mut ctx);
    }

    let outcome = if aborted { TxOutcome::Aborted } else { TxOutcome::Committed };
    let mut st = shared.state.lock();
    st.tx_outcomes.insert(tx, outcome);
    st.completions.push((tx, outcome));
    st.txs_completed[me.index()] += 1;
    st.credits[me.index()] = 0;
    if is_last {
        st.done[me.index()] = true;
    }
    if st.active == Some(me) {
        st.active = None;
    }
    shared.sched_cv.notify_all();
}

/// Entry point of a process thread.
fn proc_main(shared: &Shared, algo: &dyn TmAlgorithm, my_txs: &[TxSpec], me: ProcId) {
    for (i, spec) in my_txs.iter().enumerate() {
        if !wait_for_go(shared, me) {
            return;
        }
        let is_last = i + 1 == my_txs.len();
        let result = catch_unwind(AssertUnwindSafe(|| run_one_tx(shared, algo, spec, me, is_last)));
        if let Err(payload) = result {
            if payload.downcast_ref::<ShutdownToken>().is_some() {
                return;
            }
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "algorithm panicked".to_string()
            };
            let mut st = shared.state.lock();
            st.algorithm_errors.push(format!("{me}/{}: {msg}", spec.name));
            st.tx_outcomes.insert(spec.id, TxOutcome::Unfinished);
            st.completions.push((spec.id, TxOutcome::Unfinished));
            st.txs_completed[me.index()] += 1;
            st.credits[me.index()] = 0;
            st.done[me.index()] = true;
            if st.active == Some(me) {
                st.active = None;
            }
            shared.sched_cv.notify_all();
            return;
        }
    }
    // A process with no transactions at all must still declare itself done.
    if my_txs.is_empty() {
        let mut st = shared.state.lock();
        st.done[me.index()] = true;
        shared.sched_cv.notify_all();
    }
}

/// Result of granting a single credit.
struct GrantResult {
    steps: usize,
    completions: usize,
    no_work: bool,
}

/// The deterministic simulator: runs a [`Scenario`] against a [`TmAlgorithm`] under an
/// explicit [`Schedule`] and records the resulting [`Execution`].
pub struct Simulator<'a> {
    algo: &'a dyn TmAlgorithm,
    scenario: &'a Scenario,
    step_limit: usize,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for the given algorithm and scenario with the default step
    /// limit ([`DEFAULT_STEP_LIMIT`]).
    pub fn new(algo: &'a dyn TmAlgorithm, scenario: &'a Scenario) -> Self {
        Simulator { algo, scenario, step_limit: DEFAULT_STEP_LIMIT }
    }

    /// Override the per-directive step limit (used to detect blocked transactions).
    pub fn with_step_limit(self, step_limit: usize) -> Self {
        Simulator { step_limit, ..self }
    }

    /// The scenario this simulator runs.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// The algorithm under test.
    pub fn algorithm(&self) -> &dyn TmAlgorithm {
        self.algo
    }

    /// Run the schedule and return the recorded outcome.
    pub fn run(&self, schedule: &Schedule) -> SimOutcome {
        let n_procs = self.scenario.n_procs.max(1);
        let shared = Shared::new(n_procs);
        let mut reports: Vec<DirectiveReport> = Vec::with_capacity(schedule.len());

        thread::scope(|scope| {
            for p in 0..self.scenario.n_procs {
                let my_txs: Vec<TxSpec> =
                    self.scenario.txs_of(ProcId(p)).into_iter().cloned().collect();
                let shared_ref = &shared;
                let algo = self.algo;
                scope.spawn(move || proc_main(shared_ref, algo, &my_txs, ProcId(p)));
            }

            for directive in schedule.directives() {
                reports.push(self.exec_directive(&shared, directive));
            }

            let mut st = shared.state.lock();
            st.shutdown = true;
            drop(st);
            shared.proc_cv.notify_all();
        });

        let core = shared.state.into_inner();
        let mut tx_outcomes = core.tx_outcomes;
        for spec in &self.scenario.txs {
            tx_outcomes.entry(spec.id).or_insert(TxOutcome::Unfinished);
        }
        SimOutcome {
            execution: Execution::from_events(core.events),
            tx_outcomes,
            reports,
            final_memory: core.memory,
            algorithm_errors: core.algorithm_errors,
        }
    }

    /// Grant one credit to `p` and wait until the process yields control back.
    fn grant_one(&self, shared: &Shared, p: ProcId) -> GrantResult {
        let mut st = shared.state.lock();
        if p.index() >= st.done.len() || st.done[p.index()] {
            return GrantResult { steps: 0, completions: 0, no_work: true };
        }
        let steps_before = st.mem_step_count;
        let completed_before = st.txs_completed[p.index()];
        st.credits[p.index()] += 1;
        st.active = Some(p);
        shared.proc_cv.notify_all();
        while st.active == Some(p) {
            shared.sched_cv.wait(&mut st);
        }
        GrantResult {
            steps: st.mem_step_count - steps_before,
            completions: st.txs_completed[p.index()] - completed_before,
            no_work: false,
        }
    }

    fn completions_since(&self, shared: &Shared, mark: usize) -> Vec<(TxId, TxOutcome)> {
        let st = shared.state.lock();
        st.completions[mark..].to_vec()
    }

    fn completion_mark(&self, shared: &Shared) -> usize {
        shared.state.lock().completions.len()
    }

    fn exec_directive(&self, shared: &Shared, directive: &Directive) -> DirectiveReport {
        let mark = self.completion_mark(shared);
        let mut steps_taken = 0usize;
        let mut limit_hit = false;
        let mut error = None;

        match directive {
            Directive::Step(p) => {
                let g = self.grant_one(shared, *p);
                steps_taken += g.steps;
                if g.no_work {
                    error = Some(format!("{p} has no remaining work"));
                }
            }
            Directive::Steps(p, n) => {
                for _ in 0..*n {
                    let g = self.grant_one(shared, *p);
                    if g.no_work {
                        error = Some(format!("{p} has no remaining work"));
                        break;
                    }
                    steps_taken += g.steps;
                }
            }
            Directive::RunUntilTxDone(p) => {
                let mut grants = 0usize;
                loop {
                    let g = self.grant_one(shared, *p);
                    if g.no_work {
                        error = Some(format!("{p} has no remaining work"));
                        break;
                    }
                    steps_taken += g.steps;
                    grants += 1;
                    if g.completions > 0 {
                        break;
                    }
                    if grants >= self.step_limit {
                        limit_hit = true;
                        break;
                    }
                }
            }
            Directive::RoundRobin { max_steps } => {
                let mut budget = *max_steps;
                loop {
                    let mut progressed = false;
                    for p in 0..self.scenario.n_procs {
                        if budget == 0 {
                            break;
                        }
                        let g = self.grant_one(shared, ProcId(p));
                        if g.no_work {
                            continue;
                        }
                        progressed = true;
                        steps_taken += g.steps;
                        budget = budget.saturating_sub(g.steps.max(1));
                    }
                    if budget == 0 {
                        limit_hit = {
                            let st = shared.state.lock();
                            !st.done.iter().all(|d| *d)
                        };
                        break;
                    }
                    if !progressed {
                        break;
                    }
                }
            }
        }

        DirectiveReport {
            directive: directive.clone(),
            steps_taken,
            completed: self.completions_since(shared, mark),
            limit_hit,
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{TxLogic, TxResult};
    use crate::ids::DataItem;
    use crate::txspec::Scenario;

    /// A single-register-per-item algorithm with no synchronization whatsoever.
    struct Naive;
    struct NaiveTx;

    impl TmAlgorithm for Naive {
        fn name(&self) -> &'static str {
            "naive"
        }
        fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
            Box::new(NaiveTx)
        }
    }
    impl TxLogic for NaiveTx {
        fn read(&mut self, ctx: &mut dyn TxCtx, item: &DataItem) -> TxResult<i64> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            Ok(ctx.read_obj(obj).expect_int())
        }
        fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            ctx.write_obj(obj, Word::Int(value));
            Ok(())
        }
        fn commit(&mut self, _ctx: &mut dyn TxCtx) -> TxResult<()> {
            Ok(())
        }
    }

    /// An algorithm whose commit spins forever on a flag nobody ever sets: used to
    /// exercise the step-limit machinery.
    struct Spinner;
    struct SpinnerTx;
    impl TmAlgorithm for Spinner {
        fn name(&self) -> &'static str {
            "spinner"
        }
        fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
            Box::new(SpinnerTx)
        }
    }
    impl TxLogic for SpinnerTx {
        fn read(&mut self, ctx: &mut dyn TxCtx, item: &DataItem) -> TxResult<i64> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            Ok(ctx.read_obj(obj).expect_int())
        }
        fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            ctx.write_obj(obj, Word::Int(value));
            Ok(())
        }
        fn commit(&mut self, ctx: &mut dyn TxCtx) -> TxResult<()> {
            let flag = ctx.obj("never-set", Word::Int(0));
            loop {
                if ctx.read_obj(flag).expect_int() == 1 {
                    return Ok(());
                }
            }
        }
    }

    /// An algorithm that panics on read: exercises the error-capture path.
    struct Broken;
    struct BrokenTx;
    impl TmAlgorithm for Broken {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn new_tx(&self, _tx: TxId, _proc: ProcId, _spec: &TxSpec) -> Box<dyn TxLogic> {
            Box::new(BrokenTx)
        }
    }
    impl TxLogic for BrokenTx {
        fn read(&mut self, _ctx: &mut dyn TxCtx, _item: &DataItem) -> TxResult<i64> {
            panic!("deliberately broken read");
        }
        fn write(&mut self, ctx: &mut dyn TxCtx, item: &DataItem, value: i64) -> TxResult<()> {
            let obj = ctx.obj(&format!("val:{item}"), Word::Int(0));
            ctx.write_obj(obj, Word::Int(value));
            Ok(())
        }
        fn commit(&mut self, _ctx: &mut dyn TxCtx) -> TxResult<()> {
            Ok(())
        }
    }

    fn writer_reader_scenario() -> Scenario {
        Scenario::builder()
            .tx(0, "T1", |t| t.write("x", 7).write("y", 8))
            .tx(1, "T2", |t| t.read("x").read("y"))
            .build()
    }

    #[test]
    fn solo_sequence_commits_everything_and_reads_flow() {
        let scenario = writer_reader_scenario();
        let sim = Simulator::new(&Naive, &scenario);
        let out = sim.run(&Schedule::solo_sequence(&scenario));
        assert!(out.all_committed());
        assert_eq!(out.read_value(TxId(1), &DataItem::new("x")), Some(7));
        assert_eq!(out.read_value(TxId(1), &DataItem::new("y")), Some(8));
        assert!(!out.any_limit_hit());
        assert!(!out.any_error());
        assert!(out.total_steps() >= 4);
        assert!(out.execution.history().is_well_formed());
    }

    #[test]
    fn runs_are_deterministic() {
        let scenario = writer_reader_scenario();
        let sim = Simulator::new(&Naive, &scenario);
        let schedule = Schedule::solo_sequence(&scenario);
        let a = sim.run(&schedule);
        let b = sim.run(&schedule);
        assert_eq!(a.execution, b.execution);
        assert_eq!(a.tx_outcomes, b.tx_outcomes);
    }

    #[test]
    fn single_steps_interleave_processes() {
        let scenario = writer_reader_scenario();
        let sim = Simulator::new(&Naive, &scenario);
        // T1 performs its first write; then T2 reads x (sees 7) before T1 writes y.
        let schedule = Schedule::new()
            .then(Directive::Step(ProcId(0)))
            .then(Directive::RunUntilTxDone(ProcId(1)))
            .then(Directive::RunUntilTxDone(ProcId(0)));
        let out = sim.run(&schedule);
        assert!(out.all_committed());
        assert_eq!(out.read_value(TxId(1), &DataItem::new("x")), Some(7));
        assert_eq!(out.read_value(TxId(1), &DataItem::new("y")), Some(0));
    }

    #[test]
    fn prefix_replay_is_consistent_with_longer_runs() {
        let scenario = writer_reader_scenario();
        let sim = Simulator::new(&Naive, &scenario);
        // Run only the first step of T1 in one run, and the first two steps in another:
        // the first run's execution must be a prefix of the second's.
        let one = sim.run(&Schedule::new().then(Directive::Steps(ProcId(0), 1)));
        let two = sim.run(&Schedule::new().then(Directive::Steps(ProcId(0), 2)));
        let one_events = one.execution.events();
        assert_eq!(&two.execution.events()[..one_events.len()], one_events);
    }

    #[test]
    fn step_limit_detects_spinning_commit() {
        let scenario = Scenario::builder().tx(0, "T1", |t| t.write("x", 1)).build();
        let sim = Simulator::new(&Spinner, &scenario).with_step_limit(50);
        let out = sim.run(&Schedule::solo_sequence(&scenario));
        assert!(out.any_limit_hit());
        assert_eq!(out.outcome_of(TxId(0)), TxOutcome::Unfinished);
    }

    #[test]
    fn algorithm_panics_are_reported_not_propagated() {
        let scenario = Scenario::builder().tx(0, "T1", |t| t.read("x")).build();
        let sim = Simulator::new(&Broken, &scenario);
        let out = sim.run(&Schedule::solo_sequence(&scenario));
        assert!(out.any_error());
        assert_eq!(out.algorithm_errors.len(), 1);
        assert!(out.algorithm_errors[0].contains("deliberately broken"));
    }

    #[test]
    fn directing_a_finished_process_reports_an_error() {
        let scenario = Scenario::builder().tx(0, "T1", |t| t.write("x", 1)).build();
        let sim = Simulator::new(&Naive, &scenario);
        let out = sim.run(
            &Schedule::new()
                .then(Directive::RunUntilTxDone(ProcId(0)))
                .then(Directive::Step(ProcId(0))),
        );
        assert_eq!(out.outcome_of(TxId(0)), TxOutcome::Committed);
        assert!(out.reports[1].error.is_some());
    }

    #[test]
    fn round_robin_completes_simple_workloads() {
        let scenario = Scenario::builder()
            .tx(0, "T1", |t| t.write("x", 1))
            .tx(1, "T2", |t| t.write("y", 2))
            .tx(2, "T3", |t| t.read("x").read("y"))
            .build();
        let sim = Simulator::new(&Naive, &scenario);
        let out = sim.run(&Schedule::round_robin(1000));
        assert!(out.all_committed());
        assert!(!out.any_limit_hit());
    }

    #[test]
    fn unfinished_transactions_are_reported_as_such() {
        let scenario = writer_reader_scenario();
        let sim = Simulator::new(&Naive, &scenario);
        let out = sim.run(&Schedule::new().then(Directive::Step(ProcId(0))));
        assert_eq!(out.outcome_of(TxId(0)), TxOutcome::Unfinished);
        assert_eq!(out.outcome_of(TxId(1)), TxOutcome::Unfinished);
        assert!(!out.all_committed());
    }

    #[test]
    fn per_process_program_order_is_respected() {
        let scenario = Scenario::builder()
            .tx(0, "A1", |t| t.write("x", 1))
            .tx(0, "A2", |t| t.write("x", 2))
            .tx(1, "B", |t| t.read("x"))
            .build();
        let sim = Simulator::new(&Naive, &scenario);
        let out = sim.run(&Schedule::from_directives(vec![
            Directive::RunUntilTxDone(ProcId(0)),
            Directive::RunUntilTxDone(ProcId(0)),
            Directive::RunUntilTxDone(ProcId(1)),
        ]));
        assert!(out.all_committed());
        // B reads the value written by A2, which ran after A1 on the same process.
        assert_eq!(out.read_value(TxId(2), &DataItem::new("x")), Some(2));
        let order = out.execution.history().begin_order();
        assert_eq!(order, vec![TxId(0), TxId(1), TxId(2)]);
    }

    #[test]
    fn summary_mentions_every_transaction() {
        let scenario = writer_reader_scenario();
        let sim = Simulator::new(&Naive, &scenario);
        let out = sim.run(&Schedule::solo_sequence(&scenario));
        let s = out.summary(&scenario);
        assert!(s.contains("T1 committed"));
        assert!(s.contains("T2 committed"));
    }
}
