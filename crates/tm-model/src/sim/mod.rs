//! The deterministic simulator.
//!
//! The simulator runs a [`crate::txspec::Scenario`] against a
//! [`crate::algorithm::TmAlgorithm`] under the control of an explicit [`Schedule`].
//! Each process of the scenario runs on its own OS thread, but **only one logical
//! thread is ever active**: a process blocks before beginning each transaction and
//! before every base-object access, and proceeds only when the scheduler grants it a
//! step.  This gives
//!
//! * **full determinism** — the same (algorithm, scenario, schedule) triple always
//!   produces the same execution, which is what makes "run T solo from configuration
//!   C" reproducible by replaying prefixes, exactly as the PCL proof does;
//! * **step-accurate control** — the critical-step search of the proof ("the first
//!   step `s1` of T1 after which T3's solo read of `b1` flips from 0 to 1") is a
//!   simple loop over prefix lengths.
//!
//! The module is split into:
//!
//! * [`schedule`] — the schedule language (directives) and convenience constructors,
//! * [`outcome`] — what a run returns (execution, per-transaction outcomes, reports),
//! * [`engine`] — the thread/handshake machinery.

mod engine;
mod outcome;
mod schedule;

pub use engine::Simulator;
pub use outcome::{DirectiveReport, SimOutcome, TxOutcome};
pub use schedule::{Directive, Schedule};

/// Default bound on the number of steps a single directive may consume before the
/// simulator declares it stuck (used to detect blocking algorithms: a transaction that
/// spins on a lock forever will hit this bound instead of hanging the harness).
pub const DEFAULT_STEP_LIMIT: usize = 20_000;
