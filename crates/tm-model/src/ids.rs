//! Identifiers for processes, transactions, base objects and data items.
//!
//! The paper distinguishes three "levels" of naming:
//!
//! * **processes** `p1 … pn` executing transactions,
//! * **data items** (the application-level objects a transaction reads and writes),
//! * **base objects** (the low-level shared-memory words a TM *implementation* uses to
//!   represent data items and its own metadata).
//!
//! Disjoint-access-parallelism is exactly the statement relating the last two levels:
//! transactions that do not share *data items* must not contend on *base objects*.

use std::fmt;

/// Identifier of a process (`p1 … pn` in the paper).
///
/// Processes are the units of asynchrony: a step is always performed by a single
/// process, and the simulator's scheduler decides which process takes the next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl ProcId {
    /// Numeric index of the process (zero-based).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper numbers processes starting at 1; keep the internal index zero-based
        // but display in the paper's convention to make traces easy to compare.
        write!(f, "p{}", self.0 + 1)
    }
}

/// Identifier of a transaction.
///
/// In the scenarios reproduced from the paper the identifier matches the paper's
/// numbering (`TxId(0)` is `T1`, …); in generated scenarios it is simply a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub usize);

impl TxId {
    /// Numeric index of the transaction (zero-based).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// Identifier of a base object *within one simulation run*.
///
/// Base objects are allocated lazily by name (see [`crate::baseobj::Memory`]); the
/// numeric id is an artifact of allocation order and therefore **must not** be used to
/// compare steps across different executions.  Cross-execution comparisons (e.g. the
/// indistinguishability arguments of the proof) always go through the object's *name*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub usize);

impl ObjId {
    /// Numeric index of the object in this run's memory.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A data item — an application-level object accessed through `x.read()` / `x.write(v)`.
///
/// Data items are identified purely by name ("a", "b1", "e1,3", …).  The initial value
/// of every data item is `0`, as the proof of the PCL theorem assumes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataItem(String);

impl DataItem {
    /// Create a data item with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DataItem(name.into())
    }

    /// The item's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The initial value of every data item (the paper fixes it to 0).
    pub const INITIAL_VALUE: i64 = 0;
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DataItem {
    fn from(s: &str) -> Self {
        DataItem::new(s)
    }
}

impl From<String> for DataItem {
    fn from(s: String) -> Self {
        DataItem(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn proc_display_is_one_based() {
        assert_eq!(ProcId(0).to_string(), "p1");
        assert_eq!(ProcId(6).to_string(), "p7");
        assert_eq!(ProcId(3).index(), 3);
    }

    #[test]
    fn tx_display_is_one_based() {
        assert_eq!(TxId(0).to_string(), "T1");
        assert_eq!(TxId(6).to_string(), "T7");
    }

    #[test]
    fn data_item_equality_is_by_name() {
        let a = DataItem::new("a");
        let a2: DataItem = "a".into();
        let b = DataItem::new("b1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "a");
        assert_eq!(DataItem::INITIAL_VALUE, 0);
    }

    #[test]
    fn data_items_hash_consistently() {
        let mut set = HashSet::new();
        set.insert(DataItem::new("x"));
        set.insert(DataItem::new("x"));
        set.insert(DataItem::new("y"));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&DataItem::new("x")));
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcId(0) < ProcId(1));
        assert!(TxId(2) > TxId(1));
        assert!(ObjId(5) > ObjId(0));
        assert_eq!(ObjId(5).index(), 5);
        assert_eq!(ObjId(5).to_string(), "o5");
    }
}
