//! Executions: ordered sequences of events, with the interval and
//! indistinguishability machinery the PCL proof relies on.
//!
//! An execution is the full, step-level record of a simulation run.  From it we derive
//!
//! * the **history** (projection onto TM-interface events),
//! * per-transaction **active execution intervals** (first to last event of the
//!   transaction, in event-index space) — the windows into which Definition 3.1/3.3
//!   serialization points must be inserted,
//! * the **per-process step sequences** used for indistinguishability arguments
//!   ("α7 is indistinguishable from α7′ to process p7"),
//! * the **per-transaction base-object footprints** used by the
//!   disjoint-access-parallelism analyses in `tm-properties`.

use crate::history::History;
use crate::ids::{ProcId, TxId};
use crate::step::{Event, MemStep};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A (half-open) interval of event indices `[start, end]`, both inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Index of the first event of the interval.
    pub start: usize,
    /// Index of the last event of the interval.
    pub end: usize,
}

impl Interval {
    /// Whether two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Whether this interval ends before the other starts.
    pub fn precedes(&self, other: &Interval) -> bool {
        self.end < other.start
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// An execution: the ordered list of all events of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Execution {
    events: Vec<Event>,
}

impl Execution {
    /// Create an empty execution.
    pub fn new() -> Self {
        Execution::default()
    }

    /// Create an execution from an ordered event list.
    pub fn from_events(events: Vec<Event>) -> Self {
        Execution { events }
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events (memory steps *and* TM-interface events).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the execution contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The history of the execution: its TM-interface events, in order.
    pub fn history(&self) -> History {
        let mut h = History::new();
        for ev in &self.events {
            if let Event::Tm { proc, event } = ev {
                h.push(*proc, event.clone());
            }
        }
        h
    }

    /// All memory steps, in order, with their event indices.
    pub fn mem_steps(&self) -> Vec<(usize, &MemStep)> {
        self.events.iter().enumerate().filter_map(|(i, ev)| ev.as_mem().map(|s| (i, s))).collect()
    }

    /// The memory steps taken on behalf of a given transaction (the subsequence
    /// `α|T` of the paper, restricted to base-object accesses).
    pub fn steps_of_tx(&self, tx: TxId) -> Vec<&MemStep> {
        self.events.iter().filter_map(|ev| ev.as_mem()).filter(|s| s.tx == tx).collect()
    }

    /// The memory steps taken by a given process, in order.
    pub fn steps_of_proc(&self, proc: ProcId) -> Vec<&MemStep> {
        self.events.iter().filter_map(|ev| ev.as_mem()).filter(|s| s.proc == proc).collect()
    }

    /// All events (memory and TM) belonging to a process, in order.
    pub fn events_of_proc(&self, proc: ProcId) -> Vec<&Event> {
        self.events.iter().filter(|ev| ev.proc() == proc).collect()
    }

    /// The *active execution interval* of a transaction: the indices of its first and
    /// last events in this execution (the paper's definition, which — unlike the plain
    /// execution interval — ends at the transaction's last step even if the
    /// transaction never completes).
    pub fn active_interval(&self, tx: TxId) -> Option<Interval> {
        let mut first = None;
        let mut last = None;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.tx() == tx {
                if first.is_none() {
                    first = Some(i);
                }
                last = Some(i);
            }
        }
        match (first, last) {
            (Some(s), Some(e)) => Some(Interval { start: s, end: e }),
            _ => None,
        }
    }

    /// Active intervals of every transaction appearing in the execution.
    pub fn active_intervals(&self) -> BTreeMap<TxId, Interval> {
        let mut map = BTreeMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            let entry = map.entry(ev.tx()).or_insert(Interval { start: i, end: i });
            entry.end = i;
        }
        map
    }

    /// The set of base-object names a transaction accessed, split by whether the
    /// access was non-trivial.  Used by the DAP analyses.
    pub fn footprint_of_tx(&self, tx: TxId) -> TxFootprint {
        let mut fp = TxFootprint::default();
        for step in self.steps_of_tx(tx) {
            if step.is_nontrivial() {
                fp.nontrivial.insert(step.obj_name.clone());
            } else {
                fp.trivial.insert(step.obj_name.clone());
            }
        }
        fp
    }

    /// All transactions appearing in the execution, in order of first event.
    pub fn transactions(&self) -> Vec<TxId> {
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        for ev in &self.events {
            if seen.insert(ev.tx()) {
                order.push(ev.tx());
            }
        }
        order
    }

    /// Two executions are *indistinguishable to process p* if p performs the same
    /// sequence of steps and receives the same responses in both.  Memory steps are
    /// compared by their footprint (object name, primitive, response) and TM events
    /// structurally.
    pub fn indistinguishable_to(&self, other: &Execution, proc: ProcId) -> bool {
        let mine = self.events_of_proc(proc);
        let theirs = other.events_of_proc(proc);
        if mine.len() != theirs.len() {
            return false;
        }
        mine.iter().zip(theirs.iter()).all(|(a, b)| match (a, b) {
            (Event::Mem(x), Event::Mem(y)) => x.footprint() == y.footprint(),
            (Event::Tm { event: x, .. }, Event::Tm { event: y, .. }) => x == y,
            _ => false,
        })
    }

    /// Describe the first difference visible to `proc` between two executions, for
    /// diagnostics (None if indistinguishable).
    pub fn first_difference_for(&self, other: &Execution, proc: ProcId) -> Option<String> {
        let mine = self.events_of_proc(proc);
        let theirs = other.events_of_proc(proc);
        for (i, (a, b)) in mine.iter().zip(theirs.iter()).enumerate() {
            let same = match (a, b) {
                (Event::Mem(x), Event::Mem(y)) => x.footprint() == y.footprint(),
                (Event::Tm { event: x, .. }, Event::Tm { event: y, .. }) => x == y,
                _ => false,
            };
            if !same {
                return Some(format!("event #{i} of {proc} differs: `{a}` vs `{b}`"));
            }
        }
        if mine.len() != theirs.len() {
            return Some(format!(
                "{proc} performs {} events in one execution and {} in the other",
                mine.len(),
                theirs.len()
            ));
        }
        None
    }

    /// Concatenate two executions (α · β).
    pub fn concat(&self, suffix: &Execution) -> Execution {
        let mut events = self.events.clone();
        events.extend(suffix.events.iter().cloned());
        Execution { events }
    }

    /// The prefix of the execution containing the first `n` events.
    pub fn prefix(&self, n: usize) -> Execution {
        Execution { events: self.events.iter().take(n).cloned().collect() }
    }

    /// Render the execution, one event per line, with indices.
    pub fn render(&self) -> String {
        self.events
            .iter()
            .enumerate()
            .map(|(i, ev)| format!("{i:4}  {ev}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The base-object footprint of a transaction in a given execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxFootprint {
    /// Names of base objects accessed with trivial primitives only.
    pub trivial: BTreeSet<String>,
    /// Names of base objects accessed with at least one non-trivial primitive.
    pub nontrivial: BTreeSet<String>,
}

impl TxFootprint {
    /// All base objects touched, trivially or not.
    pub fn all(&self) -> BTreeSet<String> {
        self.trivial.union(&self.nontrivial).cloned().collect()
    }

    /// Whether this footprint contends with another: they share an object that at
    /// least one of them accesses non-trivially.
    pub fn contends_with(&self, other: &TxFootprint) -> Option<String> {
        for obj in &self.nontrivial {
            if other.trivial.contains(obj) || other.nontrivial.contains(obj) {
                return Some(obj.clone());
            }
        }
        for obj in &other.nontrivial {
            if self.trivial.contains(obj) || self.nontrivial.contains(obj) {
                return Some(obj.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TmEvent;
    use crate::ids::ObjId;
    use crate::primitive::{PrimResponse, Primitive};
    use crate::word::Word;

    fn mem(proc: usize, tx: usize, obj: &str, write: bool) -> Event {
        Event::Mem(MemStep {
            proc: ProcId(proc),
            tx: TxId(tx),
            obj: ObjId(0),
            obj_name: obj.to_string(),
            prim: if write { Primitive::Write(Word::Int(1)) } else { Primitive::Read },
            resp: if write { PrimResponse::Ack } else { PrimResponse::Value(Word::Int(0)) },
        })
    }

    fn tm(proc: usize, ev: TmEvent) -> Event {
        Event::Tm { proc: ProcId(proc), event: ev }
    }

    fn sample() -> Execution {
        Execution::from_events(vec![
            tm(0, TmEvent::InvBegin { tx: TxId(0) }),
            tm(0, TmEvent::RespBegin { tx: TxId(0) }),
            mem(0, 0, "val:x", false),
            mem(0, 0, "val:x", true),
            tm(0, TmEvent::InvCommit { tx: TxId(0) }),
            tm(0, TmEvent::RespCommit { tx: TxId(0), committed: true }),
            tm(1, TmEvent::InvBegin { tx: TxId(1) }),
            tm(1, TmEvent::RespBegin { tx: TxId(1) }),
            mem(1, 1, "val:y", false),
            tm(1, TmEvent::InvCommit { tx: TxId(1) }),
            tm(1, TmEvent::RespCommit { tx: TxId(1), committed: true }),
        ])
    }

    #[test]
    fn history_projection_keeps_only_tm_events() {
        let e = sample();
        let h = e.history();
        assert_eq!(h.len(), 8);
        assert_eq!(h.committed().len(), 2);
    }

    #[test]
    fn intervals_cover_first_to_last_event() {
        let e = sample();
        let i0 = e.active_interval(TxId(0)).unwrap();
        let i1 = e.active_interval(TxId(1)).unwrap();
        assert_eq!(i0, Interval { start: 0, end: 5 });
        assert_eq!(i1, Interval { start: 6, end: 10 });
        assert!(i0.precedes(&i1));
        assert!(!i0.overlaps(&i1));
        assert_eq!(i0.hull(&i1), Interval { start: 0, end: 10 });
        assert!(e.active_interval(TxId(7)).is_none());
        assert_eq!(e.active_intervals().len(), 2);
    }

    #[test]
    fn footprints_and_contention() {
        let e = sample();
        let f0 = e.footprint_of_tx(TxId(0));
        let f1 = e.footprint_of_tx(TxId(1));
        assert!(f0.nontrivial.contains("val:x"));
        assert!(f0.trivial.contains("val:x"));
        assert_eq!(f1.all(), ["val:y".to_string()].into_iter().collect());
        assert!(f0.contends_with(&f1).is_none());

        // A reader of val:x contends with T0 (which writes it).
        let e2 = Execution::from_events(vec![mem(2, 2, "val:x", false)]);
        let f2 = e2.footprint_of_tx(TxId(2));
        assert_eq!(f0.contends_with(&f2), Some("val:x".to_string()));
        // Two readers do not contend.
        assert!(f2.contends_with(&f2.clone()).is_none());
    }

    #[test]
    fn indistinguishability_uses_footprints_not_object_ids() {
        let e1 = Execution::from_events(vec![mem(0, 0, "val:x", false), mem(1, 1, "m", true)]);
        let mut other_step = mem(0, 0, "val:x", false);
        if let Event::Mem(s) = &mut other_step {
            s.obj = ObjId(42); // different run-local id, same name
        }
        let e2 = Execution::from_events(vec![other_step, mem(1, 1, "n", true)]);
        assert!(e1.indistinguishable_to(&e2, ProcId(0)));
        assert!(!e1.indistinguishable_to(&e2, ProcId(1)));
        assert!(e1.first_difference_for(&e2, ProcId(0)).is_none());
        assert!(e1.first_difference_for(&e2, ProcId(1)).unwrap().contains("p2"));
    }

    #[test]
    fn indistinguishability_detects_length_differences() {
        let e1 = Execution::from_events(vec![mem(0, 0, "a", false), mem(0, 0, "b", false)]);
        let e2 = Execution::from_events(vec![mem(0, 0, "a", false)]);
        assert!(!e1.indistinguishable_to(&e2, ProcId(0)));
        assert!(e1.first_difference_for(&e2, ProcId(0)).unwrap().contains("events"));
    }

    #[test]
    fn concat_and_prefix() {
        let e = sample();
        let p = e.prefix(6);
        assert_eq!(p.len(), 6);
        let whole = p.concat(&Execution::from_events(e.events()[6..].to_vec()));
        assert_eq!(whole, e);
    }

    #[test]
    fn per_process_and_per_tx_views() {
        let e = sample();
        assert_eq!(e.steps_of_tx(TxId(0)).len(), 2);
        assert_eq!(e.steps_of_proc(ProcId(1)).len(), 1);
        assert_eq!(e.events_of_proc(ProcId(0)).len(), 6);
        assert_eq!(e.transactions(), vec![TxId(0), TxId(1)]);
        assert_eq!(e.mem_steps().len(), 3);
    }

    #[test]
    fn render_includes_indices() {
        let text = sample().render();
        assert!(text.contains("   0  "));
        assert!(text.contains("val:x"));
    }
}
