//! # tm-history — serialized histories: wire format, adversarial generation, differential fuzzing
//!
//! The auditor (`tm-audit`) proves consistency levels of histories it
//! captured from its own in-process runtime.  This crate makes histories a
//! first-class *artifact*, following the dbcop line of work (Biswas & Enea,
//! *"On the Complexity of Checking Transactional Consistency"*): once a run
//! can be serialized, shipped, re-ingested and generated adversarially, the
//! checker turns into a general consistency-auditing tool.
//!
//! * [`wire`] — a versioned, line-delimited JSON wire format for
//!   [`tm_audit::AuditHistory`] with a dependency-free encoder and a
//!   hardened streaming decoder that rejects malformed input with
//!   positioned (`line`, `col`) errors and never panics.  Round trips are
//!   lossless on captured histories: `decode(encode(h)) == h`, hints and
//!   all, so replaying a decoded history through any audit topology
//!   reproduces the live verdicts byte-for-byte.
//! * [`generate`] — a parameterized adversarial history generator:
//!   `sessions × vars × txns × events`, seeded and deterministic, with
//!   anomaly-injection knobs that plant lost-update / write-skew /
//!   causal-cycle patterns at chosen per-mille rates.  Planted anomalies
//!   come with computable expected verdicts ([`generate::Planted`]), so
//!   generated histories double as checker oracles.
//! * [`minimize`] — delta-debugging reduction of a failing history to a
//!   small reproducer that still trips the caller's predicate, keeping the
//!   history well-formed (no reads of removed writes) so every reproducer
//!   re-encodes as a valid wire document.
//!
//! The `fuzz` binary composes the three into the differential fuzz lane:
//! generated histories run through the batch checkers (saturation + DFS)
//! and the windowed/sharded streaming pipelines, any disagreement fails the
//! gate, and minimized reproducers are written as wire-format artifacts
//! (`scripts/fuzz_gate.sh` wraps it for CI and local runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod minimize;
pub mod wire;

pub use generate::{generate, generate_wire, GenConfig, Generated, Planted};
pub use minimize::minimize;
pub use wire::{decode, decode_all, encode, Decoder, WireError, WIRE_VERSION};
