//! Delta-debugging reduction of histories to minimal reproducers.
//!
//! [`minimize`] takes a history and a predicate ("the checkers still
//! disagree on it") and greedily removes transactions — classic ddmin over
//! the global recording order — while the predicate keeps holding.  Two
//! invariants are maintained so every intermediate candidate is a *valid*
//! history (and the final reproducer re-encodes as a wire document the
//! decoder accepts):
//!
//! * **read closure** — a candidate that removes a write some retained
//!   transaction still reads would fabricate a thin-air read; such
//!   candidates are skipped without consulting the predicate;
//! * **renumbering** — per-session sequence numbers compact and hints are
//!   renumbered `0..n` in the surviving order, preserving relative
//!   recording order.

use tm_audit::{AuditHistory, AuditTxn};

/// One flattened transaction with its original session.
#[derive(Clone)]
struct Flat {
    session: usize,
    txn: AuditTxn,
}

/// Rebuild a history from a subset of flattened transactions (order
/// preserved), renumbering hints and recomputing footprints.
fn rebuild(n_vars: usize, initial: i64, n_sessions: usize, kept: &[Flat]) -> AuditHistory {
    let mut history = AuditHistory::new(n_vars, initial, n_sessions);
    for (hint, flat) in kept.iter().enumerate() {
        let footprint = stm_runtime::footprint_of(
            flat.txn.reads.iter().chain(flat.txn.writes.iter()).map(|&(v, _)| v),
        );
        history.sessions[flat.session].push(AuditTxn {
            reads: flat.txn.reads.clone(),
            writes: flat.txn.writes.clone(),
            hint: hint as u64,
            footprint,
        });
    }
    history
}

/// `true` if every read in `kept` still has its writer (or reads the
/// initial value) — removing transactions must not fabricate thin-air
/// reads.
fn reads_closed(initial: i64, kept: &[Flat]) -> bool {
    let written: std::collections::HashSet<(usize, i64)> =
        kept.iter().flat_map(|f| f.txn.writes.iter().copied()).collect();
    kept.iter().all(|f| {
        f.txn.reads.iter().all(|&(var, value)| value == initial || written.contains(&(var, value)))
    })
}

/// Shrink `history` to a (locally) minimal sub-history on which
/// `interesting` still returns `true`.  The input itself must be
/// interesting; the result always is.
pub fn minimize(
    history: &AuditHistory,
    mut interesting: impl FnMut(&AuditHistory) -> bool,
) -> AuditHistory {
    let n_sessions = history.sessions.len();
    let mut flats: Vec<Flat> = {
        let mut all: Vec<(u64, usize, &AuditTxn)> = history
            .sessions
            .iter()
            .enumerate()
            .flat_map(|(s, txns)| txns.iter().map(move |t| (t.hint, s, t)))
            .collect();
        all.sort_by_key(|&(hint, s, _)| (hint, s));
        all.into_iter().map(|(_, session, txn)| Flat { session, txn: txn.clone() }).collect()
    };
    assert!(
        interesting(&rebuild(history.n_vars, history.initial, n_sessions, &flats)),
        "minimize() requires the input history to satisfy the predicate"
    );

    let mut granularity = 2usize;
    while flats.len() >= 2 {
        let chunk = flats.len().div_ceil(granularity);
        let mut removed_any = false;
        let mut start = 0;
        while start < flats.len() && flats.len() >= 2 {
            let end = (start + chunk).min(flats.len());
            let candidate: Vec<Flat> =
                flats[..start].iter().chain(flats[end..].iter()).cloned().collect();
            let keeps = !candidate.is_empty()
                && reads_closed(history.initial, &candidate)
                && interesting(&rebuild(history.n_vars, history.initial, n_sessions, &candidate));
            if keeps {
                flats = candidate;
                removed_any = true;
                // Same start: the next chunk slid into this position.
            } else {
                start = end;
            }
        }
        if removed_any {
            granularity = granularity.saturating_sub(1).max(2);
        } else if chunk <= 1 {
            break;
        } else {
            granularity = (granularity * 2).min(flats.len());
        }
    }
    rebuild(history.n_vars, history.initial, n_sessions, &flats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_audit::{audit, Level};

    /// A planted lost update buried in serial noise reduces to just the two
    /// conflicting read-modify-writes.
    #[test]
    fn lost_update_reduces_to_its_pair() {
        let mut h = AuditHistory::new(4, 0, 3);
        // Serial noise: a chain on v1 across sessions.
        h.push_txn(0, [(1, 0)], [(1, 100)]);
        h.push_txn(1, [(1, 100)], [(1, 101)]);
        h.push_txn(2, [(1, 101)], [(1, 102)]);
        // The plant: both RMW v0 from the initial value.
        h.push_txn(0, [(0, 0)], [(0, 7)]);
        h.push_txn(1, [(0, 0)], [(0, 8)]);
        // More noise reading the plant's surviving write.
        h.push_txn(2, [(0, 8)], [(2, 103)]);
        let reduced = minimize(&h, |cand| audit(cand).fails(Level::SnapshotIsolation));
        assert_eq!(reduced.txn_count(), 2, "{}", reduced.shape());
        assert!(audit(&reduced).fails(Level::SnapshotIsolation));
        // The reproducer is wire-valid.
        let encoded = crate::wire::encode(&reduced);
        assert_eq!(crate::wire::decode(&encoded).expect("valid reproducer"), reduced);
    }

    #[test]
    #[should_panic(expected = "satisfy the predicate")]
    fn uninteresting_inputs_are_rejected() {
        let mut h = AuditHistory::new(1, 0, 1);
        h.push_txn(0, [], [(0, 1)]);
        let _ = minimize(&h, |_| false);
    }
}
