//! Parameterized adversarial history generation.
//!
//! The generator emits histories one transaction at a time in a single
//! global order, so the **base traffic is serializable by construction**:
//! every read observes the current value of its variable and every write
//! installs a globally-unique fresh value (never the initial value 0).  The
//! emission order itself is a witness commit order, so a history with no
//! planted anomalies passes all five levels — which is what makes planted
//! anomalies *oracles*: any verdict beyond the planted set is a checker
//! disagreement, not noise.
//!
//! Anomaly knobs plant the three classic patterns at chosen per-mille
//! rates, each as a short **contiguous** run of transactions (so windowed
//! auditors with overlap ≥ 3 always see a plant whole in some window):
//!
//! * **lost update** (2 txns, 2 sessions): both read-modify-write the same
//!   variable from the same source — fails SI and SER, passes Causal;
//! * **write skew** (2 txns, 2 sessions): both read both variables from a
//!   common snapshot, writes disjoint — fails SER only;
//! * **causal cycle** (4 txns, 3 sessions): a setup write, an RMW over it,
//!   a reader of the RMW, and a third-session observer that sees the
//!   downstream effect but reads the variable *stale* — the saturation
//!   cycle that fails Causal (and therefore SI and SER);
//! * **long fork** (4 txns, 2 sessions): two independent writers and one
//!   reader per writer session, each reader seeing its own session's write
//!   but the *other* writer's variable stale — two irreconcilable snapshot
//!   prefixes, so Prefix Consistency fails (and SI and SER with it) while
//!   Causal holds.
//!
//! [`generate_hard`] builds the SAT-escalation lane's planted workload: a
//! long-fork core padded with independent per-session RMW chains, sized so
//! the DFS linearization search exhausts any practical state budget while
//! the CDCL solver refutes the window from its unit clauses.

use crate::wire;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tm_audit::{AuditHistory, AuditTxn, Level};

/// Shape and adversity of one generated history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of sessions (causal-cycle plants need ≥ 3, the other plants
    /// ≥ 2).
    pub sessions: usize,
    /// Size of the variable pool (write-skew and causal-cycle plants need
    /// ≥ 2).
    pub vars: usize,
    /// Transactions per session (total = `sessions × txns_per_session`).
    pub txns_per_session: usize,
    /// Read/write events attempted per base transaction (≥ 1; internal
    /// reads and overwritten writes coalesce, so recorded sets may be
    /// smaller).
    pub events_per_txn: usize,
    /// Generator seed: same config + seed ⇒ byte-identical history.
    pub seed: u64,
    /// Per-mille chance that the next emission is a lost-update plant.
    pub lost_update_per_mille: u32,
    /// Per-mille chance that the next emission is a write-skew plant.
    pub write_skew_per_mille: u32,
    /// Per-mille chance that the next emission is a causal-cycle plant.
    pub causal_cycle_per_mille: u32,
    /// Per-mille chance that the next emission is a long-fork plant.
    pub long_fork_per_mille: u32,
    /// When `Some(k)`, multi-variable plants pick their second variable from
    /// the *same* `k`-way partition as the first
    /// ([`tm_audit::partition_of`]), so every plant is fully visible to one
    /// partition auditor of a `k`-sharded pipeline.  The sharded engine's
    /// merged pass only *attests* anomalies whose participants all stay
    /// in-band (see `tm_audit::partition` soundness notes), so a
    /// differential harness that gates on sharded misses must align its
    /// plants; `None` leaves plants free to cross bands.  A plant is
    /// skipped (not emitted) when no same-partition partner variable
    /// exists.
    pub shard_align: Option<usize>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            sessions: 3,
            vars: 8,
            txns_per_session: 50,
            events_per_txn: 3,
            seed: 1,
            lost_update_per_mille: 0,
            write_skew_per_mille: 0,
            causal_cycle_per_mille: 0,
            long_fork_per_mille: 0,
            shard_align: None,
        }
    }
}

/// How many of each anomaly the generator actually planted (a plant is
/// skipped when too few sessions still have capacity, so rates are upper
/// bounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Planted {
    /// Lost-update plants (each fails SI and SER).
    pub lost_updates: u64,
    /// Write-skew plants (each fails SER only).
    pub write_skews: u64,
    /// Causal-cycle plants (each fails Causal, SI and SER).
    pub causal_cycles: u64,
    /// Long-fork plants (each fails Prefix, SI and SER; Causal holds).
    pub long_forks: u64,
}

impl Planted {
    /// Total plants.
    pub fn total(&self) -> u64 {
        self.lost_updates + self.write_skews + self.causal_cycles + self.long_forks
    }

    /// The levels the planted anomalies *guarantee* a sound checker fails
    /// (closed under the hierarchy: a causal violation implies SI and SER).
    /// Levels not listed carry no expectation either way.
    pub fn expected_failures(&self) -> Vec<Level> {
        let mut fails = Vec::new();
        if self.causal_cycles > 0 {
            fails.push(Level::Causal);
        }
        if self.causal_cycles > 0 || self.long_forks > 0 {
            fails.push(Level::Prefix);
        }
        if self.causal_cycles > 0 || self.lost_updates > 0 || self.long_forks > 0 {
            fails.push(Level::SnapshotIsolation);
        }
        if self.total() > 0 {
            fails.push(Level::Serializable);
        }
        fails
    }
}

/// A generated history plus its oracle.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The history (footprints precomputed, like live-captured ones, so it
    /// round-trips the wire format field-for-field).
    pub history: AuditHistory,
    /// What was planted, for expected-verdict computation.
    pub planted: Planted,
}

struct Gen {
    history: AuditHistory,
    /// Current value of every variable under the sequential emission order.
    current: Vec<i64>,
    /// Per-session transactions still to emit.
    remaining: Vec<usize>,
    next_value: i64,
    next_hint: u64,
}

impl Gen {
    fn fresh(&mut self) -> i64 {
        let value = self.next_value;
        self.next_value += 1;
        value
    }

    /// Emit one transaction into `session`, consuming one slot.
    fn emit(&mut self, session: usize, reads: Vec<(usize, i64)>, writes: Vec<(usize, i64)>) {
        let footprint =
            stm_runtime::footprint_of(reads.iter().chain(writes.iter()).map(|&(v, _)| v));
        let hint = self.next_hint;
        self.next_hint += 1;
        self.history.sessions[session].push(AuditTxn { reads, writes, hint, footprint });
        self.remaining[session] -= 1;
    }

    /// Up to `k` distinct sessions with capacity, in random order.
    fn pick_sessions(&self, rng: &mut StdRng, k: usize) -> Vec<usize> {
        let mut open: Vec<usize> =
            (0..self.remaining.len()).filter(|&s| self.remaining[s] > 0).collect();
        let mut picked = Vec::with_capacity(k);
        while picked.len() < k && !open.is_empty() {
            picked.push(open.swap_remove(rng.gen_range(0..open.len())));
        }
        picked
    }
}

/// Two distinct variables for a cross-variable plant, honoring
/// [`GenConfig::shard_align`]: both from the same `k`-way partition when
/// alignment is on.  `None` when no such pair exists in the pool.
fn plant_pair(rng: &mut StdRng, n_vars: usize, align: Option<usize>) -> Option<(usize, usize)> {
    let mates = |x: usize| -> Vec<usize> {
        (0..n_vars)
            .filter(|&v| v != x)
            .filter(|&v| match align {
                Some(k) => tm_audit::partition_of(v, k) == tm_audit::partition_of(x, k),
                None => true,
            })
            .collect()
    };
    let xs: Vec<usize> = (0..n_vars).filter(|&x| !mates(x).is_empty()).collect();
    if xs.is_empty() {
        return None;
    }
    let x = xs[rng.gen_range(0..xs.len())];
    let partners = mates(x);
    Some((x, partners[rng.gen_range(0..partners.len())]))
}

/// Generate one history from `config` (deterministic in the config).
pub fn generate(config: &GenConfig) -> Generated {
    assert!(config.sessions > 0, "GenConfig::sessions must be positive");
    assert!(config.vars > 0, "GenConfig::vars must be positive");
    assert!(config.events_per_txn > 0, "GenConfig::events_per_txn must be positive");
    assert!(
        config.write_skew_per_mille == 0
            && config.causal_cycle_per_mille == 0
            && config.long_fork_per_mille == 0
            || config.vars >= 2,
        "write-skew, causal-cycle and long-fork plants need at least 2 variables"
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7A11_9E5E_D0C5_F00D);
    let mut gen = Gen {
        history: AuditHistory::new(config.vars, 0, config.sessions),
        current: vec![0; config.vars],
        remaining: vec![config.txns_per_session; config.sessions],
        next_value: 1,
        next_hint: 0,
    };
    let mut planted = Planted::default();
    while gen.remaining.iter().any(|&r| r > 0) {
        let roll = rng.gen_range(0..1000u32);
        if roll < config.causal_cycle_per_mille {
            if plant_causal_cycle(&mut gen, &mut rng, config.shard_align) {
                planted.causal_cycles += 1;
                continue;
            }
        } else if roll < config.causal_cycle_per_mille + config.lost_update_per_mille {
            if plant_lost_update(&mut gen, &mut rng) {
                planted.lost_updates += 1;
                continue;
            }
        } else if roll
            < config.causal_cycle_per_mille
                + config.lost_update_per_mille
                + config.write_skew_per_mille
        {
            if plant_write_skew(&mut gen, &mut rng, config.shard_align) {
                planted.write_skews += 1;
                continue;
            }
        } else if roll
            < config.causal_cycle_per_mille
                + config.lost_update_per_mille
                + config.write_skew_per_mille
                + config.long_fork_per_mille
            && plant_long_fork(&mut gen, &mut rng, config.shard_align)
        {
            planted.long_forks += 1;
            continue;
        }
        base_txn(&mut gen, &mut rng, config.events_per_txn);
    }
    Generated { history: gen.history, planted }
}

/// One well-behaved transaction: random read/write events over the pool,
/// reads observing current values (read-your-writes respected: a read after
/// the transaction's own write is internal and not recorded), writes
/// installing fresh unique values.
fn base_txn(gen: &mut Gen, rng: &mut StdRng, events: usize) {
    let sessions = gen.pick_sessions(rng, 1);
    let session = sessions[0];
    let mut reads: Vec<(usize, i64)> = Vec::new();
    let mut writes: Vec<(usize, i64)> = Vec::new();
    for _ in 0..events {
        let var = rng.gen_range(0..gen.current.len());
        if rng.gen_bool(0.5) {
            // Read: external only if the transaction hasn't written (or
            // already read) the variable.
            if writes.iter().all(|&(v, _)| v != var) && reads.iter().all(|&(v, _)| v != var) {
                reads.push((var, gen.current[var]));
            }
        } else {
            let value = gen.fresh();
            match writes.iter_mut().find(|(v, _)| *v == var) {
                Some(entry) => entry.1 = value,
                None => writes.push((var, value)),
            }
        }
    }
    for &(var, value) in &writes {
        gen.current[var] = value;
    }
    gen.emit(session, reads, writes);
}

/// Two sessions read-modify-write the same variable from the same source.
fn plant_lost_update(gen: &mut Gen, rng: &mut StdRng) -> bool {
    let picked = gen.pick_sessions(rng, 2);
    let &[a, b] = picked.as_slice() else { return false };
    let var = rng.gen_range(0..gen.current.len());
    let source = gen.current[var];
    let (f1, f2) = (gen.fresh(), gen.fresh());
    gen.emit(a, vec![(var, source)], vec![(var, f1)]);
    gen.emit(b, vec![(var, source)], vec![(var, f2)]);
    gen.current[var] = f2;
    true
}

/// The classic skew: both transactions read *both* variables from the same
/// snapshot and write disjoint halves.  Each read pins its writer as the
/// last writer of that variable before the reader, so whichever of T1, T2
/// serializes second must have observed the other's write — unconditionally
/// non-serializable, whatever surrounds the plant.  (The one-sided "cross"
/// variant — each reading only the other's variable — is *not* a guaranteed
/// violation: a serialization may slide T2 before `cy`'s writer whenever
/// `f2` is never re-read.)  Writes stay disjoint, so first-committer-wins
/// is unviolated and SI holds.
fn plant_write_skew(gen: &mut Gen, rng: &mut StdRng, align: Option<usize>) -> bool {
    let picked = gen.pick_sessions(rng, 2);
    let &[a, b] = picked.as_slice() else { return false };
    let Some((x, y)) = plant_pair(rng, gen.current.len(), align) else { return false };
    let (cx, cy) = (gen.current[x], gen.current[y]);
    let (f1, f2) = (gen.fresh(), gen.fresh());
    gen.emit(a, vec![(x, cx), (y, cy)], vec![(x, f1)]);
    gen.emit(b, vec![(x, cx), (y, cy)], vec![(y, f2)]);
    gen.current[x] = f1;
    gen.current[y] = f2;
    true
}

/// Setup write S(x=p); T1 RMWs x (p → f1); T2 reads f1, writes y; T3 (third
/// session) reads T2's y *and* the stale x = p.  Saturation derives
/// T1 → S from T3's stale read while S → T1 from T1's read of p: a causal
/// cycle.
fn plant_causal_cycle(gen: &mut Gen, rng: &mut StdRng, align: Option<usize>) -> bool {
    let picked = gen.pick_sessions(rng, 3);
    let &[a, b, c] = picked.as_slice() else { return false };
    // Four slots: S rides in session a ahead of T1.
    if gen.remaining[a] < 2 {
        return false;
    }
    let Some((x, y)) = plant_pair(rng, gen.current.len(), align) else { return false };
    let (p, f1, f2) = (gen.fresh(), gen.fresh(), gen.fresh());
    gen.emit(a, vec![], vec![(x, p)]);
    gen.emit(a, vec![(x, p)], vec![(x, f1)]);
    gen.emit(b, vec![(x, f1)], vec![(y, f2)]);
    gen.emit(c, vec![(y, f2), (x, p)], vec![]);
    gen.current[x] = f1;
    gen.current[y] = f2;
    true
}

/// Two sessions fork: each writes its own variable, then reads back its own
/// write alongside the *other* variable read stale (the value both sessions
/// saw before the plant).  The two readers observe irreconcilable snapshot
/// prefixes — whichever writer a commit order puts first is missing from the
/// other reader's snapshot — so **prefix consistency fails** (and SI/SER by
/// containment) while the base order stays acyclic: Causal holds.
fn plant_long_fork(gen: &mut Gen, rng: &mut StdRng, align: Option<usize>) -> bool {
    let picked = gen.pick_sessions(rng, 2);
    let &[a, b] = picked.as_slice() else { return false };
    if gen.remaining[a] < 3 || gen.remaining[b] < 3 {
        return false;
    }
    let Some((x, y)) = plant_pair(rng, gen.current.len(), align) else { return false };
    // Anchor writes first: session order pins anchor < fork inside each
    // session, so the stale cross-reads below contradict in *every* total
    // order (a free-floating old value could legally commit after the fork
    // writes and dissolve the anomaly).
    let (ax, ay) = (gen.fresh(), gen.fresh());
    let (f1, f2) = (gen.fresh(), gen.fresh());
    gen.emit(a, vec![], vec![(x, ax)]);
    gen.emit(b, vec![], vec![(y, ay)]);
    gen.emit(a, vec![(x, ax)], vec![(x, f1)]);
    gen.emit(b, vec![(y, ay)], vec![(y, f2)]);
    gen.emit(a, vec![(x, f1), (y, ay)], vec![]);
    gen.emit(b, vec![(y, f2), (x, ax)], vec![]);
    gen.current[x] = f1;
    gen.current[y] = f2;
    true
}

/// The SAT-escalation lane's planted hard window: a 4-transaction long-fork
/// core (a definite Prefix/SI/SER violation that the polynomial refutations
/// cannot see) padded with `chains` independent single-session RMW chains of
/// length `chain_len` over disjoint variables.  The chains multiply the DFS
/// linearization search space combinatorially — `chains` and `chain_len` a
/// few steps up from trivial already blow past the default 2M-state budget,
/// leaving the DFS verdict `Unknown` — while the solver's unit clauses (each
/// chain is session-and-wr totally ordered) collapse the same window to the
/// core, which CDCL refutes in a handful of conflicts.
pub fn generate_hard(seed: u64, chains: usize, chain_len: usize) -> Generated {
    assert!(chains > 0 && chain_len > 0, "generate_hard needs positive chain dimensions");
    let sessions = 2 + chains;
    let vars = 2 + chains;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A7_E5CA_1A7E_D0C5);
    let mut gen = Gen {
        history: AuditHistory::new(vars, 0, sessions),
        current: vec![0; vars],
        remaining: vec![usize::MAX; sessions],
        next_value: 1,
        next_hint: 0,
    };
    // The fork core on vars 0 and 1, sessions 0 and 1.
    let (f1, f2) = (gen.fresh(), gen.fresh());
    gen.emit(0, vec![], vec![(0, f1)]);
    gen.emit(1, vec![], vec![(1, f2)]);
    gen.emit(0, vec![(0, f1), (1, 0)], vec![]);
    gen.emit(1, vec![(1, f2), (0, 0)], vec![]);
    // Independent RMW chains, one per extra session, each on its own var —
    // emitted in seed-shuffled round-robin order so the recording order (and
    // with it the DFS's traversal) varies across seeds while the verdict
    // oracle does not.
    let mut slots: Vec<usize> =
        (0..chains).flat_map(|c| std::iter::repeat_n(c, chain_len)).collect();
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng.gen_range(0..=i));
    }
    for c in slots {
        let (session, var) = (2 + c, 2 + c);
        let last = gen.current[var];
        let next = gen.fresh();
        gen.emit(session, vec![(var, last)], vec![(var, next)]);
        gen.current[var] = next;
    }
    Generated { history: gen.history, planted: Planted { long_forks: 1, ..Planted::default() } }
}

/// Convenience: generate and serialize in one step (the fuzz harness's
/// reproducer artifacts and the CLI's generated-ingest demos).
pub fn generate_wire(config: &GenConfig) -> (String, Planted) {
    let generated = generate(config);
    (wire::encode(&generated.history), generated.planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_audit::{
        audit_with_budget, audit_with_options, AuditOptions, DecidedBy, Outcome, SatConfig,
    };

    fn long_fork_only(seed: u64) -> GenConfig {
        GenConfig {
            sessions: 4,
            vars: 4,
            txns_per_session: 12,
            events_per_txn: 2,
            seed,
            lost_update_per_mille: 0,
            write_skew_per_mille: 0,
            causal_cycle_per_mille: 0,
            long_fork_per_mille: 400,
            shard_align: None,
        }
    }

    #[test]
    fn long_fork_plants_convict_prefix_and_spare_causal() {
        let mut planted_somewhere = false;
        for seed in 0..8 {
            let generated = generate(&long_fork_only(seed));
            if generated.planted.long_forks == 0 {
                continue;
            }
            planted_somewhere = true;
            let expected = generated.planted.expected_failures();
            assert!(expected.contains(&Level::Prefix), "oracle must expect a Prefix failure");
            let report = audit_with_budget(&generated.history, 50_000_000);
            assert!(report.passes(Level::Causal), "seed {seed}: long fork is causal:\n{report}");
            for level in expected {
                assert!(report.fails(level), "seed {seed}: {level} must fail:\n{report}");
            }
        }
        assert!(planted_somewhere, "no seed planted a long fork at 400‰");
    }

    #[test]
    fn generate_hard_starves_dfs_and_sat_convicts() {
        let generated = generate_hard(3, 7, 8);
        let budget = 100_000; // scaled-down stand-in for the default 2M (CI runs full size)
        let starved = audit_with_budget(&generated.history, budget);
        for level in [Level::Prefix, Level::SnapshotIsolation, Level::Serializable] {
            assert!(
                matches!(starved.outcome(level), Some(Outcome::Unknown { .. })),
                "{level} should exhaust the DFS budget:\n{starved}"
            );
        }
        let options = AuditOptions { budget, sat: Some(SatConfig::default()) };
        let decided = audit_with_options(&generated.history, &options);
        assert!(decided.passes(Level::Causal), "{decided}");
        for level in [Level::Prefix, Level::SnapshotIsolation, Level::Serializable] {
            assert!(decided.fails(level), "{level} must be convicted:\n{decided}");
            let report = decided.levels.iter().find(|l| l.level == level).unwrap();
            assert_eq!(report.decided_by, DecidedBy::Sat, "{level} must carry SAT provenance");
        }
    }

    #[test]
    fn generate_hard_is_deterministic_and_seed_sensitive() {
        let a = wire::encode(&generate_hard(7, 3, 4).history);
        let b = wire::encode(&generate_hard(7, 3, 4).history);
        let c = wire::encode(&generate_hard(8, 3, 4).history);
        assert_eq!(a, b, "same seed must be byte-identical");
        assert_ne!(a, c, "different seeds must interleave differently");
    }
}
