//! Wire format v1: serialized [`AuditHistory`] documents.
//!
//! A **document** is line-delimited JSON in a fixed, canonical field order
//! (no whitespace), so the hand-rolled encoder and decoder agree on every
//! byte and diffs of exported histories are stable:
//!
//! ```text
//! {"tm-history":1,"sessions":2,"vars":16,"initial":0}
//! {"s":0,"q":0,"h":0,"r":[[3,0]],"w":[[3,1099511627776]]}
//! {"s":1,"q":0,"h":1,"r":[[3,1099511627776]],"w":[]}
//! ```
//!
//! * The **header** names the wire version, the session count, the variable
//!   count and the shared initial value.  Variables are `0..vars`; every one
//!   starts at `initial`.
//! * Each following line is one **committed transaction**: session `s`,
//!   per-session sequence number `q`, global recording hint `h`, external
//!   read set `r` and write set `w` as `[variable,value]` pairs.
//!   Transactions appear in recording (`h`) order; within a session both
//!   `q` and `h` increase.
//! * A document ends at a **blank line** or end of input; a stream may carry
//!   many blank-line-separated documents ([`Decoder::next_history`]).
//!
//! The decoder is *hardened*: every rejection is a positioned
//! [`WireError`] (`line`, `col`, message) and malformed input never panics.
//! Beyond the grammar it enforces the recording contract the auditor's
//! write-read inference needs — unique write values, no writes of the
//! initial value, no reads of never-written values, per-session `q`/`h`
//! continuity — so anything that decodes is a well-formed
//! [`AuditHistory`].  Transaction footprints are derived data (a hash of
//! the variable sets) and deliberately not on the wire; the decoder
//! recomputes them with [`stm_runtime::footprint_of`], exactly as the live
//! recorders do, which is why `decode(encode(h)) == h` holds field-for-field
//! on captured histories.

use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use tm_audit::{AuditHistory, AuditTxn, HistoryError, TxnId};

/// The wire format version this crate reads and writes.
pub const WIRE_VERSION: u64 = 1;

/// Hard cap on the header's session count: pre-allocating sessions from a
/// hostile header must not balloon memory.
pub const MAX_SESSIONS: usize = 1 << 20;

/// Hard cap on the header's variable count (variables are indices, so this
/// only bounds sanity, not allocation).
pub const MAX_VARS: usize = 1 << 28;

/// A positioned decode rejection: `line` and `col` are 1-based and point at
/// the offending byte (column 1 = whole-line or document-level defects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// 1-based input line.
    pub line: u64,
    /// 1-based byte column within the line.
    pub col: u64,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for WireError {}

/// Serialize one history as a wire document (header + one line per
/// transaction in `(hint, session)` order, trailing newline included).
///
/// Per-session hints must increase with session order — true of every
/// recorder, the generator and [`AuditHistory::push_txn`]; a history that
/// breaks it would re-read as out-of-order and be rejected by the decoder.
pub fn encode(history: &AuditHistory) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"tm-history\":{WIRE_VERSION},\"sessions\":{},\"vars\":{},\"initial\":{}}}",
        history.sessions.len(),
        history.n_vars,
        history.initial
    );
    let mut order: Vec<(u64, usize, usize)> = history
        .sessions
        .iter()
        .enumerate()
        .flat_map(|(s, txns)| txns.iter().enumerate().map(move |(q, txn)| (txn.hint, s, q)))
        .collect();
    order.sort_unstable();
    for (hint, s, q) in order {
        let txn = &history.sessions[s][q];
        let _ = writeln!(
            out,
            "{{\"s\":{s},\"q\":{q},\"h\":{hint},\"r\":{},\"w\":{}}}",
            pairs_json(&txn.reads),
            pairs_json(&txn.writes)
        );
    }
    out
}

fn pairs_json(pairs: &[(usize, i64)]) -> String {
    let entries: Vec<String> = pairs.iter().map(|&(v, x)| format!("[{v},{x}]")).collect();
    format!("[{}]", entries.join(","))
}

/// Decode exactly one document (leading/trailing blank lines allowed).
pub fn decode(text: &str) -> Result<AuditHistory, WireError> {
    let mut decoder = Decoder::new(text.as_bytes());
    let Some(history) = decoder.next_history()? else {
        return Err(WireError {
            line: 1,
            col: 1,
            message: "empty input: expected a tm-history header".into(),
        });
    };
    while let Some(line) = decoder.read_line()? {
        if !line.trim().is_empty() {
            return Err(WireError {
                line: decoder.line_no,
                col: 1,
                message: "unexpected content after the history document \
                          (use decode_all for multi-document streams)"
                    .into(),
            });
        }
    }
    Ok(history)
}

/// Decode every blank-line-separated document in the input.
pub fn decode_all(text: &str) -> Result<Vec<AuditHistory>, WireError> {
    let mut decoder = Decoder::new(text.as_bytes());
    let mut histories = Vec::new();
    while let Some(history) = decoder.next_history()? {
        histories.push(history);
    }
    Ok(histories)
}

/// Streaming multi-document decoder over any [`BufRead`] (a file, stdin, a
/// socket): each [`Decoder::next_history`] call reads one document; a
/// rejected document can be skipped with [`Decoder::skip_document`] to
/// resynchronize at the next blank-line boundary.
pub struct Decoder<R> {
    reader: R,
    line_no: u64,
}

impl<R: BufRead> Decoder<R> {
    /// A decoder at line 0 of `reader`.
    pub fn new(reader: R) -> Self {
        Decoder { reader, line_no: 0 }
    }

    /// The 1-based number of the last line read (0 before any read).
    pub fn line(&self) -> u64 {
        self.line_no
    }

    fn read_line(&mut self) -> Result<Option<String>, WireError> {
        let mut buf = String::new();
        match self.reader.read_line(&mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                self.line_no += 1;
                while buf.ends_with('\n') || buf.ends_with('\r') {
                    buf.pop();
                }
                Ok(Some(buf))
            }
            Err(err) => {
                // Includes invalid UTF-8: surfaced as a positioned error,
                // never a panic.
                self.line_no += 1;
                Err(WireError { line: self.line_no, col: 1, message: format!("read error: {err}") })
            }
        }
    }

    /// Consume lines up to (and including) the next blank line or EOF —
    /// the resynchronization step after a rejected document in a
    /// multi-document stream.
    pub fn skip_document(&mut self) -> Result<(), WireError> {
        while let Some(line) = self.read_line()? {
            if line.trim().is_empty() {
                break;
            }
        }
        Ok(())
    }

    /// Read the next document; `Ok(None)` at end of input.
    pub fn next_history(&mut self) -> Result<Option<AuditHistory>, WireError> {
        Ok(self.next_history_arrival()?.map(|(history, _)| history))
    }

    /// Like [`Decoder::next_history`], but also return the document's
    /// **arrival order** — each transaction's [`TxnId`] in source line
    /// order.  A WAL round is only partially constrained (racing sessions
    /// may interleave either way), so recovery replays records in exactly
    /// this order rather than re-sorting by hint, which could differ.
    pub fn next_history_arrival(
        &mut self,
    ) -> Result<Option<(AuditHistory, Vec<TxnId>)>, WireError> {
        let header = loop {
            match self.read_line()? {
                None => return Ok(None),
                Some(line) if line.trim().is_empty() => continue,
                Some(line) => break line,
            }
        };
        let header_line = self.line_no;
        let (sessions, vars, initial) = parse_header(&header, header_line)?;
        let mut history = AuditHistory::new(vars, initial, sessions);
        // Arrival order with source lines, for the document-wide validation
        // pass below.
        let mut arrival: Vec<(TxnId, u64)> = Vec::new();
        let mut last_hint: Vec<Option<u64>> = vec![None; sessions];
        while let Some(line) = self.read_line()? {
            if line.trim().is_empty() {
                break;
            }
            if line.starts_with("{\"tm-history\"") {
                return Err(WireError {
                    line: self.line_no,
                    col: 1,
                    message: "new history header before the current document ended \
                              (separate documents with a blank line)"
                        .into(),
                });
            }
            let mut seqs = SeqView { history: &history };
            let (s, q, h, reads, writes) =
                parse_txn(&line, self.line_no, vars, &mut seqs, &last_hint)?;
            last_hint[s] = Some(h);
            let footprint =
                stm_runtime::footprint_of(reads.iter().chain(writes.iter()).map(|&(var, _)| var));
            history.sessions[s].push(AuditTxn { reads, writes, hint: h, footprint });
            arrival.push((TxnId { session: s, seq: q }, self.line_no));
        }
        validate_document(&history, &arrival)?;
        Ok(Some((history, arrival.into_iter().map(|(id, _)| id).collect())))
    }
}

/// Read-only view of per-session lengths for the in-flight document (keeps
/// `parse_txn` free of borrows on the whole decoder).
struct SeqView<'a> {
    history: &'a AuditHistory,
}

impl SeqView<'_> {
    fn next_seq(&self, session: usize) -> usize {
        self.history.sessions[session].len()
    }
}

/// The recording-contract validation pass: unique write values, no writes
/// of the initial value, every read attributable.  Errors reuse
/// [`HistoryError`]'s wording, positioned at the offending transaction's
/// line.
fn validate_document(history: &AuditHistory, arrival: &[(TxnId, u64)]) -> Result<(), WireError> {
    let mut writers: HashMap<(usize, i64), TxnId> = HashMap::new();
    for &(id, line) in arrival {
        let txn = history.txn(id).expect("arrival list indexes the history");
        for &(var, value) in &txn.writes {
            if value == history.initial {
                let err = HistoryError::InitialValueWritten { writer: id, var, value };
                return Err(WireError { line, col: 1, message: err.to_string() });
            }
            if let Some(&first) = writers.get(&(var, value)) {
                let err = HistoryError::AmbiguousWrite { var, value, first, second: id };
                return Err(WireError { line, col: 1, message: err.to_string() });
            }
            writers.insert((var, value), id);
        }
    }
    for &(id, line) in arrival {
        let txn = history.txn(id).expect("arrival list indexes the history");
        for &(var, value) in &txn.reads {
            if value != history.initial && !writers.contains_key(&(var, value)) {
                let err = HistoryError::ThinAirRead { reader: id, var, value };
                return Err(WireError { line, col: 1, message: err.to_string() });
            }
        }
    }
    Ok(())
}

/// Byte cursor over one line, producing positioned errors.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u64,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str, line_no: u64) -> Self {
        Cursor { bytes: line.as_bytes(), pos: 0, line: line_no }
    }

    fn err_at(&self, pos: usize, message: impl Into<String>) -> WireError {
        WireError { line: self.line, col: pos as u64 + 1, message: message.into() }
    }

    fn err(&self, message: impl Into<String>) -> WireError {
        self.err_at(self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn expect(&mut self, lit: &str) -> Result<(), WireError> {
        if self.bytes[self.pos.min(self.bytes.len())..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else if self.done() {
            Err(self.err(format!("unexpected end of line: expected {lit:?}")))
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn digits(&mut self) -> &'a str {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits")
    }

    fn parse_u64(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let digits = self.digits();
        if digits.is_empty() {
            return Err(self.err_at(start, "expected an unsigned integer"));
        }
        digits
            .parse::<u64>()
            .map_err(|_| self.err_at(start, format!("integer {digits} out of range")))
    }

    fn parse_i64(&mut self) -> Result<i64, WireError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let digits = self.digits();
        if digits.is_empty() {
            return Err(self.err_at(start, "expected an integer"));
        }
        let text = &std::str::from_utf8(self.bytes).expect("line is valid UTF-8")[start..self.pos];
        text.parse::<i64>().map_err(|_| self.err_at(start, format!("integer {text} out of range")))
    }
}

fn parse_header(line: &str, line_no: u64) -> Result<(usize, usize, i64), WireError> {
    let mut c = Cursor::new(line, line_no);
    c.expect("{\"tm-history\":")?;
    let vpos = c.pos;
    let version = c.parse_u64()?;
    if version != WIRE_VERSION {
        return Err(c.err_at(
            vpos,
            format!("unsupported tm-history version {version} (this decoder reads version {WIRE_VERSION})"),
        ));
    }
    c.expect(",\"sessions\":")?;
    let spos = c.pos;
    // Cap-check the raw u64 before narrowing: `as usize` truncates on
    // 32-bit targets, so a hostile count like 2^32+5 would otherwise
    // shrink to 5 and sail past the cap.
    let sessions = c.parse_u64()?;
    if sessions > MAX_SESSIONS as u64 {
        return Err(
            c.err_at(spos, format!("session count {sessions} exceeds the cap of {MAX_SESSIONS}"))
        );
    }
    let sessions = sessions as usize;
    c.expect(",\"vars\":")?;
    let vpos = c.pos;
    let vars = c.parse_u64()?;
    if vars > MAX_VARS as u64 {
        return Err(c.err_at(vpos, format!("variable count {vars} exceeds the cap of {MAX_VARS}")));
    }
    let vars = vars as usize;
    c.expect(",\"initial\":")?;
    let initial = c.parse_i64()?;
    c.expect("}")?;
    if !c.done() {
        return Err(c.err("trailing characters after the header object"));
    }
    Ok((sessions, vars, initial))
}

type ParsedTxn = (usize, usize, u64, Vec<(usize, i64)>, Vec<(usize, i64)>);

fn parse_txn(
    line: &str,
    line_no: u64,
    vars: usize,
    seqs: &mut SeqView<'_>,
    last_hint: &[Option<u64>],
) -> Result<ParsedTxn, WireError> {
    let mut c = Cursor::new(line, line_no);
    c.expect("{\"s\":")?;
    let spos = c.pos;
    // Range-check as u64 before narrowing (see parse_header): truncation on
    // 32-bit targets must not alias an out-of-range index onto a valid one.
    let s = c.parse_u64()?;
    if s >= last_hint.len() as u64 {
        return Err(c.err_at(
            spos,
            format!("session {s} out of range (the header declares {} sessions)", last_hint.len()),
        ));
    }
    let s = s as usize;
    c.expect(",\"q\":")?;
    let qpos = c.pos;
    let q = c.parse_u64()?;
    let expected = seqs.next_seq(s);
    if q != expected as u64 {
        return Err(c.err_at(
            qpos,
            format!(
                "transaction s{s}:{q} out of order: expected seq {expected} for session {s} \
                 (duplicate or missing transaction)"
            ),
        ));
    }
    c.expect(",\"h\":")?;
    let hpos = c.pos;
    let h = c.parse_u64()?;
    if let Some(prev) = last_hint[s] {
        if h <= prev {
            return Err(c.err_at(
                hpos,
                format!("hint {h} does not increase within session {s} (previous was {prev})"),
            ));
        }
    }
    c.expect(",\"r\":")?;
    let reads = parse_pairs(&mut c, vars, "read")?;
    c.expect(",\"w\":")?;
    let writes = parse_pairs(&mut c, vars, "write")?;
    c.expect("}")?;
    if !c.done() {
        return Err(c.err("trailing characters after the transaction object"));
    }
    Ok((s, q as usize, h, reads, writes))
}

fn parse_pairs(
    c: &mut Cursor<'_>,
    vars: usize,
    kind: &str,
) -> Result<Vec<(usize, i64)>, WireError> {
    c.expect("[")?;
    let mut pairs: Vec<(usize, i64)> = Vec::new();
    if c.peek() == Some(b']') {
        c.pos += 1;
        return Ok(pairs);
    }
    loop {
        let pair_pos = c.pos;
        c.expect("[")?;
        let vpos = c.pos;
        let var = c.parse_u64()?;
        if var >= vars as u64 {
            return Err(c.err_at(
                vpos,
                format!("variable v{var} out of range (the header declares {vars} variables)"),
            ));
        }
        let var = var as usize;
        if pairs.iter().any(|&(v, _)| v == var) {
            return Err(
                c.err_at(pair_pos, format!("duplicate {kind} of v{var} in one transaction"))
            );
        }
        c.expect(",")?;
        let value = c.parse_i64()?;
        c.expect("]")?;
        pairs.push((var, value));
        match c.peek() {
            Some(b',') => c.pos += 1,
            _ => break,
        }
    }
    c.expect("]")?;
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditHistory {
        let mut h = AuditHistory::new(4, 0, 2);
        h.push_txn(0, [(0, 0)], [(0, 7)]);
        h.push_txn(1, [(0, 7)], [(1, 9), (2, -3)]);
        h.push_txn(0, [(1, 9), (2, -3)], []);
        h
    }

    #[test]
    fn encode_is_canonical_and_decodes_back() {
        let h = sample();
        let text = encode(&h);
        assert!(text.starts_with("{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}\n"));
        assert!(text.ends_with('\n'));
        let decoded = decode(&text).expect("round trip");
        // push_txn leaves footprints at 0; the decoder derives them — the
        // rest of the structure must match exactly.
        assert_eq!(decoded.n_vars, h.n_vars);
        assert_eq!(decoded.initial, h.initial);
        for (ds, hs) in decoded.sessions.iter().zip(&h.sessions) {
            assert_eq!(ds.len(), hs.len());
            for (d, o) in ds.iter().zip(hs) {
                assert_eq!((&d.reads, &d.writes, d.hint), (&o.reads, &o.writes, o.hint));
                assert_eq!(
                    d.footprint,
                    stm_runtime::footprint_of(o.reads.iter().chain(&o.writes).map(|&(v, _)| v))
                );
            }
        }
    }

    #[test]
    fn multi_document_streams_decode_in_order() {
        let text = format!("{}\n\n{}", encode(&sample()), encode(&AuditHistory::new(1, 5, 1)));
        let all = decode_all(&text).expect("two documents");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].txn_count(), 3);
        assert_eq!(all[1].initial, 5);
        // decode() refuses the same stream.
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains("decode_all"), "{err}");
    }

    #[test]
    fn skip_document_resynchronizes_a_stream() {
        let good = encode(&sample());
        let text =
            format!("{{\"tm-history\":9,\"sessions\":1,\"vars\":1,\"initial\":0}}\njunk\n\n{good}");
        let mut decoder = Decoder::new(text.as_bytes());
        let err = decoder.next_history().unwrap_err();
        assert!(err.message.contains("unsupported"), "{err}");
        decoder.skip_document().unwrap();
        let recovered = decoder.next_history().unwrap().expect("good document after skip");
        assert_eq!(recovered.txn_count(), 3);
        assert!(decoder.next_history().unwrap().is_none());
    }

    #[test]
    fn arrival_order_is_source_line_order() {
        // Per-session constraints allow cross-session interleavings that are
        // NOT globally hint-sorted; arrival order must preserve the source.
        let text = "{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}\n\
                    {\"s\":1,\"q\":0,\"h\":5,\"r\":[],\"w\":[[0,7]]}\n\
                    {\"s\":0,\"q\":0,\"h\":2,\"r\":[],\"w\":[[1,8]]}\n\
                    {\"s\":1,\"q\":1,\"h\":6,\"r\":[],\"w\":[[2,9]]}\n";
        let mut decoder = Decoder::new(text.as_bytes());
        let (history, arrival) = decoder.next_history_arrival().unwrap().expect("document");
        assert_eq!(history.txn_count(), 3);
        let ids: Vec<(usize, usize)> = arrival.iter().map(|id| (id.session, id.seq)).collect();
        assert_eq!(ids, vec![(1, 0), (0, 0), (1, 1)]);
    }

    #[test]
    fn wal_sink_lines_are_byte_compatible_with_the_encoder() {
        // The WAL writer in stm-runtime hand-formats wire lines (it cannot
        // depend on this crate); this test pins those bytes to the real
        // encoder so the formats can never drift apart.
        let h = sample();
        let dir = std::env::temp_dir().join(format!("wire-wal-compat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink =
            stm_runtime::wal::WalSink::create(&dir, h.sessions.len(), h.n_vars, h.initial)
                .expect("create sink");
        let mut order: Vec<(u64, usize, usize)> = h
            .sessions
            .iter()
            .enumerate()
            .flat_map(|(s, txns)| txns.iter().enumerate().map(move |(q, t)| (t.hint, s, q)))
            .collect();
        order.sort_unstable();
        for &(hint, s, q) in &order {
            let txn = &h.sessions[s][q];
            sink.append_txn(s, q as u64, hint, &txn.reads, &txn.writes).expect("append");
        }
        sink.finish().expect("finish");
        let round = stm_runtime::wal::recover_round(&dir).expect("recover");
        assert_eq!(round.text, encode(&h), "WAL bytes must equal the canonical encoding");
        let decoded = decode(&round.text).expect("WAL round decodes as-is");
        assert_eq!(decoded.txn_count(), h.txn_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_header_counts_are_rejected_before_narrowing() {
        // 2^32 + 5: on a 32-bit target `as usize` truncates this to 5, so
        // the cap must be compared against the raw u64.  The rejection has
        // to hold on every target, 64-bit included.
        let big = (1u64 << 32) + 5;
        let text = format!("{{\"tm-history\":1,\"sessions\":{big},\"vars\":4,\"initial\":0}}\n");
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains(&format!("session count {big} exceeds")), "{err}");

        let text = format!("{{\"tm-history\":1,\"sessions\":2,\"vars\":{big},\"initial\":0}}\n");
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains(&format!("variable count {big} exceeds")), "{err}");
    }

    #[test]
    fn oversized_txn_indices_are_rejected_before_narrowing() {
        // Same truncation class inside transaction lines: a session or
        // variable index of 2^32+small must not alias onto a valid index.
        let big_s = (1u64 << 32) + 1; // would truncate to session 1 (valid)
        let text = format!(
            "{{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}}\n\
             {{\"s\":{big_s},\"q\":0,\"h\":0,\"r\":[],\"w\":[[0,7]]}}\n"
        );
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains(&format!("session {big_s} out of range")), "{err}");

        let big_v = (1u64 << 32) + 2; // would truncate to variable 2 (valid)
        let text = format!(
            "{{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}}\n\
             {{\"s\":0,\"q\":0,\"h\":0,\"r\":[],\"w\":[[{big_v},7]]}}\n"
        );
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains(&format!("variable v{big_v} out of range")), "{err}");

        // And a q of 2^32+0 must not pass the `q == expected(0)` check.
        let big_q = 1u64 << 32;
        let text = format!(
            "{{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}}\n\
             {{\"s\":0,\"q\":{big_q},\"h\":0,\"r\":[],\"w\":[[0,7]]}}\n"
        );
        let err = decode(&text).unwrap_err();
        assert!(err.message.contains("out of order"), "{err}");
    }

    #[test]
    fn final_line_without_trailing_newline_decodes() {
        // A document truncated of its final newline (e.g. a log tail) must
        // still decode: read_line yields the last partial line and the
        // decoder treats EOF as end-of-document.
        let text = encode(&sample());
        let trimmed = text.trim_end_matches('\n');
        assert!(!trimmed.ends_with('\n'));
        let h = decode(trimmed).expect("no trailing newline");
        assert_eq!(h.txn_count(), 3);

        let mut decoder = Decoder::new(trimmed.as_bytes());
        let h = decoder.next_history().unwrap().expect("document");
        assert_eq!(h.txn_count(), 3);
        assert!(decoder.next_history().unwrap().is_none());
    }

    #[test]
    fn skip_document_at_eof_mid_document_is_ok() {
        // A stream that ends mid-document (no blank-line terminator):
        // skip_document must consume to EOF and return Ok, and the decoder
        // must then report end of input rather than erroring or spinning.
        let text = "{\"tm-history\":9,\"sessions\":1,\"vars\":1,\"initial\":0}\njunk-line";
        let mut decoder = Decoder::new(text.as_bytes());
        let err = decoder.next_history().unwrap_err();
        assert!(err.message.contains("unsupported"), "{err}");
        decoder.skip_document().expect("skip to EOF");
        assert!(decoder.next_history().unwrap().is_none());
        // Further skips at EOF stay Ok (idempotent resync).
        decoder.skip_document().expect("skip at EOF");
    }

    #[test]
    fn positioned_errors_name_line_and_col() {
        let text = "{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}\n\
                    {\"s\":0,\"q\":0,\"h\":0,\"r\":[],\"w\":[[0,7]]}\n\
                    {\"s\":5,\"q\":0,\"h\":1,\"r\":[],\"w\":[[1,8]]}\n";
        let err = decode(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 6, "{err}");
        assert!(err.message.contains("session 5 out of range"), "{err}");
        assert!(err.to_string().starts_with("line 3, col 6:"), "{err}");
    }
}
