//! `genhist` — emit wire-format histories from the planted-anomaly generator.
//!
//! Two modes:
//!
//! * **random** (default) — one [`GenConfig`]-shaped history with planted
//!   anomalies, every knob exposed as a flag.  The oracle's expected
//!   failures are printed to stderr so a driver can assert against them.
//! * **`--hard`** — the SAT-escalation workload from
//!   [`tm_history::generate::generate_hard`]: an anchored long-fork
//!   core (fails Prefix/SI/SER, passes Causal, invisible to the polynomial
//!   refutations) padded with `--chains` independent RMW chains of length
//!   `--chain-len`, interleaved round-robin.  The padding blows the DFS
//!   linearization search past any practical state budget while the CDCL
//!   solver collapses every chain through unit clauses — the history CI's
//!   `sat-smoke` lane generates with exactly this mode and asserts the
//!   `--sat` audit convicts with `decided_by == "sat"`.
//!
//! The document goes to stdout; pipe it straight into
//! `audit --ingest - --sat`.

use std::io::Write as _;
use std::process::ExitCode;

use tm_history::generate::generate_hard;
use tm_history::{generate, wire, GenConfig};

struct Args {
    hard: bool,
    seed: u64,
    chains: usize,
    chain_len: usize,
    config: GenConfig,
}

fn usage() -> String {
    String::from(
        "usage: genhist [--hard] [--seed N] [--chains N] [--chain-len N]\n\
         \x20              [--sessions N] [--vars N] [--txns N] [--events N]\n\
         \x20              [--lost-update PM] [--write-skew PM] [--causal-cycle PM]\n\
         \x20              [--long-fork PM]\n\
         \n\
         Emit one wire-format history document to stdout.  Default mode is the\n\
         planted-anomaly generator (per-mille plant rates via the PM flags);\n\
         --hard emits the SAT-escalation workload instead: a long-fork core\n\
         padded with --chains RMW chains of --chain-len so DFS exhausts its\n\
         state budget while the CDCL solver decides the window.",
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        hard: false,
        seed: 0,
        chains: 7,
        chain_len: 8,
        config: GenConfig {
            sessions: 4,
            vars: 8,
            txns_per_session: 16,
            events_per_txn: 3,
            seed: 0,
            lost_update_per_mille: 0,
            write_skew_per_mille: 0,
            causal_cycle_per_mille: 0,
            long_fork_per_mille: 0,
            shard_align: None,
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--hard" => args.hard = true,
            "--seed" => args.seed = num("--seed")?,
            "--chains" => args.chains = num("--chains")? as usize,
            "--chain-len" => args.chain_len = num("--chain-len")? as usize,
            "--sessions" => args.config.sessions = num("--sessions")? as usize,
            "--vars" => args.config.vars = num("--vars")? as usize,
            "--txns" => args.config.txns_per_session = num("--txns")? as usize,
            "--events" => args.config.events_per_txn = num("--events")? as usize,
            "--lost-update" => args.config.lost_update_per_mille = num("--lost-update")? as u32,
            "--write-skew" => args.config.write_skew_per_mille = num("--write-skew")? as u32,
            "--causal-cycle" => args.config.causal_cycle_per_mille = num("--causal-cycle")? as u32,
            "--long-fork" => args.config.long_fork_per_mille = num("--long-fork")? as u32,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    args.config.seed = args.seed;
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let generated = if args.hard {
        generate_hard(args.seed, args.chains, args.chain_len)
    } else {
        generate(&args.config)
    };
    let expected: Vec<&str> =
        generated.planted.expected_failures().iter().map(|l| l.tag()).collect();
    eprintln!(
        "genhist: {} txn(s), expected failures: [{}]",
        generated.history.txn_count(),
        expected.join(", ")
    );
    let mut stdout = std::io::stdout().lock();
    if stdout.write_all(wire::encode(&generated.history).as_bytes()).is_err() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
