//! Differential fuzz harness: generated histories through every checker.
//!
//! For each seed the harness derives a random-but-deterministic
//! [`GenConfig`], generates a history with its planted-anomaly oracle, and
//! runs it through the checker roster:
//!
//! * **batch** — the whole-history saturation + DFS auditor (the reference);
//! * **whole-window** — `audit_streamed` with one window covering the run
//!   (must agree with batch definitively);
//! * **rolling-window** — `audit_streamed` with small overlapping windows;
//! * **sharded** — `audit_sharded` with a K-way band partition;
//! * **sat-forced** (`--sat-cross`) — the whole history re-decided with the
//!   CDCL commit-order solver forced on every NP-hard level
//!   (`SatConfig::force`), generated at DFS-decidable sizes so the two
//!   engines' definite verdicts must agree level-for-level.
//!
//! Disagreement rules mirror the engines' soundness contracts (`Unknown`
//! outcomes are never definite and never gate):
//!
//! * any checker **fails** a level the batch reference **passes** — a false
//!   conviction; convictions are sound by contract, so this always gates;
//! * the **whole-window** checker covers the run in one window (no horizon),
//!   so any definite disagreement with batch gates; the **sat-forced**
//!   checker sees the whole history too, and the solver's UNSAT/model
//!   answers are complete for the commit-order axioms, so any definite
//!   disagreement gates in *both* directions;
//! * a **rolling-window / sharded miss at a planted level** gates: plants
//!   are contiguous, shard-aligned, and the harness windows keep
//!   `overlap ≥ plant span − 1` even after partition scaling, so every
//!   plant is containment-guaranteed and must convict;
//! * a rolling-window / sharded miss at a **non-planted** level is the
//!   documented attestation gap — an *emergent* anomaly (e.g. a causal
//!   cycle built from cross-plant interaction) can span more than a window
//!   horizon or cross bands through in-band participants.  These are
//!   **advisory**: logged and counted in the JSON summary, not gating;
//! * the oracle's [`Planted::expected_failures`] must all be failed by the
//!   batch reference, and a plant-free history must pass every level;
//! * `decode(encode(h))` must reproduce the history exactly.
//!
//! On a disagreement the harness delta-debugs the history down to a minimal
//! reproducer with the *same* disagreement signature and writes it as a
//! wire-format artifact (`repro-seed{seed}.tmh`) in `--out`, then exits
//! non-zero after the batch finishes.

use std::fmt::Write as _;
use std::process::ExitCode;

use tm_audit::{
    audit_sharded, audit_streamed, audit_with_budget, audit_with_options, AuditOptions, Level,
    Outcome, SatConfig, ShardConfig, WindowConfig,
};
use tm_history::{generate, minimize, wire, GenConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default DFS budget for the batch reference (generous: the reference must
/// be decisive for the differential rules to bite).
const DEFAULT_BUDGET: u64 = 2_000_000;

/// Window shape for the rolling checker: plants span ≤ 6 transactions (the
/// anchored long fork is the widest), so overlap 6 guarantees every plant
/// lands whole in some window.
const ROLL_SIZE: usize = 32;
const ROLL_OVERLAP: usize = 6;

/// Partitions for the sharded checker.
const SHARDS: usize = 4;

/// Base (global-horizon) overlap for the sharded checker: partition windows
/// scale overlap by `1/K`, and a shard-aligned plant must still land whole
/// in one partition window, so the scaled overlap has to stay ≥ 5 (the
/// 6-txn anchored long fork minus one).
const SHARD_OVERLAP: usize = 24;

struct Args {
    seeds: u64,
    seed_start: u64,
    out: String,
    json: bool,
    budget: u64,
    sat_cross: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seeds N] [--seed-start S] [--out DIR] [--json] [--budget STATES]\n\
         \x20           [--sat-cross]\n\
         \n\
         Differential fuzz lane: generated histories through the batch,\n\
         whole-window, rolling-window and sharded checkers; any disagreement\n\
         writes a minimized wire-format reproducer to --out and exits 1.\n\
         --sat-cross adds a solver-forced checker (every NP-hard level decided\n\
         by the tm-sat CDCL engine) at DFS-decidable sizes: definite\n\
         DFS-vs-SAT verdict disagreements gate in both directions."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 25,
        seed_start: 0,
        out: String::from("."),
        json: false,
        budget: DEFAULT_BUDGET,
        sat_cross: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--seed-start" => {
                args.seed_start = value("--seed-start").parse().unwrap_or_else(|_| usage())
            }
            "--out" => args.out = value("--out"),
            "--json" => args.json = true,
            "--sat-cross" => args.sat_cross = true,
            "--budget" => args.budget = value("--budget").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// The per-seed generator shape: small enough that the DFS reference stays
/// decisive, varied enough to exercise session counts, pool sizes and every
/// anomaly mix (including plant-free runs as pass-oracles).
fn config_for_seed(seed: u64, sat_cross: bool) -> GenConfig {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF0BB_1A4E);
    let sessions = rng.gen_range(3..=5);
    GenConfig {
        sessions,
        vars: rng.gen_range(2..=10),
        // The solver materializes a cubic encoding, so the cross-check lane
        // keeps totals well inside SatConfig::max_txns (and DFS-decisive).
        txns_per_session: if sat_cross { rng.gen_range(4..=12) } else { rng.gen_range(8..=30) },
        events_per_txn: rng.gen_range(1..=4),
        seed,
        lost_update_per_mille: if rng.gen_bool(0.7) { rng.gen_range(0..120) } else { 0 },
        write_skew_per_mille: if rng.gen_bool(0.7) { rng.gen_range(0..120) } else { 0 },
        causal_cycle_per_mille: if rng.gen_bool(0.7) { rng.gen_range(0..120) } else { 0 },
        long_fork_per_mille: if rng.gen_bool(0.7) { rng.gen_range(0..120) } else { 0 },
        // Keep every plant inside one partition of the sharded checker: the
        // sharded merged pass only *attests* anomalies whose participants
        // stay in-band, so unaligned plants would make misses expected
        // rather than gating (see tm_audit::partition soundness notes).
        shard_align: Some(SHARDS),
    }
}

/// One definite verdict vector: `Some(true)` = definite pass, `Some(false)`
/// = definite fail, `None` = unknown.
type Verdicts = [Option<bool>; 6];

fn verdicts_of(outcome_of: impl Fn(Level) -> Option<Outcome>) -> Verdicts {
    let mut v: Verdicts = [None; 6];
    for (i, level) in Level::ALL.into_iter().enumerate() {
        v[i] = match outcome_of(level) {
            Some(Outcome::Pass { .. }) => Some(true),
            Some(Outcome::Fail { .. }) => Some(false),
            _ => None,
        };
    }
    v
}

/// Everything one seed disagreed about, as stable strings (doubles as the
/// minimizer's predicate signature): `.0` gates, `.1` is advisory
/// (documented horizon/band attestation gaps).
fn check_seed(
    history: &tm_audit::AuditHistory,
    expected_failures: &[Level],
    plant_free: bool,
    budget: u64,
    sat_cross: bool,
) -> (Vec<String>, Vec<String>) {
    let total = history.txn_count();
    let batch_report = audit_with_budget(history, budget);

    let whole = {
        let mut cfg = WindowConfig::sized(total.max(2));
        cfg.budget = budget;
        audit_streamed(history, cfg)
    };
    let rolling = {
        let mut cfg = WindowConfig::sized(ROLL_SIZE);
        cfg.overlap = ROLL_OVERLAP;
        cfg.budget = budget;
        audit_streamed(history, cfg)
    };
    let sharded = {
        let mut window = WindowConfig::sized(ROLL_SIZE);
        window.overlap = SHARD_OVERLAP;
        window.budget = budget;
        audit_sharded(history, ShardConfig::new(SHARDS, window))
    };

    let batch_v = verdicts_of(|l| batch_report.outcome(l).cloned());
    let mut checkers: Vec<(&str, Verdicts)> = vec![
        ("whole-window", verdicts_of(|l| whole.merged.outcome(l).cloned())),
        ("rolling-window", verdicts_of(|l| rolling.merged.outcome(l).cloned())),
        ("sharded", verdicts_of(|l| sharded.merged.outcome(l).cloned())),
    ];
    if sat_cross {
        let sat_report = audit_with_options(
            history,
            &AuditOptions { budget, sat: Some(SatConfig { force: true, ..SatConfig::default() }) },
        );
        checkers.push(("sat-forced", verdicts_of(|l| sat_report.outcome(l).cloned())));
    }

    let mut disagreements = Vec::new();
    let mut advisories = Vec::new();
    for (i, level) in Level::ALL.into_iter().enumerate() {
        let tag = level.tag();
        if expected_failures.contains(&level) && batch_v[i] != Some(false) {
            disagreements.push(format!("oracle:{tag}:planted-anomaly-not-convicted"));
        }
        if plant_free && batch_v[i] == Some(false) {
            disagreements.push(format!("oracle:{tag}:clean-history-convicted"));
        }
        for (name, v) in &checkers {
            match (batch_v[i], v[i]) {
                // A streaming checker convicting what the reference attests
                // is always a bug: convictions are sound by contract.
                (Some(true), Some(false)) => {
                    disagreements.push(format!("{name}:{tag}:false-conviction"))
                }
                // Attesting what the reference refutes is a miss.  It gates
                // when conviction was guaranteed — the whole-window checker
                // has no horizon, and plants are containment-guaranteed —
                // and is advisory otherwise (an emergent anomaly past the
                // horizon or across bands: the documented attestation gap).
                (Some(false), Some(true)) => {
                    if *name == "whole-window"
                        || *name == "sat-forced"
                        || expected_failures.contains(&level)
                    {
                        disagreements.push(format!("{name}:{tag}:miss"));
                    } else {
                        advisories.push(format!("{name}:{tag}:attested-pass-overturned"));
                    }
                }
                _ => {}
            }
        }
    }
    (disagreements, advisories)
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed_seeds: Vec<u64> = Vec::new();
    let mut json_seeds = String::new();
    let mut total_plants = 0u64;
    let mut total_advisories = 0u64;

    for seed in args.seed_start..args.seed_start + args.seeds {
        let config = config_for_seed(seed, args.sat_cross);
        let generated = generate(&config);
        total_plants += generated.planted.total();

        // Wire round trip is part of the lane: a reproducer that does not
        // survive encode/decode is useless.
        let encoded = wire::encode(&generated.history);
        match wire::decode(&encoded) {
            Ok(decoded) if decoded == generated.history => {}
            Ok(_) => {
                eprintln!("seed {seed}: wire round trip altered the history");
                failed_seeds.push(seed);
                continue;
            }
            Err(e) => {
                eprintln!("seed {seed}: wire round trip failed to decode: {e}");
                failed_seeds.push(seed);
                continue;
            }
        }

        let expected = generated.planted.expected_failures();
        let plant_free = generated.planted.total() == 0;
        let (disagreements, advisories) =
            check_seed(&generated.history, &expected, plant_free, args.budget, args.sat_cross);
        total_advisories += advisories.len() as u64;

        if args.json {
            let quoted = |items: &[String]| {
                items
                    .iter()
                    .map(|d| format!("\"{}\"", tm_audit::report::json_escape(d)))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = write!(
                json_seeds,
                "{}{{\"seed\":{seed},\"txns\":{},\"plants\":{},\"disagreements\":[{}],\"advisories\":[{}]}}",
                if json_seeds.is_empty() { "" } else { "," },
                generated.history.txn_count(),
                generated.planted.total(),
                quoted(&disagreements),
                quoted(&advisories)
            );
        }
        if !advisories.is_empty() {
            eprintln!("seed {seed}: {} advisory(ies): {}", advisories.len(), advisories.join(", "));
        }

        if disagreements.is_empty() {
            continue;
        }
        failed_seeds.push(seed);
        eprintln!(
            "seed {seed}: {} disagreement(s): {}",
            disagreements.len(),
            disagreements.join(", ")
        );

        // Checker-vs-checker disagreements minimize well (the signature must
        // still hold on the candidate); oracle disagreements are claims
        // about what was *planted*, which a shrunk candidate cannot carry,
        // so for those the full history is the reproducer.
        let signature: Vec<String> =
            disagreements.iter().filter(|d| !d.starts_with("oracle:")).cloned().collect();
        let reduced = if signature.is_empty() {
            generated.history.clone()
        } else {
            minimize(&generated.history, |candidate| {
                check_seed(candidate, &expected, plant_free, args.budget, args.sat_cross)
                    .0
                    .into_iter()
                    .filter(|d| !d.starts_with("oracle:"))
                    .collect::<Vec<_>>()
                    == signature
            })
        };
        let path = format!("{}/repro-seed{seed}.tmh", args.out);
        match std::fs::write(&path, wire::encode(&reduced)) {
            Ok(()) => eprintln!(
                "seed {seed}: minimized {} -> {} txns, reproducer written to {path}",
                generated.history.txn_count(),
                reduced.txn_count()
            ),
            Err(e) => eprintln!("seed {seed}: could not write reproducer {path}: {e}"),
        }
    }

    if args.json {
        println!(
            "{{\"seeds\":{},\"seed_start\":{},\"total_plants\":{total_plants},\
             \"total_advisories\":{total_advisories},\
             \"failed_seeds\":[{}],\"results\":[{json_seeds}]}}",
            args.seeds,
            args.seed_start,
            failed_seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        );
    } else {
        println!(
            "fuzz: {} seed(s) [{}, {}), {total_plants} plants, {total_advisories} advisory(ies), {} disagreement seed(s){}",
            args.seeds,
            args.seed_start,
            args.seed_start + args.seeds,
            failed_seeds.len(),
            if failed_seeds.is_empty() { String::new() } else { format!(": {failed_seeds:?}") }
        );
    }

    if failed_seeds.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
