//! The adversarial generator's expected-verdict contract, checked against
//! the real batch auditor (the differential fuzz lane's oracle, pinned as
//! regular tests):
//!
//! * a plant-free history passes every level;
//! * every level in [`Planted::expected_failures`] is convicted by the batch
//!   auditor (emergent extra failures are allowed — interleaved plants can
//!   compose into stronger anomalies — but the promised ones must land);
//! * shard-aligned plants are convicted by the rolling-window and sharded
//!   engines too, under the same window geometry the fuzz gate uses.

use tm_audit::{
    audit_sharded, audit_streamed, audit_with_budget, Level, ShardConfig, WindowConfig,
};
use tm_history::{decode, generate, generate_wire, GenConfig};

const BUDGET: u64 = 2_000_000;

fn batch_fails(history: &tm_audit::AuditHistory) -> Vec<Level> {
    let report = audit_with_budget(history, BUDGET);
    Level::ALL.iter().copied().filter(|&l| report.fails(l)).collect()
}

#[test]
fn plant_free_histories_pass_every_level() {
    for seed in 0..8u64 {
        let config = GenConfig { seed, ..GenConfig::default() };
        let generated = generate(&config);
        assert_eq!(generated.planted.total(), 0, "default config plants nothing");
        let report = audit_with_budget(&generated.history, BUDGET);
        for &level in Level::ALL.iter() {
            assert!(
                report.passes(level),
                "seed {seed}: clean history failed {}: {}",
                level.name(),
                report.summary()
            );
        }
    }
}

#[test]
fn lost_update_plants_convict_si_and_ser() {
    for seed in [3u64, 17, 99] {
        let config = GenConfig { seed, lost_update_per_mille: 120, ..GenConfig::default() };
        let generated = generate(&config);
        assert!(generated.planted.lost_updates > 0, "seed {seed}: rate 120/1000 must plant");
        let fails = batch_fails(&generated.history);
        for level in generated.planted.expected_failures() {
            assert!(
                fails.contains(&level),
                "seed {seed}: planted lost updates but {} was not convicted (failed: {fails:?})",
                level.name()
            );
        }
        assert!(fails.contains(&Level::SnapshotIsolation), "seed {seed}");
        assert!(fails.contains(&Level::Serializable), "seed {seed}");
    }
}

#[test]
fn write_skew_plants_convict_ser_only_among_promises() {
    for seed in [5u64, 23, 71] {
        let config = GenConfig { seed, write_skew_per_mille: 120, ..GenConfig::default() };
        let generated = generate(&config);
        assert!(generated.planted.write_skews > 0, "seed {seed}: rate 120/1000 must plant");
        assert_eq!(generated.planted.expected_failures(), vec![Level::Serializable]);
        let fails = batch_fails(&generated.history);
        assert!(
            fails.contains(&Level::Serializable),
            "seed {seed}: planted write skew but SER passed (failed: {fails:?})"
        );
    }
}

#[test]
fn a_single_write_skew_separates_si_from_ser() {
    // One planted write skew and nothing else: the canonical SI-pass /
    // SER-fail separator.  Tiny config so the plant dominates the history.
    let config = GenConfig {
        sessions: 2,
        vars: 2,
        txns_per_session: 2,
        events_per_txn: 1,
        seed: 11,
        write_skew_per_mille: 1_000,
        ..GenConfig::default()
    };
    let generated = generate(&config);
    assert!(generated.planted.write_skews >= 1);
    let report = audit_with_budget(&generated.history, BUDGET);
    assert!(report.fails(Level::Serializable), "{}", report.summary());
    assert!(report.passes(Level::SnapshotIsolation), "{}", report.summary());
}

#[test]
fn causal_cycle_plants_convict_causal_si_and_ser() {
    for seed in [2u64, 41] {
        let config = GenConfig { seed, causal_cycle_per_mille: 120, ..GenConfig::default() };
        let generated = generate(&config);
        assert!(generated.planted.causal_cycles > 0, "seed {seed}: rate 120/1000 must plant");
        let fails = batch_fails(&generated.history);
        for level in [Level::Causal, Level::SnapshotIsolation, Level::Serializable] {
            assert!(
                fails.contains(&level),
                "seed {seed}: planted causal cycle but {} passed (failed: {fails:?})",
                level.name()
            );
        }
    }
}

/// The fuzz gate's streaming geometry: shard-aligned plants must be
/// convicted by the rolling-window and sharded engines, not just batch.
#[test]
fn aligned_plants_are_convicted_by_streaming_and_sharded_engines() {
    const SHARDS: usize = 4;
    for seed in [9u64, 28] {
        let config = GenConfig {
            seed,
            lost_update_per_mille: 100,
            shard_align: Some(SHARDS),
            ..GenConfig::default()
        };
        let generated = generate(&config);
        assert!(generated.planted.lost_updates > 0, "seed {seed}");

        let mut rolling = WindowConfig::sized(32);
        rolling.overlap = 6;
        rolling.budget = BUDGET;
        let streamed = audit_streamed(&generated.history, rolling);
        assert!(
            streamed.fails(Level::Serializable) || streamed.fails(Level::SnapshotIsolation),
            "seed {seed}: rolling windows missed every aligned lost update: {}",
            streamed.merged.summary()
        );

        let mut window = WindowConfig::sized(32);
        window.overlap = 16;
        window.budget = BUDGET;
        let sharded = audit_sharded(&generated.history, ShardConfig::new(SHARDS, window));
        assert!(
            sharded.fails(Level::Serializable) || sharded.fails(Level::SnapshotIsolation),
            "seed {seed}: sharded engine missed every aligned lost update: {}",
            sharded.merged.summary()
        );
    }
}

/// `generate_wire` emits a decodable document whose history matches
/// `generate` under the same config — the fuzz lane's reproducer format.
#[test]
fn generate_wire_matches_generate() {
    let config = GenConfig { seed: 77, lost_update_per_mille: 50, ..GenConfig::default() };
    let (doc, planted) = generate_wire(&config);
    let generated = generate(&config);
    assert_eq!(planted, generated.planted);
    let decoded = decode(&doc).expect("generated wire decodes");
    assert_eq!(decoded, generated.history);
}
