//! Wire-format round-trip and hardening tests.
//!
//! Two claims the wire format must hold for the export → ingest story to be
//! trustworthy:
//!
//! 1. **Lossless round trip** — encoding a live-captured history and decoding
//!    it back yields the *same* history (and re-encoding yields the same
//!    bytes), across many seeds and every built-in backend;
//! 2. **Hardened decoding** — malformed input is rejected with a positioned
//!    [`WireError`], never a panic, and the position points at the offending
//!    line.

use tm_audit::{record_run, AuditRunConfig};
use tm_history::{decode, decode_all, encode, Decoder};

/// A tiny well-formed document the malformed corpus mutates from.  Line
/// numbers in the corpus cases refer to this layout (header = line 1).
const VALID_DOC: &str = "\
{\"tm-history\":1,\"sessions\":2,\"vars\":4,\"initial\":0}\n\
{\"s\":0,\"q\":0,\"h\":0,\"r\":[[0,0]],\"w\":[[0,5]]}\n\
{\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,5]],\"w\":[[1,6]]}\n";

#[test]
fn valid_doc_is_actually_valid() {
    let history = decode(VALID_DOC).expect("the corpus baseline must decode");
    assert_eq!(history.txn_count(), 2);
    assert_eq!(encode(&history), VALID_DOC);
}

#[test]
fn fifty_live_histories_round_trip_identically() {
    let backends = [
        stm_runtime::registry::TL2_BLOCKING,
        stm_runtime::registry::OBSTRUCTION_FREE,
        stm_runtime::registry::PRAM_LOCAL,
        stm_runtime::registry::MVCC,
    ];
    for seed in 0..50u64 {
        let history = record_run(AuditRunConfig {
            backend: backends[(seed % backends.len() as u64) as usize],
            sessions: 3,
            txns_per_session: 40,
            vars: 12,
            seed: 0xC0FFEE ^ seed,
        });
        let doc = encode(&history);
        let decoded = match decode(&doc) {
            Ok(decoded) => decoded,
            Err(e) => panic!("seed {seed}: captured history failed to decode: {e}"),
        };
        assert_eq!(decoded, history, "seed {seed}: decode(encode(h)) != h");
        assert_eq!(encode(&decoded), doc, "seed {seed}: re-encode is not byte-identical");
    }
}

/// Each case: a mutated document, the 1-based line the decoder must blame,
/// and a substring the message must contain (empty = any message).
fn malformed_corpus() -> Vec<(&'static str, String, u64, &'static str)> {
    let lines: Vec<&str> = VALID_DOC.lines().collect();
    let rebuilt = |replaced: usize, with: &str| -> String {
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            if i == replaced {
                out.push_str(with);
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    };
    vec![
        (
            "truncated txn line",
            rebuilt(2, "{\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,"),
            3,
            "expected an integer",
        ),
        (
            "duplicate txn id",
            format!("{VALID_DOC}{}\n", "{\"s\":0,\"q\":0,\"h\":2,\"r\":[],\"w\":[]}"),
            4,
            "",
        ),
        (
            "thin-air read",
            rebuilt(2, "{\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,7]],\"w\":[[1,6]]}"),
            3,
            "thin-air",
        ),
        (
            "unsupported version",
            VALID_DOC.replacen("{\"tm-history\":1,", "{\"tm-history\":99,", 1),
            1,
            "unsupported tm-history version",
        ),
        (
            "write of the initial value",
            rebuilt(2, "{\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,5]],\"w\":[[1,0]]}"),
            3,
            "initial value",
        ),
        (
            "ambiguous write",
            rebuilt(2, "{\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,5]],\"w\":[[0,5]]}"),
            3,
            "ambiguous write",
        ),
        ("missing header", lines[1..].join("\n"), 1, "tm-history"),
        (
            "session out of range",
            rebuilt(2, "{\"s\":5,\"q\":0,\"h\":1,\"r\":[[0,5]],\"w\":[[1,6]]}"),
            3,
            "out of range",
        ),
        (
            "sequence gap",
            rebuilt(2, "{\"s\":1,\"q\":3,\"h\":1,\"r\":[[0,5]],\"w\":[[1,6]]}"),
            3,
            "",
        ),
        (
            "hint not monotonic",
            format!("{VALID_DOC}{}\n", "{\"s\":0,\"q\":1,\"h\":0,\"r\":[],\"w\":[[2,9]]}"),
            4,
            "",
        ),
        ("binary garbage line", rebuilt(1, "\u{1}\u{2}\u{3}nonsense"), 2, ""),
        (
            "trailing characters",
            rebuilt(2, "{\"s\":1,\"q\":0,\"h\":1,\"r\":[[0,5]],\"w\":[[1,6]]} extra"),
            3,
            "",
        ),
        (
            "negative session count",
            rebuilt(0, "{\"tm-history\":1,\"sessions\":-2,\"vars\":4,\"initial\":0}"),
            1,
            "",
        ),
    ]
}

#[test]
fn malformed_documents_yield_positioned_errors_not_panics() {
    for (name, doc, line, needle) in malformed_corpus() {
        let err = match decode(&doc) {
            Err(err) => err,
            Ok(_) => panic!("{name}: decoded successfully, expected a rejection"),
        };
        assert_eq!(err.line, line, "{name}: blamed line {} not {line}: {err}", err.line);
        assert!(err.col >= 1, "{name}: column must be 1-based: {err}");
        if !needle.is_empty() {
            assert!(err.message.contains(needle), "{name}: {err:?} lacks {needle:?}");
        }
        // The streaming decoder must reject the same document (possibly at a
        // different granularity, but still without panicking).
        let mut streaming = Decoder::new(doc.as_bytes());
        let mut failed = false;
        loop {
            match streaming.next_history() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "{name}: streaming decoder accepted what decode() rejected");
    }
}

/// A decode error in one document must not poison the rest of the stream:
/// `skip_document` resyncs at the next blank line and the decoder keeps
/// producing histories.
#[test]
fn streaming_decoder_resyncs_after_a_bad_document() {
    let input = format!("{VALID_DOC}\ngarbage that is not a header\n\n{VALID_DOC}");
    let mut decoder = Decoder::new(input.as_bytes());
    let first = decoder.next_history().expect("first document decodes").expect("present");
    assert_eq!(first.txn_count(), 2);
    let err = decoder.next_history().expect_err("garbage document is rejected");
    assert!(err.line >= 4, "error blames the garbage region: {err}");
    decoder.skip_document().expect("resync");
    let second = decoder.next_history().expect("third document decodes").expect("present");
    assert_eq!(second, first);
    assert!(decoder.next_history().expect("clean EOF").is_none());
}

/// `decode_all` on a multi-document export returns every history in order.
#[test]
fn decode_all_handles_multi_document_exports() {
    let histories = [
        record_run(AuditRunConfig { seed: 7, txns_per_session: 25, ..Default::default() }),
        record_run(AuditRunConfig { seed: 8, txns_per_session: 25, ..Default::default() }),
    ];
    let mut doc = String::new();
    for history in &histories {
        doc.push_str(&encode(history));
        doc.push('\n');
    }
    let decoded = decode_all(&doc).expect("multi-document export decodes");
    assert_eq!(decoded.len(), 2);
    assert_eq!(decoded[0], histories[0]);
    assert_eq!(decoded[1], histories[1]);
}
